"""Repo-wide pytest configuration: the ``slow`` marker and its gate.

The tier-1 command (``pytest -x -q``) must stay fast: the benchmark
suite under ``benchmarks/`` reproduces whole paper tables/figures and
takes minutes per file, so every test collected from that directory is
auto-marked ``slow``, and ``slow`` tests are skipped unless the run
opts in with ``--runslow``::

    pytest -q                      # fast tier-1 suite (slow skipped)
    pytest -q --runslow            # everything, including figure benches
    pytest benchmarks -q --runslow # just the paper figures/tables

Unit tests may also tag themselves ``@pytest.mark.slow`` (e.g. the
long training integration tests) to join the gated set.
"""

from __future__ import annotations

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent / "benchmarks"


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run tests marked slow (benchmark figure/table reproductions)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running benchmark/figure test, skipped without --runslow")


def pytest_collection_modifyitems(config, items):
    for item in items:
        try:
            in_bench = pathlib.Path(str(item.fspath)).resolve().is_relative_to(
                _BENCH_DIR.resolve())
        except (OSError, ValueError):
            in_bench = False
        if in_bench:
            item.add_marker(pytest.mark.slow)
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
