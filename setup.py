"""Packaging for the BSL reproduction.

The version is sourced from ``repro.__version__`` (read textually so
the package need not be importable at build time), the package tree
lives under ``src/``, and a ``repro`` console entry point maps to
:func:`repro.cli.main` — so after ``pip install -e .`` the CI matrix
can run ``repro datasets`` etc. without any ``PYTHONPATH`` hacks.

Note: fully-offline environments that ship setuptools without the
``wheel`` package cannot build the PEP 660 editable wheel; there,
``python setup.py develop`` provides the equivalent editable install.
"""

import pathlib
import re

from setuptools import find_packages, setup

ROOT = pathlib.Path(__file__).resolve().parent


def _version() -> str:
    """Read ``__version__`` out of ``src/repro/__init__.py``."""
    text = (ROOT / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-bsl",
    version=_version(),
    description=("Numpy-only reproduction of 'BSL: Understanding and "
                 "Improving Softmax Loss for Recommendation' (ICDE 2024), "
                 "grown into a train/evaluate/serve recommendation system"),
    long_description=(ROOT / "README.md").read_text(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "License :: OSI Approved :: MIT License",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
