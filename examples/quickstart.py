"""Quickstart: train MF with SL and BSL, compare against BPR, then serve.

Reproduces the headline of the paper in miniature: on an implicit-
feedback dataset, Softmax Loss (SL) beats the classic BPR loss, and the
proposed Bilateral Softmax Loss (BSL) matches or beats SL.  The script
then walks the full production path — export the best model to a frozen
embedding snapshot and answer top-K recommendation requests from it —
mirroring the CLI flow ``repro train`` → ``repro export`` →
``repro recommend``.

Run:  python examples/quickstart.py
"""

import tempfile

from repro.data import load_dataset
from repro.eval import evaluate_model
from repro.losses import get_loss
from repro.models import MF
from repro.serve import RecommendationService, export_snapshot, load_snapshot
from repro.train import TrainConfig, train_model


def main(dataset_name: str = "yelp2018-small", epochs: int = 20,
         dim: int = 64, snapshot_dir: str | None = None) -> dict:
    """Train the three losses, evaluate, then export + serve the winner.

    Parameters are exposed so the test suite can run the whole script
    cheaply (tiny dataset, two epochs); the defaults reproduce the
    paper-scale comparison.  Returns the metrics per loss.
    """
    dataset = load_dataset(dataset_name)
    print(f"Dataset: {dataset}\n")

    config = TrainConfig(epochs=epochs, batch_size=1024, learning_rate=5e-2,
                         n_negatives=128, seed=0)

    results, models = {}, {}
    for name, loss in [
        ("BPR", get_loss("bpr")),
        ("SL", get_loss("sl", tau=0.4)),
        ("BSL", get_loss("bsl", tau1=0.44, tau2=0.4)),
    ]:
        model = MF(dataset.num_users, dataset.num_items, dim=dim, rng=0)
        train_result = train_model(model, loss, dataset, config)
        metrics = evaluate_model(model, dataset).metrics
        results[name] = metrics
        models[name] = model
        print(f"MF+{name:<4}  recall@20={metrics['recall@20']:.4f}  "
              f"ndcg@20={metrics['ndcg@20']:.4f}  "
              f"(final loss {train_result.final_loss:.4f})")

    gain = 100 * (results["SL"]["ndcg@20"] / results["BPR"]["ndcg@20"] - 1)
    print(f"\nSL improves NDCG@20 over BPR by {gain:+.1f}% "
          "(the paper's Fig. 1 effect).")

    # ------------------------------------------------------------------
    # Serving: freeze the BSL model and answer live-style requests.
    # ------------------------------------------------------------------
    out_dir = snapshot_dir or tempfile.mkdtemp(prefix="bsl-snapshot-")
    export_snapshot(models["BSL"], dataset, out_dir, model_name="mf",
                    extra={"loss": "bsl"})
    service = RecommendationService(load_snapshot(out_dir))
    print(f"\nExported snapshot {service.snapshot.version} to {out_dir}")
    for rec in service.recommend([0, 1, 2], k=5):
        items = " ".join(f"{i:>4d}" for i in rec.items.tolist())
        print(f"recommend(user={rec.user_id}, k=5) -> {items}")
    print(f"service: {service!r}")
    return results


if __name__ == "__main__":
    main()
