"""Quickstart: train MF with SL and BSL, compare against BPR.

Reproduces the headline of the paper in miniature: on an implicit-
feedback dataset, Softmax Loss (SL) beats the classic BPR loss, and the
proposed Bilateral Softmax Loss (BSL) matches or beats SL.

Run:  python examples/quickstart.py
"""

from repro.data import load_dataset
from repro.eval import evaluate_model
from repro.losses import get_loss
from repro.models import MF
from repro.train import TrainConfig, train_model

def main():
    dataset = load_dataset("yelp2018-small")
    print(f"Dataset: {dataset}\n")

    config = TrainConfig(epochs=20, batch_size=1024, learning_rate=5e-2,
                         n_negatives=128, seed=0)

    results = {}
    for name, loss in [
        ("BPR", get_loss("bpr")),
        ("SL", get_loss("sl", tau=0.4)),
        ("BSL", get_loss("bsl", tau1=0.44, tau2=0.4)),
    ]:
        model = MF(dataset.num_users, dataset.num_items, dim=64, rng=0)
        train_result = train_model(model, loss, dataset, config)
        metrics = evaluate_model(model, dataset).metrics
        results[name] = metrics
        print(f"MF+{name:<4}  recall@20={metrics['recall@20']:.4f}  "
              f"ndcg@20={metrics['ndcg@20']:.4f}  "
              f"(final loss {train_result.final_loss:.4f})")

    gain = 100 * (results["SL"]["ndcg@20"] / results["BPR"]["ndcg@20"] - 1)
    print(f"\nSL improves NDCG@20 over BPR by {gain:+.1f}% "
          "(the paper's Fig. 1 effect).")


if __name__ == "__main__":
    main()
