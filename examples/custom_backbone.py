"""Extending the library: plug a custom backbone into BSL.

BSL is model-agnostic (Sec. IV-B): any model exposing final user/item
embedding tables can train with it.  This example implements a small
two-tower MLP recommender on top of ID embeddings — a backbone the
paper does not ship — and trains it with SL and BSL through the same
Trainer used everywhere else.

Run:  python examples/custom_backbone.py
"""

from repro.data import load_dataset
from repro.eval import evaluate_model
from repro.losses import get_loss
from repro.models.base import Recommender
from repro.nn import Embedding, Linear
from repro.tensor import functional as F
from repro.tensor.random import spawn_rngs
from repro.train import TrainConfig, train_model


class TwoTowerMLP(Recommender):
    """ID embeddings refined by a per-tower hidden layer with tanh."""

    def __init__(self, num_users, num_items, dim=64, hidden=64, rng=None):
        super().__init__(num_users, num_items, dim,
                         train_scoring="cosine", test_scoring="cosine")
        rngs = spawn_rngs(rng, 6)
        self.user_embedding = Embedding(num_users, dim, rng=rngs[0])
        self.item_embedding = Embedding(num_items, dim, rng=rngs[1])
        self.user_tower = [Linear(dim, hidden, rng=rngs[2]),
                           Linear(hidden, dim, rng=rngs[3])]
        self.item_tower = [Linear(dim, hidden, rng=rngs[4]),
                           Linear(hidden, dim, rng=rngs[5])]

    def _tower(self, layers, x):
        hidden = layers[0](x).tanh()
        # residual connection keeps the ID signal trainable
        return x + layers[1](hidden)

    def propagate(self):
        users = self._tower(self.user_tower, self.user_embedding.all())
        items = self._tower(self.item_tower, self.item_embedding.all())
        return users, items


def main():
    dataset = load_dataset("ml1m-small")
    print(f"Dataset: {dataset}\n")
    config = TrainConfig(epochs=20, batch_size=1024, learning_rate=5e-3,
                         n_negatives=128, seed=0)

    for name, loss in [("SL", get_loss("sl", tau=0.4)),
                       ("BSL", get_loss("bsl", tau1=0.44, tau2=0.4))]:
        model = TwoTowerMLP(dataset.num_users, dataset.num_items, dim=64,
                            rng=0)
        print(f"TwoTowerMLP+{name}: {model.num_parameters()} parameters")
        train_model(model, loss, dataset, config)
        metrics = evaluate_model(model, dataset).metrics
        print(f"  recall@20={metrics['recall@20']:.4f}  "
              f"ndcg@20={metrics['ndcg@20']:.4f}\n")


if __name__ == "__main__":
    main()
