"""Fairness decomposition and DRO diagnostics (Figs. 3b, 4a, 4b, 5).

Trains MF with different losses, then:

* decomposes NDCG@20 over ten item-popularity groups (Fig. 4a) —
  SL spreads accuracy further into the long tail than BCE/BPR;
* inspects the DRO worst-case weights over one batch of negative
  scores for several temperatures (Fig. 4b) — lower τ tilts harder
  toward hard negatives;
* estimates the implied robustness radius η from the negative-score
  variance via Corollary III.1 (Fig. 3b);
* runs the variance-term ablation of Fig. 5.

Run:  python examples/fairness_and_dro.py
"""

import numpy as np

from repro.data import load_dataset
from repro.dro import (MeanVarianceSoftmaxLoss, VarianceAblatedSoftmaxLoss,
                       eta_distribution, worst_case_weights)
from repro.eval import evaluate_model, fairness_gap, group_ndcg
from repro.experiments import (ExperimentSpec, collect_negative_scores,
                               run_experiment)
from repro.losses import get_loss
from repro.models import MF
from repro.train import TrainConfig, train_model


def fairness_study(dataset):
    print("-- Popularity-group NDCG@20 (Fig. 4a direction) --")
    config = TrainConfig(epochs=18, batch_size=1024, learning_rate=5e-2,
                         n_negatives=128, seed=0)
    for name, loss in [("BPR", get_loss("bpr")),
                       ("BCE", get_loss("bce", scale=0.2)),
                       ("SL", get_loss("sl", tau=0.4))]:
        model = MF(dataset.num_users, dataset.num_items, dim=64, rng=0)
        train_model(model, loss, dataset, config)
        groups = group_ndcg(model, dataset, n_groups=10)
        print(f"{name:<4} bottom-half mass={groups[:5].sum():.4f}  "
              f"top-3 mass={groups[7:].sum():.4f}  "
              f"gap={fairness_gap(groups):.4f}  "
              f"total={groups.sum():.4f}")


def dro_diagnostics(dataset_name):
    print("\n-- DRO worst-case weights (Fig. 4b) and eta (Fig. 3b) --")
    spec = ExperimentSpec(dataset=dataset_name, model="mf", loss="sl",
                          loss_kwargs={"tau": 0.4}, epochs=15)
    result = run_experiment(spec)
    neg_scores = collect_negative_scores(result, n_users=64,
                                         n_negatives=256)
    row = neg_scores[0]
    for tau in (0.09, 0.11, 0.13):
        w = worst_case_weights(row, tau=tau)
        print(f"tau={tau:.2f}  max weight={w.max():.4f}  "
              f"(uniform would be {1 / len(row):.4f})")
    etas = eta_distribution(neg_scores, tau=0.4)
    print(f"implied eta: mean={etas.mean():.4f}  "
          f"p90={np.quantile(etas, 0.9):.4f}")


def variance_ablation(dataset):
    print("\n-- Variance-term ablation (Fig. 5) --")
    config = TrainConfig(epochs=18, batch_size=1024, learning_rate=5e-2,
                         n_negatives=128, seed=0)
    for name, loss in [("w/ variance", MeanVarianceSoftmaxLoss(tau=0.4)),
                       ("w/o variance", VarianceAblatedSoftmaxLoss(tau=0.4))]:
        model = MF(dataset.num_users, dataset.num_items, dim=64, rng=0)
        train_model(model, loss, dataset, config)
        groups = group_ndcg(model, dataset, n_groups=10)
        ndcg = evaluate_model(model, dataset)["ndcg@20"]
        print(f"{name:<13} ndcg@20={ndcg:.4f}  "
              f"bottom-half mass={groups[:5].sum():.4f}")


def main():
    dataset = load_dataset("yelp2018-small")
    print(f"Dataset: {dataset}\n")
    fairness_study(dataset)
    dro_diagnostics("yelp2018-small")
    variance_ablation(dataset)


if __name__ == "__main__":
    main()
