"""Noise-robustness study (the paper's RQ2/RQ3 in miniature).

Two corruptions are applied to the training data while the test split
stays clean:

1. **False positives** — a fraction of fake interactions is injected
   (clickbait / conformity noise, Sec. IV-A).  BSL's separate positive
   temperature lets it degrade more slowly than SL (Table IV).
2. **False negatives** — the negative sampler draws positives at an
   elevated rate (``rnoise``, Sec. III-B).  SL/BSL absorb this via
   their DRO structure while MSE suffers (Fig. 8).

Run:  python examples/noise_robustness.py
"""

from repro.data import inject_positive_noise, load_dataset
from repro.eval import evaluate_model
from repro.losses import get_loss
from repro.models import MF
from repro.train import TrainConfig, train_model


def train_and_eval(loss, train_dataset, clean_dataset, rnoise=0.0):
    config = TrainConfig(epochs=18, batch_size=1024, learning_rate=5e-2,
                         n_negatives=128, rnoise=rnoise, seed=0)
    model = MF(clean_dataset.num_users, clean_dataset.num_items, dim=64,
               rng=0)
    train_model(model, loss, train_dataset, config)
    return evaluate_model(model, clean_dataset)["ndcg@20"]


def positive_noise_study(dataset):
    print("-- False positives (Table IV direction) --")
    print(f"{'noise':>6} {'SL':>8} {'BSL':>8} {'BSL gain':>9}")
    for ratio in (0.0, 0.2, 0.4):
        noisy = inject_positive_noise(dataset, ratio, rng=1)
        sl = train_and_eval(get_loss("sl", tau=0.4), noisy, dataset)
        # BSL widens tau1/tau2 as noise grows, as the paper tunes it.
        tau1 = 0.4 * (1.1 + 0.125 * ratio)
        bsl = train_and_eval(get_loss("bsl", tau1=tau1, tau2=0.4),
                             noisy, dataset)
        gain = 100 * (bsl / sl - 1)
        print(f"{ratio:>6.0%} {sl:>8.4f} {bsl:>8.4f} {gain:>+8.1f}%")


def negative_noise_study(dataset):
    print("\n-- False negatives (Fig. 8 direction) --")
    print(f"{'rnoise':>6} {'MSE':>8} {'SL':>8}  (SL tau retuned per noise)")
    for rnoise in (0.0, 3.0, 7.0):
        mse = train_and_eval(get_loss("mse"), dataset, dataset,
                             rnoise=rnoise)
        # Corollary III.1: noisier negatives need a larger tau (the
        # paper grid-searches per noise level; we use its trend).
        tau = 0.4 + 0.06 * rnoise
        sl = train_and_eval(get_loss("sl", tau=tau), dataset, dataset,
                            rnoise=rnoise)
        print(f"{rnoise:>6.1f} {mse:>8.4f} {sl:>8.4f}")


def main():
    dataset = load_dataset("gowalla-small")
    print(f"Dataset: {dataset}\n")
    positive_noise_study(dataset)
    negative_noise_study(dataset)


if __name__ == "__main__":
    main()
