"""Tour of the extension features beyond the paper's core.

* **Temperature schedules** (the future-work direction the paper cites
  from Kukleva et al., ICLR 2023): anneal SL's τ — through the DRO lens
  this anneals the robustness radius over training.
* **Beyond-accuracy metrics**: coverage / Gini / novelty quantify the
  popularity-bias story of Lemma 2 at the recommendation-list level.
* **Checkpointing**: save and restore trained models.
* **Extended baselines**: the full Table II model zoo is available
  through one registry.

Run:  python examples/extensions_tour.py
"""

import tempfile

from repro.data import load_dataset
from repro.eval import evaluate_model
from repro.eval.diversity import diversity_report
from repro.losses import get_loss
from repro.losses.schedules import CosineSchedule, ScheduledSoftmaxLoss
from repro.models import MF, get_model, model_names
from repro.train import TrainConfig, train_model
from repro.train.checkpoint import load_checkpoint, save_checkpoint


def scheduled_temperature_demo(dataset, config):
    print("-- Scheduled vs constant temperature --")
    for label, loss in [
        ("constant tau=0.4", get_loss("sl", tau=0.4)),
        ("cosine 0.6 -> 0.3", ScheduledSoftmaxLoss(CosineSchedule(0.6, 0.3))),
    ]:
        model = MF(dataset.num_users, dataset.num_items, dim=64, rng=0)
        train_model(model, loss, dataset, config)
        ndcg = evaluate_model(model, dataset)["ndcg@20"]
        print(f"{label:<20} ndcg@20={ndcg:.4f}")


def diversity_demo(dataset, config):
    print("\n-- Popularity bias at the list level (SL vs BPR) --")
    for name, loss in [("BPR", get_loss("bpr")),
                       ("SL", get_loss("sl", tau=0.4))]:
        model = MF(dataset.num_users, dataset.num_items, dim=64, rng=0)
        train_model(model, loss, dataset, config)
        report = diversity_report(model, dataset, k=20)
        print(f"{name:<4} coverage={report['coverage@20']:.3f}  "
              f"gini={report['gini@20']:.3f}  "
              f"novelty={report['novelty@20']:.2f} bits")


def checkpoint_demo(dataset, config):
    print("\n-- Checkpoint roundtrip --")
    model = MF(dataset.num_users, dataset.num_items, dim=64, rng=0)
    train_model(model, get_loss("sl", tau=0.4), dataset, config)
    before = evaluate_model(model, dataset)["ndcg@20"]
    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        save_checkpoint(model, handle.name)
        restored = MF(dataset.num_users, dataset.num_items, dim=64, rng=7)
        load_checkpoint(restored, handle.name)
        after = evaluate_model(restored, dataset)["ndcg@20"]
    print(f"ndcg before save={before:.4f}, after load={after:.4f}")


def model_zoo_demo(dataset):
    print("\n-- Model zoo (one mini-epoch each) --")
    config = TrainConfig(epochs=1, batch_size=1024, learning_rate=1e-2,
                         n_negatives=32, seed=0)
    for name in model_names():
        model = get_model(name, dataset, dim=32, rng=0)
        result = train_model(model, get_loss("sl", tau=0.4), dataset,
                             config)
        print(f"{name:<10} params={model.num_parameters():>8,}  "
              f"loss={result.final_loss:.3f}")


def main():
    dataset = load_dataset("yelp2018-small")
    print(f"Dataset: {dataset}\n")
    config = TrainConfig(epochs=15, batch_size=1024, learning_rate=5e-2,
                         n_negatives=128, seed=0)
    scheduled_temperature_demo(dataset, config)
    diversity_demo(dataset, config)
    checkpoint_demo(dataset, config)
    model_zoo_demo(dataset)


if __name__ == "__main__":
    main()
