#!/usr/bin/env sh
# Repo verification: tier-1 tests + docs checker, optionally the slow tier.
#
# Usage:
#   scripts/verify.sh             # tier-1: fast tests + docs-link check
#   scripts/verify.sh --runslow   # everything, incl. paper-figure benches
#
# Also available as `make verify` / `make verify-slow`.  The tier-1
# command must stay fast (seconds, not minutes): slow tests are gated
# behind --runslow by the root conftest.py.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

RUNSLOW=""
for arg in "$@"; do
    case "$arg" in
        --runslow) RUNSLOW="--runslow" ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "== docs checker =="
python scripts/check_docs.py

echo "== pytest ${RUNSLOW:-(tier-1)} =="
# shellcheck disable=SC2086
python -m pytest -x -q $RUNSLOW
