#!/usr/bin/env sh
# Repo verification: docs checker + bench-schema checker + tier-1 tests,
# optionally the slow tier.
#
# Usage:
#   scripts/verify.sh             # tier-1: fast tests + docs/bench checks
#   scripts/verify.sh --runslow   # everything, incl. paper-figure benches
#   scripts/verify.sh --strict    # CI mode: docs-checker warnings fail too
#
# Also available as `make verify` / `make verify-slow`; the CI workflow
# runs `make ci` == `scripts/verify.sh --strict`.  The tier-1 command
# must stay fast (seconds, not minutes): slow tests are gated behind
# --runslow by the root conftest.py.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

RUNSLOW=""
STRICT=""
for arg in "$@"; do
    case "$arg" in
        --runslow) RUNSLOW="--runslow" ;;
        --strict) STRICT="--strict" ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "== docs checker ${STRICT:+(strict)}=="
# shellcheck disable=SC2086
python scripts/check_docs.py $STRICT

echo "== bench-schema checker =="
python scripts/check_bench.py

echo "== metrics-exposition smoke =="
# Drives a tiny train+serve workload, renders the registry as
# Prometheus v0.0.4 text and re-parses it: unique metric names,
# well-formed HELP/TYPE, declared families for every sample.
python -m repro.cli metrics --demo --format prom --validate > /dev/null

echo "== pytest ${RUNSLOW:-(tier-1)} =="
# shellcheck disable=SC2086
python -m pytest -x -q $RUNSLOW
