#!/usr/bin/env python
"""Docs-link checker: README/docs references must not rot.

Scans ``README.md`` and every ``docs/*.md`` for three kinds of
references and fails if any is dangling:

* **Relative markdown links** — ``[text](path)`` targets that are not
  URLs or intra-page anchors must exist on disk (resolved relative to
  the file containing the link).
* **Repo file paths in inline code** — `` `src/repro/...` ``-style
  mentions of files under ``src/``, ``docs/``, ``tests/``,
  ``benchmarks/``, ``examples/`` or ``scripts/`` must exist.
* **CLI verbs** — every ``repro <verb>`` / ``repro.cli <verb>`` mention
  must be a real subcommand of the argparse tree in
  :mod:`repro.cli` (so renaming a verb without updating the docs
  fails verification).

Run directly (``python scripts/check_docs.py``) or via
``scripts/verify.sh`` / ``make verify``; ``tests/test_docs.py`` runs the
same checks under pytest so tier-1 catches rot too.

Softer issues are reported as **warnings** — currently, pages under
``docs/`` that no other checked document links to (orphans a reader
cannot discover).  Warnings are informational by default; in CI the
workflow runs ``--strict`` (via ``scripts/verify.sh --strict``), which
turns them into failures.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: top-level prefixes whose inline-code mentions are checked on disk
_PATH_PREFIXES = ("src/", "docs/", "tests/", "benchmarks/", "examples/",
                  "scripts/")

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#][^)]*)\)")
_INLINE_CODE = re.compile(r"`([^`\n]+)`")
_CLI_VERB = re.compile(r"\brepro(?:\.cli)?\s+([a-z][a-z0-9-]*)\b")

#: words following "repro"/"repro.cli" in prose that are not verbs
_VERB_STOPWORDS = {"command", "package", "verbs", "subcommand", "module"}


def doc_files() -> list[pathlib.Path]:
    """README plus everything under docs/ (the checked corpus)."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def cli_verbs() -> set[str]:
    """Subcommand names of the real argparse tree."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.cli import build_parser
    finally:
        sys.path.pop(0)
    parser = build_parser()
    for action in parser._actions:  # noqa: SLF001 - argparse has no API
        if hasattr(action, "choices") and action.choices:
            return set(action.choices)
    return set()


def check_file(path: pathlib.Path, verbs: set[str]) -> list[str]:
    """Return a list of human-readable problems found in one file."""
    problems = []
    text = path.read_text()
    rel = path.relative_to(REPO_ROOT)

    for match in _MD_LINK.finditer(text):
        target = match.group(1).strip()
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#")[0]
        if target and not (path.parent / target).exists():
            problems.append(f"{rel}: dangling link target {target!r}")

    for match in _INLINE_CODE.finditer(text):
        code = match.group(1).strip()
        if code.startswith(_PATH_PREFIXES) and " " not in code:
            if not (REPO_ROOT / code).exists():
                problems.append(f"{rel}: referenced file {code!r} missing")

    for match in _CLI_VERB.finditer(text):
        verb = match.group(1)
        if verb in _VERB_STOPWORDS:
            continue
        if verb not in verbs:
            problems.append(f"{rel}: unknown CLI verb `repro {verb}`")

    return problems


def find_warnings(files: list[pathlib.Path]) -> list[str]:
    """Corpus-level soft issues: ``docs/`` pages nothing links to."""
    warnings = []
    linked: set[pathlib.Path] = set()
    for path in files:
        for match in _MD_LINK.finditer(path.read_text()):
            target = match.group(1).strip().split("#")[0]
            if target and not target.startswith(("http://", "https://",
                                                 "mailto:")):
                resolved = (path.parent / target)
                if resolved.exists():
                    linked.add(resolved.resolve())
    for path in files:
        if path.parent.name == "docs" and path.resolve() not in linked:
            warnings.append(f"{path.relative_to(REPO_ROOT)}: orphan page — "
                            f"no other checked document links to it")
    return warnings


def main(argv=None) -> int:
    """Check every doc file; print problems and return their count.

    With ``--strict`` (what CI runs), warnings count as failures too.
    """
    argv = sys.argv[1:] if argv is None else argv
    strict = "--strict" in argv
    unknown = [a for a in argv if a != "--strict"]
    if unknown:
        print(f"docs-check: unknown arguments {unknown}", file=sys.stderr)
        return 2
    verbs = cli_verbs()
    problems = []
    files = doc_files()
    if not files:
        problems.append("no documentation files found (README.md missing?)")
    for path in files:
        problems.extend(check_file(path, verbs))
    warnings = find_warnings(files)
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    for warning in warnings:
        print(f"docs-check: warning: {warning}", file=sys.stderr)
    if not problems and not warnings:
        print(f"docs-check: {len(files)} files OK "
              f"({', '.join(str(f.relative_to(REPO_ROOT)) for f in files)})")
    return len(problems) + (len(warnings) if strict else 0)


if __name__ == "__main__":
    raise SystemExit(min(main(), 1))
