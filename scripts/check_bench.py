#!/usr/bin/env python
"""Bench-schema validator: the checked-in benchmark JSONs must not rot.

Validates every committed ``BENCH_*.json`` against the schema its
generator declares.  The file list, expected schemas, required result
sections and per-row columns all come from the **suite registry**
(:mod:`repro.experiments.bench`) — the same registry that builds the
``repro bench`` CLI and the ``make bench-*`` targets — so adding a
suite there automatically extends this validator.  The rules per file:

* the top level must carry ``schema`` / ``created_unix`` / ``dataset`` /
  ``config`` / ``results`` and the schema string must match exactly;
* every required result section (``train_step`` + ``eval`` for the
  fast-path file; ``train_throughput`` + ``train_quality`` for the
  training frontier, where every throughput row must carry the
  grad_mode/num_items/ms_per_step columns; ``serve`` +
  ``serve_sharded`` for the serve file; ``ann`` + ``ann_baseline`` for
  the ANN frontier, where every ``ann`` row must carry the
  nlist/nprobe/recall/users_per_s columns; ``latency`` for the
  tail-latency frontier, where every row must carry the
  offered_qps/achieved_qps/p50_ms/p99_ms/shed_rate columns;
  ``refresh`` for the live-refresh churn sweep, where every row must
  carry the churn_fraction/rows_changed/delta_apply_ms/ivf_update_ms/
  ivf_rebuild_ms/swap_pause_ms/requests_during_swap/errors columns;
  ``scale`` for the out-of-core frontier, where every row must carry
  the level/num_users/num_items/ms_per_step/users_per_s/peak_rss_mb
  columns) must be present and its rows must carry the per-kind
  required fields;
* every number anywhere in the payload must be finite — a NaN or
  infinity in a throughput column means a broken timing run was
  committed.

Run directly (``python scripts/check_bench.py [files...]``) or via
``make verify`` / ``scripts/verify.sh``; the CI workflow runs the same
check on every push.  Exits non-zero on any problem.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    from repro.experiments.bench import expected_files, required_row_fields
except ImportError:  # run directly, without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.experiments.bench import expected_files, required_row_fields

#: filename -> (expected schema, required result kinds) — derived from
#: the suite registry so the validator can never drift from the
#: generators (``tests/test_bench_check.py`` pins the coverage both ways)
EXPECTED = expected_files()

#: result kind -> fields every row of that kind must carry
REQUIRED_FIELDS = required_row_fields()

_TOP_LEVEL = ("schema", "created_unix", "dataset", "config", "results")


def _walk_numbers(value, path: str):
    """Yield ``(json_path, number)`` for every numeric leaf."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield path, value
    elif isinstance(value, dict):
        for key, child in value.items():
            yield from _walk_numbers(child, f"{path}.{key}")
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from _walk_numbers(child, f"{path}[{i}]")


def check_payload(name: str, payload) -> list[str]:
    """Return human-readable problems for one parsed bench payload."""
    expected_schema, required_kinds = EXPECTED[name]
    problems = []
    if not isinstance(payload, dict):
        return [f"{name}: top level is not a JSON object"]
    for key in _TOP_LEVEL:
        if key not in payload:
            problems.append(f"{name}: missing top-level key {key!r}")
    if problems:
        return problems
    if payload["schema"] != expected_schema:
        problems.append(f"{name}: schema {payload['schema']!r} does not "
                        f"match expected {expected_schema!r}")
    results = payload["results"]
    if not isinstance(results, list) or not results:
        problems.append(f"{name}: results section is empty")
        return problems
    kinds_seen = set()
    for i, row in enumerate(results):
        if not isinstance(row, dict) or "kind" not in row:
            problems.append(f"{name}: results[{i}] has no 'kind'")
            continue
        kinds_seen.add(row["kind"])
        missing = REQUIRED_FIELDS.get(row["kind"], set()) - set(row)
        if missing:
            problems.append(f"{name}: results[{i}] ({row['kind']}) is "
                            f"missing fields {sorted(missing)}")
    for kind in sorted(required_kinds - kinds_seen):
        problems.append(f"{name}: no {kind!r} rows — required section "
                        f"missing")
    for path, number in _walk_numbers(payload, name):
        if not math.isfinite(number):
            problems.append(f"{path}: non-finite number {number!r}")
    return problems


def check_file(path: pathlib.Path) -> list[str]:
    """Load and validate one bench file; returns its problem list."""
    name = path.name
    if name not in EXPECTED:
        return [f"{name}: unknown bench file (expected one of "
                f"{sorted(EXPECTED)})"]
    if not path.is_file():
        return [f"{name}: file missing at {path}"]
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{name}: invalid JSON ({exc})"]
    return check_payload(name, payload)


def main(argv=None) -> int:
    """Validate the given bench files (default: every registry file)."""
    argv = sys.argv[1:] if argv is None else argv
    paths = ([pathlib.Path(a) for a in argv] if argv
             else [REPO_ROOT / name for name in sorted(EXPECTED)])
    problems = []
    for path in paths:
        problems.extend(check_file(path))
    for problem in problems:
        print(f"bench-check: {problem}", file=sys.stderr)
    if not problems:
        print(f"bench-check: {len(paths)} files OK "
              f"({', '.join(p.name for p in paths)})")
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(min(main(), 1))
