"""Runnable latency-frontier harness (not collected by pytest).

Thin wrapper over :mod:`repro.experiments.perf` so the benchmark
directory has a one-command entry point::

    PYTHONPATH=src python benchmarks/latency_perf.py [--out BENCH_latency.json ...]

Trains one (model, loss) cell, exports an embedding snapshot, and
drives the async :class:`~repro.serve.runtime.ServingRuntime` with a
paced open-loop load generator, sweeping offered QPS multiplicatively
until saturation, writing ``BENCH_latency.json`` (schema
``bsl-latency-bench/v1``).  Equivalent to
``python -m repro.cli perf-latency``.
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import main
    raise SystemExit(main(["perf-latency", *sys.argv[1:]]))
