"""Table IV — SL vs BSL under 10-40% injected positive noise.

Paper claims: BSL beats SL at every noise level, and the improvement
widens as the noise ratio grows.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import ALL_DATASETS, table4_specs
from repro.experiments.report import print_table, relative_gain

from conftest import run_and_report

_RATIOS = (0.1, 0.2, 0.3, 0.4)


def _run():
    specs = table4_specs()
    metrics = {key: run_experiment(spec).metrics
               for key, spec in specs.items()}
    rows = []
    for ratio in _RATIOS:
        for dataset in ALL_DATASETS:
            sl = metrics[(dataset, ratio, "sl")]
            bsl = metrics[(dataset, ratio, "bsl")]
            rows.append([f"{ratio:.0%}", dataset,
                         sl["recall@20"], sl["ndcg@20"],
                         bsl["recall@20"], bsl["ndcg@20"],
                         relative_gain(bsl["ndcg@20"], sl["ndcg@20"])])
    print_table("Table IV — MF-SL vs MF-BSL under positive noise",
                ["noise", "dataset", "SL R@20", "SL N@20", "BSL R@20",
                 "BSL N@20", "NDCG gain %"], rows)
    return metrics


def test_table4_positive_noise(benchmark):
    metrics = run_and_report(benchmark, "table4_positive_noise", _run)

    def gain(dataset, ratio):
        sl = metrics[(dataset, ratio, "sl")]["ndcg@20"]
        bsl = metrics[(dataset, ratio, "bsl")]["ndcg@20"]
        return bsl / sl

    # BSL wins in the overwhelming majority of cells.
    cells = [(d, r) for d in ALL_DATASETS for r in _RATIOS]
    wins = sum(1 for d, r in cells if gain(d, r) >= 1.0)
    assert wins >= len(cells) * 0.75, f"BSL won only {wins}/{len(cells)}"
    # Average gain at 40% noise >= average gain at 10% noise.
    avg_low = sum(gain(d, 0.1) for d in ALL_DATASETS) / len(ALL_DATASETS)
    avg_high = sum(gain(d, 0.4) for d in ALL_DATASETS) / len(ALL_DATASETS)
    assert avg_high >= avg_low * 0.98
