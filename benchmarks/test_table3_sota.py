"""Table III — applying SL/BSL to the SSL SOTA models (SGL, SimGCL,
LightGCL).

Paper claim: replacing each model's ranking loss (BPR) with SL improves
it; BSL improves it at least as much, on average across datasets.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import ALL_DATASETS, table3_specs
from repro.experiments.report import print_table, relative_gain

from conftest import run_and_report

_MODELS = ("sgl", "simgcl", "lightgcl")


def _run():
    specs = table3_specs()
    metrics = {key: run_experiment(spec).metrics
               for key, spec in specs.items()}
    for model in _MODELS:
        rows = []
        for dataset in ALL_DATASETS:
            base = metrics[(dataset, model, "base")]
            row = [dataset, base["ndcg@20"]]
            for variant in ("sl", "bsl"):
                m = metrics[(dataset, model, variant)]
                row.extend([m["ndcg@20"],
                            relative_gain(m["ndcg@20"], base["ndcg@20"])])
            rows.append(row)
        print_table(f"Table III — {model.upper()} (+SL / +BSL), NDCG@20",
                    ["dataset", "base", "+SL", "gain %", "+BSL",
                     "gain %"], rows)
    return metrics


def test_table3_sota(benchmark):
    metrics = run_and_report(benchmark, "table3_sota", _run)

    def avg(model, variant):
        return sum(metrics[(d, model, variant)]["ndcg@20"]
                   for d in ALL_DATASETS) / len(ALL_DATASETS)

    for model in _MODELS:
        # On average SL improves the base model...
        assert avg(model, "sl") >= avg(model, "base") * 0.99, model
        # ...and BSL is at least on par with SL.
        assert avg(model, "bsl") >= avg(model, "sl") * 0.98, model
