"""Fig. 13 — sensitivity to the τ1/τ2 ratio of BSL.

Paper claim: performance peaks at an interior ratio; an excessively
large τ1 (ratio 2.0 — tiny positive-robustness radius) and an overly
small τ1 (ratio 0.5 — implausible worst case) both hurt.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import fig13_specs
from repro.experiments.report import print_header, print_series

from conftest import run_and_report


def _run():
    specs = fig13_specs()
    ratios = sorted({r for _, _, r in specs})
    datasets = sorted({d for d, _, _ in specs})
    ndcg = {key: run_experiment(spec).metric("ndcg@20")
            for key, spec in specs.items()}
    for dataset in datasets:
        print_header(f"Fig. 13 — NDCG@20 vs tau1/tau2 on {dataset}")
        for model in ("mf", "lightgcn"):
            print_series(model.upper(), ratios,
                         [ndcg[(dataset, model, r)] for r in ratios])
    return {"ndcg": ndcg, "ratios": ratios, "datasets": datasets}


def test_fig13_tau_ratio(benchmark):
    payload = run_and_report(benchmark, "fig13_tau_ratio", _run)
    ndcg, ratios = payload["ndcg"], payload["ratios"]
    for dataset in payload["datasets"]:
        for model in ("mf", "lightgcn"):
            series = {r: ndcg[(dataset, model, r)] for r in ratios}
            best_ratio = max(series, key=series.get)
            # Interior optimum: the extremes are never the best point.
            assert best_ratio not in (min(ratios), max(ratios)), (
                dataset, model, best_ratio)
            # The extreme ratios clearly hurt relative to the peak.
            assert series[max(ratios)] < series[best_ratio]
            assert series[min(ratios)] < series[best_ratio]
