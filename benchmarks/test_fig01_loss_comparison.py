"""Fig. 1 — SL vs BPR/MSE/BCE on MF and LightGCN (Yelp2018, Amazon).

Paper claim: SL consistently outperforms the other losses by a clear
margin (>15% on the real datasets) on both backbones.  Shape check:
SL is the best loss in every (dataset, backbone) column.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import fig1_specs
from repro.experiments.report import print_table, relative_gain

from conftest import run_and_report


def _run():
    specs = fig1_specs()
    metrics = {key: run_experiment(spec).metric("recall@20")
               for key, spec in specs.items()}
    datasets = sorted({d for d, _, _ in metrics})
    models = ("mf", "lightgcn")
    losses = ("bpr", "mse", "bce", "sl")
    rows = []
    for dataset in datasets:
        for model in models:
            row = [f"{model.upper()}@{dataset}"]
            row.extend(metrics[(dataset, model, loss)] for loss in losses)
            best_baseline = max(metrics[(dataset, model, loss)]
                                for loss in losses[:-1])
            row.append(relative_gain(metrics[(dataset, model, "sl")],
                                     best_baseline))
            rows.append(row)
    print_table("Fig. 1 — Recall@20 by loss (last col: SL gain % over "
                "best baseline)",
                ["setting", "BPR", "MSE", "BCE", "SL", "SL gain %"], rows)
    return metrics


def test_fig01_loss_comparison(benchmark):
    metrics = run_and_report(benchmark, "fig01_loss_comparison", _run)
    # Shape assertion: SL wins every column.
    for dataset in ("yelp2018-small", "amazon-small"):
        for model in ("mf", "lightgcn"):
            sl = metrics[(dataset, model, "sl")]
            for loss in ("bpr", "mse", "bce"):
                assert sl >= metrics[(dataset, model, loss)] * 0.97, (
                    f"SL not competitive for {model}/{dataset} vs {loss}")
