"""Runnable out-of-core scale harness (not collected by pytest).

Thin wrapper over :mod:`repro.experiments.scale_perf` so the benchmark
directory has a one-command entry point::

    PYTHONPATH=src python benchmarks/scale_perf.py [--out BENCH_scale.json ...]

Runs the full out-of-core pipeline per level — shard generation, mmap
table init, streamed sparse-grad training, sharded export, serving —
with one fresh subprocess per phase so each peak-RSS column is honest,
and writes ``BENCH_scale.json`` (schema ``bsl-scale-bench/v1``).
Equivalent to ``python -m repro.cli bench scale``.
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import main
    raise SystemExit(main(["bench", "scale", *sys.argv[1:]]))
