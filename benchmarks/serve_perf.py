"""Runnable serving perf harness (not collected by pytest).

Thin wrapper over :mod:`repro.experiments.perf` so the benchmark
directory has a one-command entry point::

    PYTHONPATH=src python benchmarks/serve_perf.py [--out BENCH_serve.json ...]

Trains one (model, loss) cell, exports an embedding snapshot and times
batched top-K recommendation throughput (exact vs int8-quantized index,
cold vs warm cache, plus the sharded scatter-gather sweep), writing
``BENCH_serve.json`` (schema ``bsl-serve-bench/v2``).  Equivalent to
``python -m repro.cli perf-serve``.
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import main
    raise SystemExit(main(["perf-serve", *sys.argv[1:]]))
