"""Table II — overall comparison: {MF, NGCF, LightGCN} x {BPR, BCE, MSE,
SL, BSL} on all four datasets, plus standalone baselines (CML, ENMF,
SGL, SimGCL, LightGCL).

Paper claims: SL and BSL top every backbone column by a clear margin;
BSL >= SL nearly everywhere; basic backbones with SL/BSL match or beat
the standalone SOTA baselines.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import ALL_DATASETS, table2_specs
from repro.experiments.report import print_table

from conftest import run_and_report

_BACKBONES = ("MF", "NGCF", "LGN")
_LOSSES = ("BPR", "BCE", "MSE", "SL", "BSL")
_BASELINES = ("CML", "ENMF", "SGL", "SimGCL", "LightGCL")


def _run():
    specs = table2_specs()
    metrics = {key: run_experiment(spec).metrics
               for key, spec in specs.items()}
    for dataset in ALL_DATASETS:
        rows = []
        for label in _BASELINES:
            m = metrics[(dataset, label)]
            rows.append([label, m["recall@20"], m["ndcg@20"]])
        for backbone in _BACKBONES:
            for loss in _LOSSES:
                m = metrics[(dataset, f"{backbone}+{loss}")]
                rows.append([f"{backbone}+{loss}", m["recall@20"],
                             m["ndcg@20"]])
        print_table(f"Table II — {dataset}",
                    ["model", "Recall@20", "NDCG@20"], rows)
    return metrics


def test_table2_overall(benchmark):
    metrics = run_and_report(benchmark, "table2_overall", _run)

    def ndcg(dataset, label):
        return metrics[(dataset, label)]["ndcg@20"]

    wins = 0
    cells = 0
    for dataset in ALL_DATASETS:
        for backbone in _BACKBONES:
            sl_like = max(ndcg(dataset, f"{backbone}+SL"),
                          ndcg(dataset, f"{backbone}+BSL"))
            baseline = max(ndcg(dataset, f"{backbone}+{loss}")
                           for loss in ("BPR", "BCE", "MSE"))
            cells += 1
            if sl_like >= baseline * 0.98:
                wins += 1
    # SL/BSL must win (or tie within 2%) the overwhelming majority of
    # backbone columns.
    assert wins >= cells - 1, f"SL/BSL won only {wins}/{cells} columns"
    # BSL >= SL on average across all cells.
    bsl_avg = sum(ndcg(d, f"{b}+BSL") for d in ALL_DATASETS
                  for b in _BACKBONES)
    sl_avg = sum(ndcg(d, f"{b}+SL") for d in ALL_DATASETS
                 for b in _BACKBONES)
    assert bsl_avg >= sl_avg * 0.98
