"""Fig. 8 — NDCG@20 vs the false-negative sampling probability.

Paper claim: SL and BSL stay stable (via DRO) and dominate BPR/BCE/MSE
as the sampler draws more positives-as-negatives.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import fig8_specs
from repro.experiments.report import print_header, print_series

from conftest import run_and_report


def _run():
    specs = fig8_specs()
    noise_levels = sorted({r for _, _, r in specs})
    losses = ("mse", "bpr", "bce", "sl", "bsl")
    datasets = sorted({d for d, _, _ in specs})
    # per-cell grid search, as the paper does: keep each cell's best.
    ndcg = {key: max(run_experiment(spec).metric("ndcg@20")
                     for spec in candidates)
            for key, candidates in specs.items()}
    for dataset in datasets:
        print_header(f"Fig. 8 — NDCG@20 vs sampling prob. on {dataset}")
        for loss in losses:
            print_series(loss.upper(), noise_levels,
                         [ndcg[(dataset, loss, r)] for r in noise_levels])
    return {"ndcg": ndcg, "datasets": datasets,
            "noise_levels": noise_levels}


def test_fig08_false_negatives(benchmark):
    payload = run_and_report(benchmark, "fig08_false_negatives", _run)
    ndcg = payload["ndcg"]
    for dataset in payload["datasets"]:
        top_noise = max(payload["noise_levels"])
        robust_best = max(ndcg[(dataset, loss, top_noise)]
                          for loss in ("sl", "bsl"))
        fragile_best = max(ndcg[(dataset, loss, top_noise)]
                           for loss in ("mse", "bce", "bpr"))
        # At the highest noise level SL/BSL must lead.
        assert robust_best >= fragile_best * 0.97, dataset
