"""Runnable fast-path perf harness (not collected by pytest).

Thin wrapper over :mod:`repro.experiments.perf` so the benchmark
directory has a one-command entry point::

    PYTHONPATH=src python benchmarks/perf.py [--out BENCH_fastpath.json ...]

Times train-step and full-ranking-eval throughput per (model, loss)
cell for both the fused/cached fast path and the compositional
reference, and writes ``BENCH_fastpath.json`` (schema
``bsl-fastpath-bench/v1``).  Equivalent to ``python -m repro.cli perf``.
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import main
    raise SystemExit(main(["perf", *sys.argv[1:]]))
