"""Runnable telemetry-overhead harness (not collected by pytest).

Thin wrapper over :mod:`repro.experiments.perf` so the benchmark
directory has a one-command entry point::

    PYTHONPATH=src python benchmarks/obs_perf.py [--out BENCH_obs.json ...]

Trains one (model, loss) cell, exports an embedding snapshot, and
serves the same request stream with telemetry off, with the metrics
registry enabled, and with metrics + span tracing enabled, writing
``BENCH_obs.json`` (schema ``bsl-obs-bench/v1``).  Equivalent to
``python -m repro.cli bench obs``.
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import main
    raise SystemExit(main(["bench", "obs", *sys.argv[1:]]))
