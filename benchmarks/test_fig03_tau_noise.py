"""Fig. 3 — robustness analysis: NDCG vs τ across false-negative levels,
and the implied robustness radius η at the best τ (Eq. 16).

Paper claims: (a) NDCG@20 has an interior optimum in τ; (b) the best τ
grows with the noise rate; (c) the implied η at the best τ grows with
the noise rate.
"""

import numpy as np

from repro.dro import eta_distribution
from repro.experiments import run_experiment, collect_negative_scores
from repro.experiments.presets import fig3_specs
from repro.experiments.report import print_header, print_series

from conftest import run_and_report


def _run():
    specs = fig3_specs()
    taus = sorted({tau for _, tau in specs})
    noise_levels = sorted({r for r, _ in specs})
    results = {key: run_experiment(spec) for key, spec in specs.items()}

    print_header("Fig. 3a — NDCG@20 vs temperature per noise level")
    ndcg = {key: res.metric("ndcg@20") for key, res in results.items()}
    for rnoise in noise_levels:
        print_series(f"rnoise={rnoise:g}", taus,
                     [ndcg[(rnoise, tau)] for tau in taus])

    print_header("Fig. 3b — implied eta at the best tau per noise level")
    best_taus, etas, variances, etas_fixed = {}, {}, {}, {}
    fixed_tau = 0.4
    for rnoise in noise_levels:
        best_tau = max(taus, key=lambda t: ndcg[(rnoise, t)])
        best_taus[rnoise] = best_tau
        neg = collect_negative_scores(results[(rnoise, best_tau)],
                                      n_users=64, n_negatives=256)
        etas[rnoise] = float(eta_distribution(neg, best_tau).mean())
        variances[rnoise] = float(neg.var(axis=1).mean())
        etas_fixed[rnoise] = float(
            eta_distribution(neg, fixed_tau).mean())
    print_series("best tau", noise_levels,
                 [best_taus[r] for r in noise_levels])
    print_series("mean eta @ best tau", noise_levels,
                 [etas[r] for r in noise_levels])
    print_series("sampling-dist variance", noise_levels,
                 [variances[r] for r in noise_levels])
    print_series(f"mean eta @ fixed tau={fixed_tau}", noise_levels,
                 [etas_fixed[r] for r in noise_levels])
    return {"ndcg": ndcg, "best_taus": best_taus, "etas": etas,
            "variances": variances, "etas_fixed": etas_fixed,
            "taus": taus, "noise_levels": noise_levels}


def test_fig03_tau_noise(benchmark):
    payload = run_and_report(benchmark, "fig03_tau_noise", _run)
    ndcg, taus = payload["ndcg"], payload["taus"]
    # (a) clean data: interior-or-right optimum, i.e. the smallest tau is
    # never the best (too-sharp worst case hurts).
    for rnoise in payload["noise_levels"]:
        best = payload["best_taus"][rnoise]
        assert best > min(taus)
    # (b) best tau does not shrink as noise grows (trend, endpoints).
    assert payload["best_taus"][max(payload["noise_levels"])] >= \
        payload["best_taus"][0.0]
    # (c) Corollary III.1 mechanism: the negative sampling distribution
    # gets strictly noisier (higher score variance) with rnoise, so the
    # implied radius at a FIXED tau rises.  (Across best-tau points our
    # coarse tau grid overshoots, so that series may be non-monotone —
    # see EXPERIMENTS.md.)
    lo, hi = 0.0, max(payload["noise_levels"])
    assert payload["variances"][hi] > payload["variances"][lo]
    assert payload["etas_fixed"][hi] > payload["etas_fixed"][lo]
    assert all(v > 0 for v in payload["etas"].values())
