"""Shared benchmark utilities.

Every bench file reproduces one table or figure of the paper: it runs
the preset experiment grid, prints the same rows/series the paper
reports, and persists the report under ``benchmarks/results/`` so the
numbers survive the pytest-benchmark output capture.

Run the whole suite with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import io
import pathlib
from contextlib import redirect_stdout

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_and_report(benchmark, name: str, fn):
    """Run ``fn`` once under pytest-benchmark and persist its printout.

    ``fn`` prints a report and returns a result payload; the printed
    text is mirrored to ``benchmarks/results/<name>.txt`` and echoed to
    the live stdout.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def wrapped():
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            payload = fn()
        text = buffer.getvalue()
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(text)
        return payload

    return benchmark.pedantic(wrapped, rounds=1, iterations=1)
