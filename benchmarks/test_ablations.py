"""Ablation benches for the design choices called out in DESIGN.md §5.

* Denominator: removing the positive term from SL's denominator
  (paper footnote 1 / decoupled contrastive learning).
* Sampler: uniform sampled negatives vs in-batch negatives (Table V).
* BSL pooling: paper-pseudocode mean pooling vs the strict Eq. (18)
  log-mean-exp estimator.
* Fairness source: uniform vs popularity-based negative sampling —
  the paper argues SL's fairness is intrinsic, not a sampling artifact.
"""

from repro.eval import group_ndcg
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.report import print_table

from conftest import run_and_report

_DATASET = "yelp2018-small"
_TAU = 0.4


def _spec(**overrides):
    defaults = dict(dataset=_DATASET, model="mf", loss="sl",
                    loss_kwargs={"tau": _TAU}, epochs=25)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def test_ablation_denominator(benchmark):
    def _run():
        without = run_experiment(_spec(
            loss_kwargs={"tau": _TAU, "include_positive": False}))
        with_pos = run_experiment(_spec(
            loss_kwargs={"tau": _TAU, "include_positive": True}))
        rows = [["SL w/o positive in denom", without.metric("ndcg@20")],
                ["SL w/ positive in denom", with_pos.metric("ndcg@20")]]
        print_table("Ablation — SL denominator (paper footnote 1)",
                    ["variant", "NDCG@20"], rows)
        return {"without": without.metric("ndcg@20"),
                "with": with_pos.metric("ndcg@20")}

    payload = run_and_report(benchmark, "ablation_denominator", _run)
    # Footnote 1: removal is at worst neutral, usually slightly better.
    assert payload["without"] >= payload["with"] * 0.97


def test_ablation_sampler(benchmark):
    def _run():
        uniform = run_experiment(_spec())
        in_batch = run_experiment(_spec(sampler="in-batch",
                                        batch_size=256))
        rows = [["uniform negatives", uniform.metric("ndcg@20")],
                ["in-batch negatives", in_batch.metric("ndcg@20")]]
        print_table("Ablation — sampled vs in-batch negatives (Table V)",
                    ["sampler", "NDCG@20"], rows)
        return {"uniform": uniform.metric("ndcg@20"),
                "in_batch": in_batch.metric("ndcg@20")}

    payload = run_and_report(benchmark, "ablation_sampler", _run)
    # At our reduced catalogue scale, in-batch negatives (which are
    # popularity-skewed by construction) trail uniform sampling badly —
    # consistent with the paper reserving in-batch for the large-batch
    # GCN setups.  Both must still learn something real.
    assert payload["uniform"] > payload["in_batch"]
    assert payload["in_batch"] >= payload["uniform"] * 0.25


def test_ablation_bsl_pooling(benchmark):
    def _run():
        results = {}
        for pooling in ("mean", "log_mean_exp"):
            res = run_experiment(_spec(
                loss="bsl",
                loss_kwargs={"tau1": 0.44, "tau2": _TAU,
                             "pooling": pooling},
                positive_noise=0.4))
            results[pooling] = res.metric("ndcg@20")
        rows = [[p, v] for p, v in results.items()]
        print_table("Ablation — BSL batch estimator under 40% positive "
                    "noise", ["pooling", "NDCG@20"], rows)
        return results

    payload = run_and_report(benchmark, "ablation_bsl_pooling", _run)
    # The paper's mean-pooled estimator must be the practical winner
    # (the strict estimator's row softmax slows optimization).
    assert payload["mean"] >= payload["log_mean_exp"] * 0.9


def test_ablation_popularity_sampling(benchmark):
    def _run():
        profiles = {}
        for sampler in ("uniform", "popularity"):
            res = run_experiment(_spec(sampler=sampler))
            groups = group_ndcg(res.model, res.dataset, n_groups=10)
            profiles[sampler] = {
                "ndcg": res.metric("ndcg@20"),
                "bottom_mass": float(groups[:5].sum()),
            }
        rows = [[s, p["ndcg"], p["bottom_mass"]]
                for s, p in profiles.items()]
        print_table("Ablation — SL fairness under uniform vs popularity "
                    "sampling", ["sampler", "NDCG@20", "bottom-5 mass"],
                    rows)
        return profiles

    payload = run_and_report(benchmark, "ablation_popularity_sampling",
                             _run)
    # SL keeps nontrivial tail mass under *uniform* sampling — fairness
    # is intrinsic to the loss, not an artifact of popularity sampling.
    assert payload["uniform"]["bottom_mass"] > 0
