"""Fig. 5 — ablation on the variance term of Lemma 2.

Training with the Lemma 2 surrogate WITH the variance penalty
('w/ variance') vs without it ('w/o variance').  Paper claim: removing
the variance term shifts NDCG mass from unpopular groups to popular
ones — i.e. exacerbates popularity bias.
"""

from repro.eval import fairness_gap, group_ndcg
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.report import print_table

from conftest import run_and_report

_DATASET = "yelp2018-small"
_TAU = 0.4


def _run():
    profiles = {}
    for label, loss in (("w/ variance", "sl-meanvar"),
                        ("w/o variance", "sl-novar")):
        spec = ExperimentSpec(dataset=_DATASET, model="mf", loss=loss,
                              loss_kwargs={"tau": _TAU}, epochs=25)
        result = run_experiment(spec)
        profiles[label] = {
            "groups": group_ndcg(result.model, result.dataset, k=20,
                                 n_groups=10),
            "ndcg": result.metric("ndcg@20"),
        }
    rows = []
    for label, data in profiles.items():
        g = data["groups"]
        rows.append([label, g[:5].sum(), g[7:].sum(), fairness_gap(g),
                     data["ndcg"]])
    print_table("Fig. 5 — variance-term ablation (10 popularity groups)",
                ["variant", "bottom-5 mass", "top-3 mass", "gap",
                 "ndcg@20"], rows)
    return profiles


def test_fig05_variance_ablation(benchmark):
    profiles = run_and_report(benchmark, "fig05_variance_ablation", _run)
    with_var = profiles["w/ variance"]["groups"]
    without = profiles["w/o variance"]["groups"]
    # Removing the variance penalty must not improve tail fairness:
    # the unpopular-half share of NDCG mass shrinks (or the popularity
    # gap widens) without it.
    share_with = with_var[:5].sum() / max(with_var.sum(), 1e-12)
    share_without = without[:5].sum() / max(without.sum(), 1e-12)
    gap_with = fairness_gap(with_var) / max(with_var.sum(), 1e-12)
    gap_without = fairness_gap(without) / max(without.sum(), 1e-12)
    assert (share_with >= share_without * 0.95
            or gap_without >= gap_with)
