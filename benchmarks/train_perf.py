"""Runnable training-throughput harness (not collected by pytest).

Thin wrapper over :mod:`repro.experiments.perf` so the benchmark
directory has a one-command entry point::

    PYTHONPATH=src python benchmarks/train_perf.py [--out BENCH_train.json ...]

Sweeps catalogue size x loss x grad mode, timing the dense
full-catalogue training step against the row-sparse fast path (sampled
scoring + SparseAdam), plus an end-to-end NDCG@20 quality comparison,
and writes ``BENCH_train.json`` (schema ``bsl-train-bench/v1``).
Equivalent to ``python -m repro.cli perf-train``.
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import main
    raise SystemExit(main(["perf-train", *sys.argv[1:]]))
