"""Runnable live-refresh harness (not collected by pytest).

Thin wrapper over :mod:`repro.experiments.perf` so the benchmark
directory has a one-command entry point::

    PYTHONPATH=src python benchmarks/refresh_perf.py [--out BENCH_refresh.json ...]

Trains one (model, loss) cell, exports an embedding snapshot, builds an
IVF index over it, then sweeps catalogue churn fractions: each level
diffs a churned copy into a delta (:mod:`repro.serve.delta`), times
in-memory delta replay, incremental IVF maintenance vs a from-scratch
rebuild, and the atomic snapshot swap applied between micro-batches
while a paced request stream is in flight, writing
``BENCH_refresh.json`` (schema ``bsl-refresh-bench/v1``).  Equivalent
to ``python -m repro.cli perf-refresh``.
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import main
    raise SystemExit(main(["perf-refresh", *sys.argv[1:]]))
