"""Fig. 9 — NDCG@20 vs the number of sampled negatives.

Paper claim: SL/BSL are stable (often improving) as negatives grow,
while pointwise/pairwise losses fluctuate or degrade, especially on the
small dense dataset (MovieLens) where big samples hit false negatives.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import fig9_specs
from repro.experiments.report import print_header, print_series

from conftest import run_and_report


def _run():
    specs = fig9_specs()
    counts = sorted({n for _, _, n in specs})
    losses = ("bce", "mse", "bpr", "sl", "bsl")
    datasets = sorted({d for d, _, _ in specs})
    ndcg = {key: run_experiment(spec).metric("ndcg@20")
            for key, spec in specs.items()}
    for dataset in datasets:
        print_header(f"Fig. 9 — NDCG@20 vs #negatives on {dataset}")
        for loss in losses:
            print_series(loss.upper(), counts,
                         [ndcg[(dataset, loss, n)] for n in counts])
    return {"ndcg": ndcg, "datasets": datasets, "counts": counts}


def test_fig09_num_negatives(benchmark):
    payload = run_and_report(benchmark, "fig09_num_negatives", _run)
    ndcg, counts = payload["ndcg"], payload["counts"]
    for dataset in payload["datasets"]:
        # SL/BSL must not collapse at the largest sample size: their
        # best-vs-worst spread across sample sizes stays tight-ish.
        for loss in ("sl", "bsl"):
            series = [ndcg[(dataset, loss, n)] for n in counts]
            assert min(series[1:]) >= 0.7 * max(series), (dataset, loss)
        # and at max negatives the robust losses lead the fragile ones.
        top = max(counts)
        robust = max(ndcg[(dataset, loss, top)] for loss in ("sl", "bsl"))
        fragile = max(ndcg[(dataset, loss, top)]
                      for loss in ("mse", "bce", "bpr"))
        assert robust >= fragile * 0.97, dataset
