"""Runnable fault-tolerance harness (not collected by pytest).

Thin wrapper over :mod:`repro.experiments.faults_perf` so the benchmark
directory has a one-command entry point::

    PYTHONPATH=src python benchmarks/faults_perf.py [--out BENCH_faults.json ...]

Trains one (model, loss) cell, exports it sharded, then injects seeded
latency/error faults into one shard while a fixed request stream runs
under the deadline-only baseline and the full resilient policy (retries
+ hedged requests + circuit breakers), writing ``BENCH_faults.json``
(schema ``bsl-faults-bench/v1``).  Equivalent to
``python -m repro.cli bench faults``.
"""

from __future__ import annotations

import pathlib
import sys

if __name__ == "__main__":
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.cli import main
    raise SystemExit(main(["bench", "faults", *sys.argv[1:]]))
