"""Figs. 10-11 — item-embedding separation under positive noise
(t-SNE study on Gowalla and Yelp2018).

The paper shows t-SNE plots where SL's item embeddings entangle as fake
positives are added while BSL keeps clusters separated.  Our synthetic
datasets carry ground-truth item clusters, so we score separation
quantitatively (silhouette on the t-SNE projection + separation ratio
in embedding space) instead of eyeballing plots.
"""

import numpy as np

from repro.analysis import (cluster_separation_ratio, silhouette_score,
                            tsne)
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.presets import tuned_loss_kwargs
from repro.experiments.report import print_table

from conftest import run_and_report

_NOISES = (0.0, 0.2, 0.4)


def _separation(result):
    dataset = result.dataset
    _, items = result.model.embeddings()
    labels = dataset.item_clusters
    # score only items with enough interactions to have been trained
    seen = dataset.item_popularity >= 3
    items, labels = items[seen], labels[seen]
    projected = tsne(items, perplexity=20, n_iter=200, rng=0)
    return {
        "silhouette": silhouette_score(projected, labels),
        "separation": cluster_separation_ratio(items, labels),
    }


def _run():
    payload = {}
    rows = []
    for dataset in ("gowalla-small", "yelp2018-small"):
        for loss in ("sl", "bsl"):
            for noise in _NOISES:
                spec = ExperimentSpec(
                    dataset=dataset, model="mf", loss=loss,
                    loss_kwargs=tuned_loss_kwargs(loss, noise),
                    positive_noise=noise, epochs=20)
                result = run_experiment(spec)
                scores = _separation(result)
                payload[(dataset, loss, noise)] = scores
                rows.append([dataset, loss.upper(), f"{noise:.0%}",
                             scores["silhouette"], scores["separation"]])
    print_table("Figs. 10-11 — embedding cluster separation under "
                "positive noise",
                ["dataset", "loss", "noise", "tsne silhouette",
                 "separation ratio"], rows)
    return payload


def test_fig10_11_tsne(benchmark):
    payload = run_and_report(benchmark, "fig10_11_tsne", _run)
    for dataset in ("gowalla-small", "yelp2018-small"):
        # Noise degrades SL's separation...
        sl_clean = payload[(dataset, "sl", 0.0)]["separation"]
        sl_noisy = payload[(dataset, "sl", 0.4)]["separation"]
        assert sl_noisy <= sl_clean * 1.05, dataset
        # ...and BSL keeps at least as much separation as SL at 40%.
        bsl_noisy = payload[(dataset, "bsl", 0.4)]["separation"]
        assert bsl_noisy >= sl_noisy * 0.95, dataset
