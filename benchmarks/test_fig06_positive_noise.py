"""Fig. 6 — relative NDCG@20 of SL as positive noise grows (4 datasets).

Paper claim: performance declines monotonically-ish as the fraction of
fake positives rises from 0% to 40%, on every dataset.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import ALL_DATASETS, fig6_specs
from repro.experiments.report import print_header, print_series

from conftest import run_and_report


def _run():
    specs = fig6_specs()
    ratios = sorted({r for _, r in specs})
    ndcg = {key: run_experiment(spec).metric("ndcg@20")
            for key, spec in specs.items()}
    print_header("Fig. 6 — relative NDCG@20 (%) vs positive-noise ratio")
    relative = {}
    for dataset in ALL_DATASETS:
        base = ndcg[(dataset, 0.0)]
        series = [100.0 * ndcg[(dataset, r)] / base for r in ratios]
        relative[dataset] = dict(zip(ratios, series))
        print_series(dataset, ratios, series, precision=1)
    return relative


def test_fig06_positive_noise(benchmark):
    relative = run_and_report(benchmark, "fig06_positive_noise", _run)
    for dataset, series in relative.items():
        # 40% noise must hurt...
        assert series[0.4] < 100.0, dataset
        # ...and the trend must be downward overall (allow local jitter).
        assert series[0.4] <= series[0.1] + 2.0, dataset
