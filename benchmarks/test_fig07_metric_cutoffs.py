"""Fig. 7 — NDCG at cutoffs {5, 10, 15}: MF/LGN with SL/BSL vs SSL SOTA.

Paper claim: equipping the basic backbones with SL/BSL is enough to
match or surpass the SOTA contrastive models at every cutoff.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import fig7_specs
from repro.experiments.report import print_table

from conftest import run_and_report


def _run():
    specs = fig7_specs()
    results = {key: run_experiment(spec).metrics
               for key, spec in specs.items()}
    datasets = sorted({d for d, _ in results})
    labels = ("SimGCL", "SGL", "MF_SL", "MF_BSL", "LGN_SL", "LGN_BSL")
    payload = {}
    for dataset in datasets:
        rows = []
        for label in labels:
            m = results[(dataset, label)]
            rows.append([label, m["ndcg@5"], m["ndcg@10"], m["ndcg@15"]])
            payload[(dataset, label)] = m
        print_table(f"Fig. 7 — NDCG cutoffs on {dataset}",
                    ["model", "NDCG@5", "NDCG@10", "NDCG@15"], rows)
    return payload


def test_fig07_metric_cutoffs(benchmark):
    payload = run_and_report(benchmark, "fig07_metric_cutoffs", _run)
    for dataset in ("yelp2018-small", "ml1m-small"):
        for k in (5, 10, 15):
            basic_best = max(payload[(dataset, label)][f"ndcg@{k}"]
                             for label in ("MF_SL", "MF_BSL", "LGN_SL",
                                           "LGN_BSL"))
            sota_best = max(payload[(dataset, label)][f"ndcg@{k}"]
                            for label in ("SimGCL", "SGL"))
            assert basic_best >= sota_best * 0.95, (dataset, k)
