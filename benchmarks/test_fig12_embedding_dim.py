"""Fig. 12 — embedding-dimension sweep.

Paper claim: SL/BSL keep improving (or stay competitive with SOTA) as
the embedding size grows, and remain strong at low dimensions.
"""

from repro.experiments import run_experiment
from repro.experiments.presets import fig12_specs
from repro.experiments.report import print_header, print_series

from conftest import run_and_report


def _run():
    specs = fig12_specs()
    dims = sorted({d for _, _, d in specs})
    labels = ("MF_SL", "MF_BSL", "LGN_SL", "SimGCL")
    datasets = sorted({d for d, _, _ in specs})
    ndcg = {key: run_experiment(spec).metric("ndcg@20")
            for key, spec in specs.items()}
    for dataset in datasets:
        print_header(f"Fig. 12 — NDCG@20 vs embedding dim on {dataset}")
        for label in labels:
            print_series(label, dims,
                         [ndcg[(dataset, label, d)] for d in dims])
    return {"ndcg": ndcg, "dims": dims, "datasets": datasets}


def test_fig12_embedding_dim(benchmark):
    payload = run_and_report(benchmark, "fig12_embedding_dim", _run)
    ndcg, dims = payload["ndcg"], payload["dims"]
    for dataset in payload["datasets"]:
        # At the largest dim, MF+SL/BSL at least match SimGCL.
        top = max(dims)
        basic = max(ndcg[(dataset, "MF_SL", top)],
                    ndcg[(dataset, "MF_BSL", top)])
        assert basic >= ndcg[(dataset, "SimGCL", top)] * 0.95, dataset
        # SL does not collapse at the smallest dim (practical low-dim use).
        assert ndcg[(dataset, "MF_SL", min(dims))] >= \
            0.6 * ndcg[(dataset, "MF_SL", top)], dataset
