"""Fig. 4 — (a) popularity-group NDCG per loss; (b) DRO worst-case
weights vs prediction score for several temperatures.

Paper claims: (a) SL lifts the unpopular groups relative to BPR/MSE/BCE
(fairness via the variance penalty); (b) lower τ produces a more
extreme worst-case weighting over hard negatives.
"""

import numpy as np

from repro.dro import worst_case_weights
from repro.eval import fairness_gap, group_ndcg
from repro.experiments import (ExperimentSpec, collect_negative_scores,
                               run_experiment)
from repro.experiments.presets import LOSS_GRID
from repro.experiments.report import print_header, print_series, print_table

from conftest import run_and_report

_DATASET = "yelp2018-small"


def _run():
    group_profiles = {}
    for loss in ("bpr", "mse", "bce", "sl"):
        spec = ExperimentSpec(dataset=_DATASET, model="mf", loss=loss,
                              loss_kwargs=LOSS_GRID[loss], epochs=25)
        result = run_experiment(spec)
        group_profiles[loss] = group_ndcg(result.model, result.dataset,
                                          k=20, n_groups=10)

    print_header("Fig. 4a — per-popularity-group NDCG@20 (group 1 = least "
                 "popular)")
    rows = [[loss.upper()] + list(profile) + [fairness_gap(profile)]
            for loss, profile in group_profiles.items()]
    print_table("group profile", ["loss"] + [f"g{i}" for i in range(1, 11)]
                + ["gap"], rows)

    print_header("Fig. 4b — worst-case weight vs score for tau in "
                 "{0.09, 0.11, 0.13}")
    spec = ExperimentSpec(dataset=_DATASET, model="mf", loss="sl",
                          loss_kwargs=LOSS_GRID["sl"], epochs=25)
    result = run_experiment(spec)
    neg = collect_negative_scores(result, n_users=1, n_negatives=512)[0]
    order = np.argsort(neg)
    weight_extremity = {}
    for tau in (0.09, 0.11, 0.13):
        w = worst_case_weights(neg, tau=tau)
        weight_extremity[tau] = float(w.max())
        # print a coarse score->weight curve (deciles)
        deciles = np.array_split(order, 10)
        print_series(f"tau={tau}", [float(neg[d].mean()) for d in deciles],
                     [float(w[d].mean()) for d in deciles])
    return {"groups": group_profiles, "extremity": weight_extremity}


def test_fig04_fairness(benchmark):
    payload = run_and_report(benchmark, "fig04_fairness", _run)
    groups = payload["groups"]
    # (a) SL's unpopular-half NDCG mass beats BPR's and BCE's.
    assert groups["sl"][:5].sum() >= groups["bpr"][:5].sum() * 0.95
    assert groups["sl"][:5].sum() >= groups["bce"][:5].sum() * 0.95
    # (b) weight extremity decreases as tau rises (Fig. 4b shape).
    ext = payload["extremity"]
    assert ext[0.09] > ext[0.11] > ext[0.13]
