"""The ``repro export`` / ``repro recommend`` CLI round-trip."""

import json

import numpy as np
import pytest

from repro import cli
from repro.serve import load_snapshot


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """Snapshot directory produced by the real `repro export` verb."""
    out = tmp_path_factory.mktemp("cli_snapshot") / "snap"
    rc = cli.main(["export", "--dataset", "tiny", "--model", "mf",
                   "--loss", "sl", "--epochs", "2", "--dim", "8",
                   "--negatives", "8", "--out", str(out)])
    assert rc == 0
    return out


class TestExport:
    def test_writes_manifest_and_arrays(self, exported):
        manifest = json.loads((exported / "manifest.json").read_text())
        assert manifest["schema"] == "bsl-serve-snapshot/v1"
        assert manifest["model"] == "mf"
        assert manifest["extra"]["loss"] == "sl"
        for fname in ("user_embeddings.npy", "item_embeddings.npy",
                      "seen_indptr.npy", "seen_items.npy"):
            assert (exported / fname).is_file()

    def test_prints_version(self, exported, capsys):
        cli.main(["recommend", "--snapshot", str(exported), "--users", "0"])
        out = capsys.readouterr().out
        manifest = json.loads((exported / "manifest.json").read_text())
        assert manifest["version"] in out

    def test_export_from_checkpoint(self, tiny_dataset, tmp_path):
        from repro.models import MF
        from repro.train.checkpoint import save_checkpoint

        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        ckpt = tmp_path / "model.npz"
        save_checkpoint(model, ckpt)
        out = tmp_path / "snap"
        rc = cli.main(["export", "--dataset", "tiny", "--model", "mf",
                       "--dim", "8", "--checkpoint", str(ckpt),
                       "--out", str(out)])
        assert rc == 0
        snapshot = load_snapshot(out, verify=True)
        users, items = model.embeddings()
        np.testing.assert_array_equal(np.asarray(snapshot.users), users)
        np.testing.assert_array_equal(np.asarray(snapshot.items), items)


class TestRecommend:
    def test_round_trip(self, exported, capsys):
        rc = cli.main(["recommend", "--snapshot", str(exported),
                       "--users", "0,1,2", "--k", "5", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top-5" in out
        # three user rows with five items each
        data_lines = [l for l in out.splitlines()
                      if l and l.split()[0] in {"0", "1", "2"}]
        assert len(data_lines) == 3

    def test_quantized_index_flag(self, exported, capsys):
        rc = cli.main(["recommend", "--snapshot", str(exported),
                       "--users", "0", "--index", "quantized"])
        assert rc == 0
        assert "quantized" in capsys.readouterr().out

    def test_matches_service_results(self, exported, capsys):
        from repro.serve import RecommendationService

        cli.main(["recommend", "--snapshot", str(exported), "--users", "7",
                  "--k", "4"])
        out = capsys.readouterr().out
        service = RecommendationService(load_snapshot(exported))
        expected = service.recommend_one(7, k=4).items.tolist()
        row = next(l for l in out.splitlines() if l.startswith("7"))
        shown = [int(t) for t in row.split("|")[1].split()]
        assert shown == expected

    def test_missing_snapshot_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            cli.main(["recommend", "--snapshot", str(tmp_path / "nope")])
