"""Snapshot export/load round-trips, manifest versioning, integrity."""

import json

import numpy as np
import pytest

from repro.models import MF, LightGCN
from repro.serve import (SNAPSHOT_SCHEMA, DeltaManifest, LiveState,
                         SnapshotManifest, export_delta, export_snapshot,
                         load_delta, load_snapshot)


class TestExport:
    def test_roundtrip_preserves_tables(self, tiny_dataset, tiny_mf_snapshot):
        model, snapshot = tiny_mf_snapshot
        loaded = load_snapshot(snapshot.path)
        users, items = model.embeddings()
        np.testing.assert_array_equal(np.asarray(loaded.users), users)
        np.testing.assert_array_equal(np.asarray(loaded.items), items)
        assert loaded.version == snapshot.version

    def test_manifest_fields(self, tiny_dataset, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        m = snapshot.manifest
        assert m.schema == SNAPSHOT_SCHEMA
        assert m.model == "mf" and m.model_class == "MF"
        assert (m.num_users, m.num_items) == (tiny_dataset.num_users,
                                              tiny_dataset.num_items)
        assert m.dim == 8
        assert m.dataset == "tiny"
        assert m.scoring == "cosine"  # MF tests with cosine (Table V)
        assert m.created_unix > 0

    def test_seen_sets_match_train_split(self, tiny_dataset,
                                         tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        loaded = load_snapshot(snapshot.path)
        for u in (0, 7, tiny_dataset.num_users - 1):
            np.testing.assert_array_equal(
                loaded.seen(u), tiny_dataset.train_items_by_user[u])

    def test_propagation_baked_in(self, tiny_dataset, tmp_path):
        """GCN snapshots store post-propagation tables, not raw weights."""
        model = LightGCN(tiny_dataset, dim=8, rng=0)
        snapshot = export_snapshot(model, tiny_dataset, tmp_path)
        users, _ = model.embeddings()
        np.testing.assert_array_equal(np.asarray(snapshot.users), users)
        assert not np.array_equal(np.asarray(snapshot.users),
                                  model.user_embedding.weight.data)

    def test_export_in_train_mode_uses_eval_forward(self, tiny_dataset,
                                                    tmp_path):
        """Export must not leak train-mode perturbations into the tables."""
        model = LightGCN(tiny_dataset, dim=8, rng=0)
        model.train()
        snapshot = export_snapshot(model, tiny_dataset, tmp_path)
        assert model.training  # mode restored
        eval_scores = model.predict_scores(user_ids=np.arange(4))
        users = np.asarray(snapshot.users)[:4]
        items = np.asarray(snapshot.items)
        np.testing.assert_array_equal(users @ items.T, eval_scores)

    def test_size_mismatch_rejected(self, tiny_dataset, tmp_path):
        model = MF(tiny_dataset.num_users - 1, tiny_dataset.num_items,
                   dim=8, rng=0)
        with pytest.raises(ValueError, match="sized"):
            export_snapshot(model, tiny_dataset, tmp_path)


class TestVersioning:
    def test_version_tracks_content(self, tiny_dataset, tmp_path):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        first = export_snapshot(model, tiny_dataset, tmp_path / "a")
        again = export_snapshot(model, tiny_dataset, tmp_path / "b")
        assert first.version == again.version  # deterministic content hash
        model.user_embedding.weight.data[0, 0] += 1.0
        changed = export_snapshot(model, tiny_dataset, tmp_path / "c")
        assert changed.version != first.version

    def test_verify_detects_tampering(self, tiny_dataset, tmp_path):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        export_snapshot(model, tiny_dataset, tmp_path)
        table = np.load(tmp_path / "item_embeddings.npy")
        table[0, 0] += 1.0
        np.save(tmp_path / "item_embeddings.npy", table)
        load_snapshot(tmp_path)  # lazy load is fine
        with pytest.raises(ValueError, match="content hash"):
            load_snapshot(tmp_path, verify=True)


class TestLoad:
    def test_mmap_default_is_readonly(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        loaded = load_snapshot(snapshot.path)
        assert isinstance(loaded.users, np.memmap)
        with pytest.raises(ValueError):
            loaded.users[0, 0] = 1.0

    def test_in_memory_load(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        loaded = load_snapshot(snapshot.path, mmap=False)
        assert not isinstance(loaded.users, np.memmap)
        np.testing.assert_array_equal(loaded.users, snapshot.users)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot(tmp_path)

    def test_truncated_seen_items_rejected_at_load(self, tiny_dataset,
                                                   tmp_path):
        """CSR inconsistency fails at load time, not deep in masking."""
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        export_snapshot(model, tiny_dataset, tmp_path)
        seen = np.load(tmp_path / "seen_items.npy")
        np.save(tmp_path / "seen_items.npy", seen[:-5])
        with pytest.raises(ValueError, match="truncated"):
            load_snapshot(tmp_path)

    def test_non_monotone_indptr_rejected(self, tiny_dataset, tmp_path):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        export_snapshot(model, tiny_dataset, tmp_path)
        indptr = np.load(tmp_path / "seen_indptr.npy")
        indptr[1], indptr[2] = indptr[2], indptr[1]
        np.save(tmp_path / "seen_indptr.npy", indptr)
        with pytest.raises(ValueError, match="monotone"):
            load_snapshot(tmp_path)

    def test_out_of_range_seen_items_rejected(self, tiny_dataset, tmp_path):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        export_snapshot(model, tiny_dataset, tmp_path)
        seen = np.load(tmp_path / "seen_items.npy")
        seen[0] = tiny_dataset.num_items
        np.save(tmp_path / "seen_items.npy", seen)
        with pytest.raises(ValueError, match="out-of-range"):
            load_snapshot(tmp_path)

    def test_unknown_manifest_fields_rejected(self, tiny_mf_snapshot,
                                              tmp_path):
        _, snapshot = tiny_mf_snapshot
        payload = json.loads(snapshot.manifest.to_json())
        payload["from_the_future"] = 1
        with pytest.raises(ValueError, match="unknown fields"):
            SnapshotManifest.from_json(json.dumps(payload))


class TestDeltaIntegrity:
    """Delta files carry the same tamper-evidence as snapshots."""

    @pytest.fixture()
    def delta_dir(self, tiny_mf_snapshot, tmp_path):
        _, snapshot = tiny_mf_snapshot
        base = LiveState.from_snapshot(snapshot)
        churned = base.copy()
        churned.upsert_item(0, np.full(base.dim, 0.25))
        churned.upsert_user(1, np.full(base.dim, -0.5), [0, 2])
        churned.delete_item(sorted(churned.items)[-1])
        export_delta(base, churned, tmp_path / "delta")
        return tmp_path / "delta"

    def test_roundtrip_verifies(self, delta_dir):
        delta = load_delta(delta_dir, verify=True)
        assert delta.manifest.item_upserts == 1
        assert delta.manifest.user_upserts == 1
        assert delta.manifest.item_deletes == 1

    def test_tampered_rows_rejected(self, delta_dir):
        rows = np.load(delta_dir / "item_upsert_rows.npy")
        rows[0, 0] += 1.0
        np.save(delta_dir / "item_upsert_rows.npy", rows)
        load_delta(delta_dir, verify=False)  # lazy load is fine
        with pytest.raises(ValueError, match="content hash"):
            load_delta(delta_dir, verify=True)

    def test_rebased_manifest_rejected(self, delta_dir):
        """Pointing a delta at a different base breaks its content hash.

        The version digest binds ``base_version -> new_version``, so an
        edited manifest can't graft a delta onto a foreign snapshot."""
        payload = json.loads((delta_dir / "manifest.json").read_text())
        payload["base_version"] = "0" * 16
        (delta_dir / "manifest.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="content hash"):
            load_delta(delta_dir, verify=True)

    def test_unknown_manifest_fields_rejected(self, delta_dir):
        payload = json.loads((delta_dir / "manifest.json").read_text())
        payload["from_the_future"] = 1
        with pytest.raises(ValueError, match="unknown fields"):
            DeltaManifest.from_json(json.dumps(payload))

    def test_missing_op_array_rejected(self, delta_dir):
        (delta_dir / "user_delete_ids.npy").unlink()
        with pytest.raises(FileNotFoundError):
            load_delta(delta_dir, verify=True)


class TestCrashSafePublish:
    """Exports stage then rename: a killed exporter can't tear state."""

    def test_crash_mid_export_leaves_no_half_snapshot(
            self, tiny_dataset, monkeypatch, tmp_path):
        """Fresh-dir export killed partway: target stays unloadable-empty.

        The staged files never reach the publish names, so the
        directory afterwards holds no manifest — a loader fails loudly
        instead of reading a half-written snapshot.
        """
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items,
                   dim=8, rng=0)
        real_save = np.save
        calls = {"n": 0}

        def dying_save(path, array, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise OSError("simulated crash mid-export")
            return real_save(path, array, **kwargs)

        monkeypatch.setattr(np, "save", dying_save)
        with pytest.raises(OSError, match="simulated crash"):
            export_snapshot(model, tiny_dataset, tmp_path / "snap",
                            model_name="mf")
        monkeypatch.setattr(np, "save", real_save)
        assert not (tmp_path / "snap" / "manifest.json").exists()
        assert not list((tmp_path / "snap").glob(".staging-*"))
        with pytest.raises(Exception):
            load_snapshot(tmp_path / "snap")

    def test_crash_during_staging_keeps_old_snapshot_intact(
            self, tiny_dataset, monkeypatch, tmp_path):
        """Re-export over a live snapshot dies in staging: old one serves.

        Staging happens in a hidden sibling directory before any
        rename, so a crash there must leave the published files
        byte-identical and verify-loadable.
        """
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items,
                   dim=8, rng=0)
        out = tmp_path / "snap"
        snapshot = export_snapshot(model, tiny_dataset, out,
                                   model_name="mf")
        good_version = snapshot.version

        def dying_save(path, array, **kwargs):
            raise OSError("simulated crash in staging")

        monkeypatch.setattr(np, "save", dying_save)
        model2 = MF(tiny_dataset.num_users, tiny_dataset.num_items,
                    dim=8, rng=1)
        with pytest.raises(OSError, match="in staging"):
            export_snapshot(model2, tiny_dataset, out, model_name="mf")
        monkeypatch.undo()
        reloaded = load_snapshot(out, verify=True)
        assert reloaded.version == good_version
        assert not list(out.glob(".staging-*"))

    def test_orphaned_staging_dirs_swept_on_next_export(
            self, tiny_dataset, tmp_path):
        """A .staging-* left by a SIGKILL is removed by the next export."""
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items,
                   dim=8, rng=0)
        out = tmp_path / "snap"
        export_snapshot(model, tiny_dataset, out, model_name="mf")
        orphan = out / ".staging-dead"
        orphan.mkdir()
        (orphan / "user_embeddings.npy").write_bytes(b"torn")
        export_snapshot(model, tiny_dataset, out, model_name="mf")
        assert not orphan.exists()
        load_snapshot(out, verify=True)
