"""Checkpointing and the CLI."""

import numpy as np
import pytest

from repro import cli
from repro.models import MF, LightGCN
from repro.train.checkpoint import load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        clone = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=99)
        assert not np.allclose(clone.user_embedding.weight.data,
                               model.user_embedding.weight.data)
        load_checkpoint(clone, path)
        np.testing.assert_array_equal(clone.user_embedding.weight.data,
                                      model.user_embedding.weight.data)
        np.testing.assert_array_equal(clone.predict_scores(),
                                      model.predict_scores())

    def test_class_mismatch_rejected(self, tiny_dataset, tmp_path):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        other = LightGCN(tiny_dataset, dim=8, rng=0)
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_size_mismatch_rejected(self, tiny_dataset, tmp_path):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        smaller = MF(tiny_dataset.num_users - 1, tiny_dataset.num_items,
                     dim=8, rng=0)
        with pytest.raises(ValueError):
            load_checkpoint(smaller, path)


class TestCli:
    def test_datasets_command(self, capsys):
        assert cli.main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "yelp2018-small" in out
        assert "density" in out

    def test_train_command(self, capsys):
        rc = cli.main(["train", "--dataset", "tiny", "--model", "mf",
                       "--loss", "sl", "--epochs", "2", "--dim", "8",
                       "--negatives", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ndcg@20" in out

    def test_sweep_tau_command(self, capsys):
        rc = cli.main(["sweep-tau", "--dataset", "tiny", "--epochs", "2",
                       "--taus", "0.2,0.4"])
        assert rc == 0
        assert "best tau" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["train", "--dataset", "netflix"])
