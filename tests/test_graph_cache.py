"""PropagationCache semantics: hits, invalidation, and training parity."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.graph.propagation import PropagationCache, spmm
from repro.losses import BSLLoss
from repro.models.registry import get_model
from repro.nn.optim import SGD
from repro.tensor import Tensor, no_grad
from repro.tensor.tensor import bump_data_version


@pytest.fixture()
def adjacency(tiny_dataset):
    from repro.graph.adjacency import bipartite_adjacency
    return bipartite_adjacency(tiny_dataset)


class TestCacheMechanics:
    def test_hit_on_identical_inputs(self, adjacency):
        cache = PropagationCache()
        x = Tensor(np.random.default_rng(0).normal(
            size=(adjacency.shape[1], 4)), requires_grad=True)
        a = cache.spmm(adjacency, x)
        b = cache.spmm(adjacency, x)
        assert a is b
        assert cache.hits == 1 and cache.misses == 1
        np.testing.assert_allclose(a.data, spmm(adjacency, x).data)

    def test_miss_after_data_version_bump(self, adjacency):
        cache = PropagationCache()
        x = Tensor(np.zeros((adjacency.shape[1], 4)), requires_grad=True)
        a = cache.spmm(adjacency, x)
        bump_data_version()
        b = cache.spmm(adjacency, x)
        assert a is not b
        assert cache.hits == 0 and cache.misses == 2

    def test_miss_across_grad_mode(self, adjacency):
        cache = PropagationCache()
        x = Tensor(np.zeros((adjacency.shape[1], 4)), requires_grad=True)
        a = cache.spmm(adjacency, x)
        with no_grad():
            b = cache.spmm(adjacency, x)
        assert a is not b
        assert b._parents == ()

    def test_miss_on_different_matrix_object(self, adjacency):
        cache = PropagationCache()
        x = Tensor(np.zeros((adjacency.shape[1], 4)), requires_grad=True)
        a = cache.spmm(adjacency, x)
        other = adjacency.copy()
        b = cache.spmm(other, x)
        assert a is not b

    def test_optimizer_step_invalidates_model_cache(self, tiny_dataset):
        model = get_model("lightgcn", tiny_dataset, dim=8, rng=0)
        u1, _ = model.propagate()
        u2, _ = model.propagate()
        assert u1 is u2, "same step must reuse the memoized forward"
        opt = SGD(model.parameters(), lr=0.1)
        model.zero_grad()
        (u1.sum()).backward()
        opt.step()
        u3, _ = model.propagate()
        assert u3 is not u1, "optimizer step must invalidate the memo"
        assert not np.allclose(u3.data, u1.data)

    def test_failed_checkpoint_load_leaves_params_and_cache_intact(
            self, tiny_dataset):
        """A bad checkpoint must not half-load: no writes, cache valid."""
        model = get_model("lightgcn", tiny_dataset, dim=8, rng=0)
        u1, _ = model.propagate()
        before = model.state_dict()
        bad = dict(before)
        bad[sorted(bad)[-1]] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(bad)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[name])
        u2, _ = model.propagate()
        assert u2 is u1, "aborted load must not invalidate the cache"

    def test_noop_optimizer_step_keeps_cache_valid(self, tiny_dataset):
        """A step where every p.grad is None changes nothing, so it must
        not bump the data version and invalidate the propagation memo."""
        from repro.nn.optim import Adam, SparseAdam
        model = get_model("lightgcn", tiny_dataset, dim=8, rng=0)
        u1, _ = model.propagate()
        for make in (lambda p: SGD(p, lr=0.1), lambda p: Adam(p, lr=0.1),
                     lambda p: SparseAdam(p, lr=0.1)):
            opt = make(model.parameters())
            model.zero_grad()
            opt.step()  # all grads None: no parameter changed
            u2, _ = model.propagate()
            assert u2 is u1, f"{type(opt).__name__} no-op step must not " \
                             "invalidate the memo"

    def test_explicit_invalidation(self, tiny_dataset):
        model = get_model("lightgcn", tiny_dataset, dim=8, rng=0)
        u1, _ = model.propagate()
        model.invalidate_propagation_cache()
        u2, _ = model.propagate()
        assert u1 is not u2
        np.testing.assert_allclose(u1.data, u2.data)

    def test_cache_disabled_never_reuses(self, tiny_dataset):
        model = get_model("lightgcn", tiny_dataset, dim=8, rng=0,
                          cache_propagation=False)
        u1, _ = model.propagate()
        u2, _ = model.propagate()
        assert u1 is not u2
        np.testing.assert_allclose(u1.data, u2.data)


class TestSharedSubgraphGradients:
    def test_double_use_accumulates_like_recompute(self, tiny_dataset):
        """loss(main) + loss(aux) over a shared cached forward must
        backprop exactly like two independent forwards."""
        grads = {}
        for cached in (True, False):
            model = get_model("lightgcn", tiny_dataset, dim=8, rng=0,
                              cache_propagation=cached)
            u_a, i_a = model.propagate()
            u_b, i_b = model.propagate()
            loss = (u_a * u_a).sum() + (u_b * 2.0).sum() + (i_a * i_b).sum()
            model.zero_grad()
            loss.backward()
            grads[cached] = [p.grad.copy() for p in model.parameters()]
        for g_cached, g_ref in zip(grads[True], grads[False]):
            np.testing.assert_allclose(g_cached, g_ref, rtol=1e-12)


class TestTrainingParity:
    @pytest.mark.parametrize("model_name",
                             ["lightgcn", "sgl", "simgcl", "ncl", "lightgcl"])
    def test_cached_training_identical(self, tiny_dataset, model_name):
        from repro.train.trainer import train_model
        histories = {}
        for cached in (True, False):
            model = get_model(model_name, tiny_dataset, dim=8, rng=3)
            model.cache_propagation = cached
            result = train_model(model, BSLLoss(), tiny_dataset, epochs=2,
                                 batch_size=64, n_negatives=8,
                                 eval_every=0, patience=0, seed=5)
            histories[cached] = result.loss_history
        np.testing.assert_allclose(histories[True], histories[False],
                                   rtol=1e-12, atol=1e-14)


class TestRegistryCounters:
    """The cache's instance counters and the process-wide registry
    aggregates are fed by the same events — they must always agree."""

    def test_instance_and_global_counters_agree(self, adjacency):
        from repro.obs.metrics import MetricsRegistry, use_registry
        with use_registry(MetricsRegistry()) as registry:
            cache = PropagationCache()
            x = Tensor(np.random.default_rng(1).normal(
                size=(adjacency.shape[1], 4)), requires_grad=True)
            cache.spmm(adjacency, x)
            cache.spmm(adjacency, x)        # hit
            bump_data_version()
            cache.spmm(adjacency, x)        # stale -> drop + miss
            cache.clear()                   # drops the live entry
            hits = registry.counter("graph.propagation.hits")
            misses = registry.counter("graph.propagation.misses")
            dropped = registry.counter("graph.propagation.invalidations")
            assert hits.value == cache.hits == 1
            assert misses.value == cache.misses == 2
            assert dropped.value == cache.invalidations == 2

    def test_lightgcn_train_loop_hit_pattern(self, tiny_dataset):
        """Over a lightgcn training epoch the registry records the exact
        forward/backward cache rhythm: one miss per step (weights moved)
        and one hit per extra propagate within the same step."""
        from repro.obs.metrics import MetricsRegistry, use_registry
        from repro.train.trainer import train_model
        with use_registry(MetricsRegistry()) as registry:
            model = get_model("lightgcn", tiny_dataset, dim=8, rng=0,
                              cache_propagation=True)
            train_model(model, BSLLoss(), tiny_dataset, epochs=1,
                        batch_size=64, n_negatives=4, eval_every=0,
                        patience=0, seed=0)
            hits = registry.counter("graph.propagation.hits").value
            misses = registry.counter("graph.propagation.misses").value
            assert hits == model.propagation_cache.hits
            assert misses == model.propagation_cache.misses
            # every optimizer step invalidates -> at least one miss per
            # step, and the loss's second propagate lands as a hit
            assert misses >= 1
            assert registry.counter(
                "graph.propagation.invalidations").value \
                == model.propagation_cache.invalidations
