"""End-to-end integration tests reproducing the paper's claims in miniature.

These train real models on the tiny dataset and assert the *direction*
of the paper's findings (not magnitudes): SL/BSL learn useful rankings,
BSL degrades less than SL under positive noise, robust sampling hurts
non-robust losses more, and the DRO diagnostics move as the theory says.
"""

import numpy as np
import pytest

from repro.data import load_dataset, inject_positive_noise
from repro.dro import eta_distribution, worst_case_weights
from repro.eval import evaluate_model, evaluate_scores, group_ndcg
from repro.experiments import (ExperimentSpec, run_experiment,
                               collect_negative_scores)
from repro.losses import get_loss
from repro.models import get_model
from repro.train import TrainConfig, train_model


CFG = TrainConfig(epochs=20, batch_size=256, learning_rate=5e-2,
                  n_negatives=32, seed=0)


def _train(loss_name, dataset, eval_dataset=None, model_name="mf",
           **loss_kwargs):
    model = get_model(model_name, dataset, dim=16, rng=0)
    train_model(model, get_loss(loss_name, **loss_kwargs), dataset, CFG)
    return evaluate_model(model, eval_dataset or dataset)["ndcg@20"], model


@pytest.mark.slow
class TestHeadlineClaims:
    def test_all_losses_beat_random(self, tiny_dataset):
        random_scores = np.random.default_rng(0).random(
            (tiny_dataset.num_users, tiny_dataset.num_items))
        random_ndcg = evaluate_scores(random_scores,
                                      tiny_dataset)["ndcg@20"]
        for loss in ("bpr", "bce", "mse", "sl"):
            ndcg, _ = _train(loss, tiny_dataset,
                             **({"tau": 0.2} if loss == "sl" else {}))
            assert ndcg > 1.5 * random_ndcg, loss

    def test_sl_beats_pointwise_on_longtail_data(self):
        """SL > MSE holds on the long-tail presets (the paper's regime);
        the dense 'tiny' fixture is too easy to discriminate losses."""
        dataset = load_dataset("yelp2018-small")
        cfg = TrainConfig(epochs=15, batch_size=1024, learning_rate=5e-2,
                          n_negatives=128, seed=0)
        def run(loss_name, **kw):
            model = get_model("mf", dataset, dim=32, rng=0)
            train_model(model, get_loss(loss_name, **kw), dataset, cfg)
            return evaluate_model(model, dataset)["ndcg@20"]
        assert run("sl", tau=0.25) > run("mse")

    def test_bsl_equals_sl_clean(self, tiny_dataset):
        sl, _ = _train("sl", tiny_dataset, tau=0.2)
        bsl, _ = _train("bsl", tiny_dataset, tau1=0.2, tau2=0.2)
        assert bsl == pytest.approx(sl, rel=0.05)

    def test_gcn_backbone_works(self, tiny_dataset):
        ndcg, _ = _train("sl", tiny_dataset, model_name="lightgcn", tau=0.2)
        random_scores = np.random.default_rng(0).random(
            (tiny_dataset.num_users, tiny_dataset.num_items))
        assert ndcg > 2 * evaluate_scores(random_scores,
                                          tiny_dataset)["ndcg@20"]


@pytest.mark.slow
class TestRobustnessClaims:
    def test_positive_noise_hurts(self, tiny_dataset):
        clean, _ = _train("sl", tiny_dataset, tau=0.2)
        noisy_ds = inject_positive_noise(tiny_dataset, 0.4, rng=1)
        noisy, _ = _train("sl", noisy_ds, eval_dataset=tiny_dataset, tau=0.2)
        assert noisy < clean

    def test_bsl_more_robust_than_sl_under_positive_noise(self,
                                                          tiny_dataset):
        noisy_ds = inject_positive_noise(tiny_dataset, 0.4, rng=1)
        sl, _ = _train("sl", noisy_ds, eval_dataset=tiny_dataset, tau=0.2)
        bsl, _ = _train("bsl", noisy_ds, eval_dataset=tiny_dataset,
                        tau1=0.26, tau2=0.2)
        assert bsl >= sl * 0.98  # BSL should not lose; usually it wins

    def test_false_negative_noise_degrades_mse_more_than_sl(self,
                                                            tiny_dataset):
        def run(loss_name, rnoise, **kw):
            model = get_model("mf", tiny_dataset, dim=16, rng=0)
            cfg = CFG.replace(rnoise=rnoise)
            train_model(model, get_loss(loss_name, **kw), tiny_dataset, cfg)
            return evaluate_model(model, tiny_dataset)["ndcg@20"]

        sl_drop = run("sl", 0.0, tau=0.2) - run("sl", 5.0, tau=0.2)
        mse_drop = run("mse", 0.0) - run("mse", 5.0)
        assert sl_drop <= mse_drop + 0.05


@pytest.mark.slow
class TestDRODiagnostics:
    def test_worst_case_weights_favor_hard_negatives(self, tiny_dataset):
        spec = ExperimentSpec(dataset="tiny", model="mf", loss="sl",
                              loss_kwargs={"tau": 0.2}, dim=16, epochs=10,
                              batch_size=256, n_negatives=32)
        result = run_experiment(spec)
        neg = collect_negative_scores(result, n_users=16, n_negatives=64)
        for row in neg[:4]:
            w = worst_case_weights(row, tau=0.1)
            # correlation between scores and weights must be positive
            assert np.corrcoef(row, w)[0, 1] > 0

    def test_eta_larger_under_negative_noise(self):
        """Fig. 3b: more false negatives -> larger implied eta."""
        def neg_scores(rnoise):
            spec = ExperimentSpec(dataset="tiny", model="mf", loss="sl",
                                  loss_kwargs={"tau": 0.2}, dim=16,
                                  epochs=15, batch_size=256,
                                  n_negatives=32, rnoise=rnoise)
            result = run_experiment(spec)
            return collect_negative_scores(result, n_users=32,
                                           n_negatives=64)
        eta_clean = eta_distribution(neg_scores(0.0), tau=0.2).mean()
        eta_noisy = eta_distribution(neg_scores(5.0), tau=0.2).mean()
        assert eta_noisy > eta_clean * 0.8  # must not collapse; usually >

    def test_sl_fairer_than_bce_on_longtail_data(self):
        """Fig. 4a direction: SL captures more NDCG mass on unpopular
        item groups than BCE/BPR on the long-tail preset."""
        dataset = load_dataset("yelp2018-small")
        cfg = TrainConfig(epochs=15, batch_size=1024, learning_rate=5e-2,
                          n_negatives=128, seed=0)
        def bottom_mass(loss_name, **kw):
            model = get_model("mf", dataset, dim=32, rng=0)
            train_model(model, get_loss(loss_name, **kw), dataset, cfg)
            return group_ndcg(model, dataset, n_groups=10)[:5].sum()
        assert bottom_mass("sl", tau=0.25) > bottom_mass("bce")
