"""InteractionSource protocol: dataset adapter == sharded mmap source.

The sampler and trainer now talk to datasets only through the
:class:`~repro.data.source.InteractionSource` protocol, so these tests
pin the contract that makes out-of-core training exact: the mmap-backed
:class:`~repro.data.source.ShardedInteractionSource` must agree with
the in-memory :class:`~repro.data.source.DatasetSource` on every
protocol method, byte for byte.
"""

import numpy as np
import pytest

from repro.data import (InteractionShardWriter, ScaleConfig, as_source,
                        batch_contains, generate_scale_shards, load_dataset,
                        write_interaction_shards)
from repro.data.source import DatasetSource, ShardedInteractionSource


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("yelp2018-small")


@pytest.fixture(scope="module")
def sources(dataset, tmp_path_factory):
    shard_dir = tmp_path_factory.mktemp("shards") / "yelp"
    sharded = write_interaction_shards(dataset, shard_dir, block_rows=1024)
    return DatasetSource(dataset), sharded


class TestProtocolParity:
    """Every protocol surface agrees across the two backends."""

    def test_sizes(self, sources):
        dense, sharded = sources
        assert (dense.num_users, dense.num_items, dense.num_train) == \
            (sharded.num_users, sharded.num_items, sharded.num_train)

    def test_pairs_gather(self, sources):
        dense, sharded = sources
        rng = np.random.default_rng(0)
        idx = rng.permutation(dense.num_train)[:2048]
        np.testing.assert_array_equal(dense.pairs(idx), sharded.pairs(idx))

    def test_user_degrees(self, sources):
        dense, sharded = sources
        np.testing.assert_array_equal(dense.user_degrees(),
                                      sharded.user_degrees())

    def test_item_popularity(self, sources):
        dense, sharded = sources
        np.testing.assert_allclose(dense.item_popularity,
                                   sharded.item_popularity)

    def test_full_csr(self, sources):
        dense, sharded = sources
        di, dv = dense.train_csr()
        si, sv = sharded.train_csr()
        np.testing.assert_array_equal(di, si)
        np.testing.assert_array_equal(np.sort(dv), np.sort(sv))

    def test_row_range_csr_rebased(self, sources):
        dense, sharded = sources
        lo, hi = 17, 83
        di, dv = dense.train_csr(lo, hi)
        si, sv = sharded.train_csr(lo, hi)
        assert di[0] == 0 and si[0] == 0
        np.testing.assert_array_equal(di, si)
        np.testing.assert_array_equal(np.sort(dv), np.sort(sv))

    def test_batch_sorted_positives(self, sources):
        dense, sharded = sources
        users = np.array([0, 5, 5, 101, 449])
        dp, dd = dense.batch_sorted_positives(users)
        sp, sd = sharded.batch_sorted_positives(users)
        np.testing.assert_array_equal(dd, sd)
        for d, s, deg in zip(dp, sp, dd):
            np.testing.assert_array_equal(d[:deg], s[:deg])
            # padding may differ in width across backends but must sit
            # strictly above the item-id range in both
            assert np.all(d[deg:] > dense.num_items)
            assert np.all(s[deg:] > dense.num_items)

    def test_batch_padded_positives(self, sources):
        dense, sharded = sources
        users = np.arange(0, 400, 7)
        dp, dd = dense.batch_padded_positives(users)
        sp, sd = sharded.batch_padded_positives(users)
        np.testing.assert_array_equal(dd, sd)
        for row, (d, s, deg) in enumerate(zip(dp, sp, dd)):
            np.testing.assert_array_equal(d[:deg], s[:deg]), row

    def test_iter_pair_indices_covers_everything(self, sources):
        _, sharded = sources
        blocks = list(sharded.iter_pair_indices(block_rows=997))
        flat = np.concatenate(blocks)
        np.testing.assert_array_equal(
            flat, np.arange(sharded.num_train, dtype=np.int64))


class TestBatchContains:
    """Row-offset searchsorted membership == dense mask gather."""

    def test_matches_dense_mask(self, dataset, sources):
        dense, _ = sources
        rng = np.random.default_rng(3)
        users = rng.integers(0, dense.num_users, size=256)
        queries = rng.integers(0, dense.num_items, size=(256, 16))
        padded, _ = dense.batch_sorted_positives(users)
        got = batch_contains(padded, queries)
        want = dataset.positive_mask()[users[:, None], queries]
        np.testing.assert_array_equal(got, want)

    def test_empty_queries(self, sources):
        dense, _ = sources
        padded, _ = dense.batch_sorted_positives(np.array([0, 1]))
        out = batch_contains(padded, np.empty((2, 0), dtype=np.int64))
        assert out.shape == (2, 0)


class TestAsSource:
    def test_passthrough_and_adapter_cache(self, dataset, sources):
        dense, sharded = sources
        assert as_source(sharded) is sharded
        a, b = as_source(dataset), as_source(dataset)
        assert a is b  # cached on the dataset

    def test_path_opens_sharded(self, sources, tmp_path, dataset):
        shard_dir = tmp_path / "again"
        write_interaction_shards(dataset, shard_dir)
        opened = as_source(shard_dir)
        assert isinstance(opened, ShardedInteractionSource)
        assert opened.num_train == dataset.num_train

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_source(42)


class TestShardWriter:
    def test_requires_sorted_users(self, tmp_path):
        writer = InteractionShardWriter(
            tmp_path / "w", name="t", num_users=4, num_items=4, num_train=3)
        writer.append(np.array([1, 1]), np.array([0, 2]))
        with pytest.raises(ValueError):
            writer.append(np.array([0]), np.array([1]))  # ids went backwards

    def test_rejects_out_of_range_items(self, tmp_path):
        writer = InteractionShardWriter(
            tmp_path / "w", name="t", num_users=4, num_items=4, num_train=1)
        with pytest.raises(ValueError):
            writer.append(np.array([0]), np.array([9]))

    def test_rejects_wrong_total(self, tmp_path):
        writer = InteractionShardWriter(
            tmp_path / "w", name="t", num_users=4, num_items=4, num_train=5)
        writer.append(np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            writer.close()

    def test_roundtrip_multiblock(self, tmp_path):
        rng = np.random.default_rng(11)
        users = np.sort(rng.integers(0, 50, size=333))
        items = rng.integers(0, 40, size=333).astype(np.int64)
        pairs = np.stack([users, items], axis=1).astype(np.int64)
        writer = InteractionShardWriter(
            tmp_path / "w", name="t", num_users=50, num_items=40,
            num_train=333, block_rows=64)
        for lo in range(0, 333, 50):
            writer.append(users[lo:lo + 50], items[lo:lo + 50])
        source = ShardedInteractionSource(writer.close())
        assert len(source.manifest["pair_blocks"]) > 1
        np.testing.assert_array_equal(source.pairs(np.arange(333)), pairs)
        np.testing.assert_array_equal(
            source.user_degrees(), np.bincount(users, minlength=50))


class TestScaleGenerator:
    def test_tiny_generation_roundtrip(self, tmp_path):
        cfg = ScaleConfig(num_users=300, num_items=200, num_clusters=8,
                          mean_interactions=5.0, users_per_chunk=64,
                          block_rows=256, seed=7, name="tiny")
        source = generate_scale_shards(cfg, tmp_path / "tiny")
        assert source.num_users == 300 and source.num_items == 200
        pairs = source.pairs(np.arange(source.num_train))
        # users ascend (pair blocks double as the CSR grouping)
        assert np.all(np.diff(pairs[:, 0]) >= 0)
        assert pairs[:, 1].min() >= 0 and pairs[:, 1].max() < 200
        np.testing.assert_array_equal(
            source.user_degrees(),
            np.bincount(pairs[:, 0], minlength=300))
        indptr, items = source.train_csr()
        np.testing.assert_array_equal(items, pairs[:, 1])
        assert indptr[-1] == source.num_train

    def test_determinism(self, tmp_path):
        cfg = ScaleConfig(num_users=120, num_items=90, num_clusters=4,
                          mean_interactions=4.0, users_per_chunk=32,
                          seed=9, name="det")
        a = generate_scale_shards(cfg, tmp_path / "a")
        b = generate_scale_shards(cfg, tmp_path / "b")
        assert a.num_train == b.num_train
        idx = np.arange(a.num_train)
        np.testing.assert_array_equal(a.pairs(idx), b.pairs(idx))

    def test_popularity_is_skewed(self, tmp_path):
        cfg = ScaleConfig(num_users=400, num_items=300, num_clusters=8,
                          mean_interactions=8.0, users_per_chunk=128,
                          seed=3, name="skew")
        source = generate_scale_shards(cfg, tmp_path / "skew")
        counts = np.sort(np.bincount(
            source.pairs(np.arange(source.num_train))[:, 1],
            minlength=300))[::-1]
        top_share = counts[:30].sum() / counts.sum()
        assert top_share > 0.2  # power-law head far above uniform (10%)
