"""The example scripts run end-to-end under the tier-1 umbrella.

``examples/quickstart.py`` is the README's canonical walk-through
(train → evaluate → export → recommend), so it must keep working; it is
exercised here on the tiny preset with a tiny budget.
"""

import importlib.util
import pathlib
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load_example(name: str):
    """Import an example script by file path (examples/ is not a package)."""
    spec = importlib.util.spec_from_file_location(name, _EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    @pytest.fixture(scope="class")
    def outputs(self, tmp_path_factory, capfd_class=None):
        quickstart = _load_example("quickstart")
        snapshot_dir = tmp_path_factory.mktemp("quickstart_snapshot")
        results = quickstart.main(dataset_name="tiny", epochs=2, dim=8,
                                  snapshot_dir=str(snapshot_dir))
        return results, snapshot_dir

    def test_reports_all_losses(self, outputs):
        results, _ = outputs
        assert set(results) == {"BPR", "SL", "BSL"}
        for metrics in results.values():
            assert set(metrics) >= {"recall@20", "ndcg@20"}
            assert all(0.0 <= v <= 1.0 for v in metrics.values())

    def test_exports_servable_snapshot(self, outputs):
        from repro.serve import RecommendationService, load_snapshot

        _, snapshot_dir = outputs
        snapshot = load_snapshot(snapshot_dir, verify=True)
        assert snapshot.manifest.dataset == "tiny"
        rec = RecommendationService(snapshot).recommend_one(0, k=5)
        assert len(rec.items) == 5
