"""Row-sparse gradients: coalescing, accumulation, densify escape hatch."""

import numpy as np
import pytest

from repro.nn import Embedding, Parameter
from repro.tensor import RowSparseGrad, Tensor, no_grad, ops
from repro.tensor import functional as F


class TestRowSparseGrad:
    def test_from_rows_coalesces_duplicates(self):
        g = RowSparseGrad.from_rows(
            np.array([3, 1, 3, 1, 3]),
            np.arange(10.0).reshape(5, 2), shape=(6, 2))
        np.testing.assert_array_equal(g.indices, [1, 3])
        # rows 1+3 of the input sum into index 1; rows 0+2+4 into index 3
        np.testing.assert_allclose(g.values, [[8.0, 10.0], [12.0, 15.0]])
        assert g.nnz == 2

    def test_densify_round_trip(self):
        dense = np.zeros((5, 3))
        dense[[0, 4]] = [[1, 2, 3], [4, 5, 6]]
        g = RowSparseGrad.from_rows(np.array([4, 0]),
                                    dense[[4, 0]], shape=(5, 3))
        np.testing.assert_array_equal(g.densify(), dense)

    def test_sparse_plus_sparse_stays_sparse(self):
        a = RowSparseGrad.from_rows(np.array([0, 2]), np.ones((2, 2)), (5, 2))
        b = RowSparseGrad.from_rows(np.array([2, 4]), np.ones((2, 2)), (5, 2))
        merged = a + b
        assert isinstance(merged, RowSparseGrad)
        np.testing.assert_array_equal(merged.indices, [0, 2, 4])
        np.testing.assert_allclose(merged.densify(), a.densify() + b.densify())

    def test_sparse_plus_dense_densifies_both_orders(self):
        sparse = RowSparseGrad.from_rows(np.array([1]), np.ones((1, 2)), (3, 2))
        dense = np.full((3, 2), 0.5)
        for result in (sparse + dense, dense + sparse):
            assert isinstance(result, np.ndarray)
            np.testing.assert_allclose(result, sparse.densify() + dense)
        # the dense operand must not be mutated in place
        np.testing.assert_allclose(dense, 0.5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RowSparseGrad(np.array([0]), np.ones((2, 2)), (5, 2))
        with pytest.raises(ValueError):
            RowSparseGrad(np.array([0]), np.ones((1, 3)), (5, 2))
        a = RowSparseGrad.from_rows(np.array([0]), np.ones((1, 2)), (5, 2))
        b = RowSparseGrad.from_rows(np.array([0]), np.ones((1, 2)), (6, 2))
        with pytest.raises(ValueError):
            a + b

    def test_1d_table_supported(self):
        g = RowSparseGrad.from_rows(np.array([2, 2]), np.array([1.0, 3.0]),
                                    shape=(4,))
        np.testing.assert_allclose(g.densify(), [0, 0, 4.0, 0])


class TestTakeRowsSparse:
    def test_leaf_gets_sparse_grad_matching_dense(self):
        rng = np.random.default_rng(0)
        p_sparse = Parameter(rng.normal(size=(10, 4)))
        p_dense = Parameter(p_sparse.data.copy())
        idx = np.array([1, 7, 1, 3])
        (ops.take_rows(p_sparse, idx, sparse_grad=True) ** 2).sum().backward()
        (ops.take_rows(p_dense, idx) ** 2).sum().backward()
        assert isinstance(p_sparse.grad, RowSparseGrad)
        np.testing.assert_array_equal(p_sparse.grad.indices, [1, 3, 7])
        np.testing.assert_allclose(p_sparse.grad.densify(), p_dense.grad)

    def test_two_gathers_accumulate_sparse(self):
        p = Parameter(np.ones((8, 2)))
        a = ops.take_rows(p, np.array([0, 2]), sparse_grad=True)
        b = ops.take_rows(p, np.array([2, 5]), sparse_grad=True)
        (a.sum() + (b * 2.0).sum()).backward()
        assert isinstance(p.grad, RowSparseGrad)
        np.testing.assert_array_equal(p.grad.indices, [0, 2, 5])
        np.testing.assert_allclose(p.grad.densify()[:, 0], [1, 0, 3, 0, 0, 2, 0, 0])

    def test_mixed_sparse_and_dense_use_densifies(self):
        p = Parameter(np.ones((6, 2)))
        gathered = ops.take_rows(p, np.array([1, 4]), sparse_grad=True)
        (gathered.sum() + (p * p).sum()).backward()
        assert isinstance(p.grad, np.ndarray)
        expected = np.full((6, 2), 2.0)
        expected[[1, 4]] += 1.0
        np.testing.assert_allclose(p.grad, expected)

    def test_interior_node_densifies_escape_hatch(self):
        """Gathering from a non-leaf (e.g. a normalized table) must
        densify at the interior node and produce the reference grad."""
        rng = np.random.default_rng(1)
        p_sparse = Parameter(rng.normal(size=(7, 3)))
        p_dense = Parameter(p_sparse.data.copy())
        idx = np.array([0, 5, 5])
        out = ops.take_rows(F.l2_normalize(p_sparse, axis=1), idx,
                            sparse_grad=True)
        (out * np.arange(9.0).reshape(3, 3)).sum().backward()
        ref = ops.take_rows(F.l2_normalize(p_dense, axis=1), idx)
        (ref * np.arange(9.0).reshape(3, 3)).sum().backward()
        assert isinstance(p_sparse.grad, np.ndarray)
        np.testing.assert_allclose(p_sparse.grad, p_dense.grad, rtol=1e-12)

    def test_2d_index_gather(self):
        p = Parameter(np.ones((9, 2)))
        out = ops.take_rows(p, np.array([[1, 2], [2, 3]]), sparse_grad=True)
        out.sum().backward()
        np.testing.assert_array_equal(p.grad.indices, [1, 2, 3])
        np.testing.assert_allclose(p.grad.values[:, 0], [1, 2, 1])

    def test_no_grad_mode_builds_no_graph(self):
        p = Parameter(np.ones((4, 2)))
        with no_grad():
            out = ops.take_rows(p, np.array([1]), sparse_grad=True)
        assert out._parents == ()

    def test_embedding_sparse_flag(self):
        emb = Embedding(6, 3, rng=0, sparse_grad=True)
        emb(np.array([2, 2, 4])).sum().backward()
        assert isinstance(emb.weight.grad, RowSparseGrad)
        np.testing.assert_allclose(emb.weight.grad.densify()[2], np.full(3, 2.0))
        dense = Embedding(6, 3, rng=0)
        dense(np.array([2, 2, 4])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad.densify(), dense.weight.grad)


class TestFusedSampledScores:
    """Fused-kernel contract: value + gradient parity with the oracle."""

    @pytest.fixture()
    def tables(self):
        rng = np.random.default_rng(3)
        users = Tensor(rng.normal(size=(6, 5)), requires_grad=True)
        items = Tensor(rng.normal(size=(9, 5)), requires_grad=True)
        u = np.array([0, 2, 5, 2])
        p = np.array([1, 1, 8, 0])
        n = np.array([[0, 3, 7], [4, 1, 1], [2, 2, 6], [5, 0, 3]])
        return users, items, u, p, n

    @pytest.mark.parametrize("scoring", ["cosine", "inner", "euclidean"])
    def test_matches_finite_differences(self, tables, scoring):
        users, items, u, p, n = tables
        rng = np.random.default_rng(7)
        w = rng.normal(size=(len(u), 1 + n.shape[1]))

        def value(user_data, item_data):
            out = F.fused_sampled_scores(Tensor(user_data), Tensor(item_data),
                                         u, p, n, scoring=scoring,
                                         sparse_grad=False)
            return float((out.data * w).sum())

        users.grad = items.grad = None
        scores = F.fused_sampled_scores(users, items, u, p, n, scoring=scoring)
        (scores * w).sum().backward()
        for t, which in ((users, 0), (items, 1)):
            grad = t.grad.densify() if isinstance(t.grad, RowSparseGrad) \
                else t.grad
            numeric = np.zeros_like(t.data)
            h = 1e-6
            for index in np.ndindex(t.data.shape):
                plus, minus = t.data.copy(), t.data.copy()
                plus[index] += h
                minus[index] -= h
                if which == 0:
                    numeric[index] = (value(plus, items.data)
                                      - value(minus, items.data)) / (2 * h)
                else:
                    numeric[index] = (value(users.data, plus)
                                      - value(users.data, minus)) / (2 * h)
            np.testing.assert_allclose(grad, numeric, atol=2e-6)

    @pytest.mark.parametrize("scoring", ["cosine", "inner", "euclidean"])
    def test_sparse_and_dense_grads_agree(self, tables, scoring):
        users, items, u, p, n = tables
        for sparse in (True, False):
            users.grad = items.grad = None
            scores = F.fused_sampled_scores(users, items, u, p, n,
                                            scoring=scoring,
                                            sparse_grad=sparse)
            (scores * scores).sum().backward()
            if sparse:
                sparse_grads = (users.grad.densify(), items.grad.densify())
            else:
                dense_grads = (users.grad, items.grad)
        np.testing.assert_allclose(sparse_grads[0], dense_grads[0], rtol=1e-12)
        np.testing.assert_allclose(sparse_grads[1], dense_grads[1], rtol=1e-12)

    def test_rejects_bad_inputs(self, tables):
        users, items, u, p, n = tables
        with pytest.raises(ValueError):
            F.fused_sampled_scores(users, items, u, p, n, scoring="manhattan")
        with pytest.raises(ValueError):
            F.fused_sampled_scores(users, items, u, p[:2], n)


class TestSampledBatchScoresParity:
    """Model-level: sampled (fused + compositional) == dense batch_scores."""

    @pytest.mark.parametrize("model_name", ["mf", "cml"])
    def test_scores_match_dense_path(self, tiny_dataset, model_name):
        from repro.data.sampling import UniformNegativeSampler
        from repro.models.registry import get_model
        model = get_model(model_name, tiny_dataset, dim=8, rng=0)
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=8,
                                         batch_size=64, rng=0)
        batch = next(iter(sampler.epoch()))
        pos_ref, neg_ref = model.batch_scores(batch)
        for fused in (True, False):
            pos, neg = model.sampled_batch_scores(batch, fused=fused)
            np.testing.assert_allclose(pos.data, pos_ref.data,
                                       rtol=1e-10, atol=1e-12)
            np.testing.assert_allclose(neg.data, neg_ref.data,
                                       rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("model_name", ["mf", "cml"])
    def test_gradients_match_dense_path(self, tiny_dataset, model_name):
        from repro.data.sampling import UniformNegativeSampler
        from repro.models.registry import get_model
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=8,
                                         batch_size=64, rng=0)
        batch = next(iter(sampler.epoch()))
        grads = {}
        for path in ("dense", "fused", "compositional"):
            model = get_model(model_name, tiny_dataset, dim=8, rng=0)
            if path == "dense":
                pos, neg = model.batch_scores(batch)
            else:
                pos, neg = model.sampled_batch_scores(
                    batch, fused=(path == "fused"))
            (pos.sum() + (neg * 0.25).sum()).backward()
            grads[path] = {
                name: (param.grad.densify()
                       if isinstance(param.grad, RowSparseGrad)
                       else param.grad)
                for name, param in model.named_parameters()}
        for name in grads["dense"]:
            np.testing.assert_allclose(grads["fused"][name],
                                       grads["dense"][name],
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(grads["compositional"][name],
                                       grads["dense"][name],
                                       rtol=1e-9, atol=1e-12)

    def test_sparse_grads_reach_leaf_tables(self, tiny_dataset):
        from repro.data.sampling import UniformNegativeSampler
        from repro.models.registry import get_model
        model = get_model("mf", tiny_dataset, dim=8, rng=0)
        batch = next(iter(UniformNegativeSampler(
            tiny_dataset, n_negatives=8, batch_size=64, rng=0).epoch()))
        pos, neg = model.sampled_batch_scores(batch)
        (pos.sum() + neg.sum()).backward()
        assert isinstance(model.user_embedding.weight.grad, RowSparseGrad)
        assert isinstance(model.item_embedding.weight.grad, RowSparseGrad)
        # nnz is bounded by the batch, not the table
        assert model.user_embedding.weight.grad.nnz <= len(batch)
