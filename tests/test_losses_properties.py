"""Hypothesis property tests on the loss family."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.losses import (BPRLoss, BSLLoss, MSELoss, SoftmaxLoss, get_loss)
from repro.tensor import Tensor

_score = st.floats(-1.0, 1.0, allow_nan=False)


def _batch_strategy(max_b=5, max_m=6):
    return st.tuples(
        st.integers(1, max_b), st.integers(1, max_m), st.randoms()
    ).map(lambda t: _make_batch(*t))


def _make_batch(b, m, rnd):
    rng = np.random.default_rng(rnd.randint(0, 2 ** 31))
    return rng.uniform(-1, 1, size=b), rng.uniform(-1, 1, size=(b, m))


@settings(max_examples=40, deadline=None)
@given(_batch_strategy())
def test_sl_decreases_when_positive_scores_rise(batch):
    pos, neg = batch
    loss = SoftmaxLoss(tau=0.3)
    base = loss(Tensor(pos), Tensor(neg)).item()
    better = loss(Tensor(pos + 0.1), Tensor(neg)).item()
    assert better < base


@settings(max_examples=40, deadline=None)
@given(_batch_strategy())
def test_sl_increases_when_negative_scores_rise(batch):
    pos, neg = batch
    loss = SoftmaxLoss(tau=0.3)
    base = loss(Tensor(pos), Tensor(neg)).item()
    worse = loss(Tensor(pos), Tensor(neg + 0.1)).item()
    assert worse > base


@settings(max_examples=40, deadline=None)
@given(_batch_strategy())
def test_bpr_invariant_to_negative_permutation(batch):
    pos, neg = batch
    loss = BPRLoss()
    base = loss(Tensor(pos), Tensor(neg)).item()
    rng = np.random.default_rng(0)
    shuffled = neg[:, rng.permutation(neg.shape[1])]
    assert loss(Tensor(pos), Tensor(shuffled)).item() == pytest.approx(base)


@settings(max_examples=40, deadline=None)
@given(_batch_strategy())
def test_sl_invariant_to_negative_permutation(batch):
    pos, neg = batch
    loss = SoftmaxLoss(tau=0.2)
    base = loss(Tensor(pos), Tensor(neg)).item()
    rng = np.random.default_rng(1)
    shuffled = neg[:, rng.permutation(neg.shape[1])]
    assert loss(Tensor(pos), Tensor(shuffled)).item() == pytest.approx(base)


@settings(max_examples=40, deadline=None)
@given(_batch_strategy(), st.floats(0.05, 1.0))
def test_bsl_mean_pooling_matches_sl_shifted(batch, tau):
    """BSL(τ, τ, mean) == SL(τ) - log(m) for every batch."""
    pos, neg = batch
    m = neg.shape[1]
    sl = SoftmaxLoss(tau=tau)(Tensor(pos), Tensor(neg)).item()
    bsl = BSLLoss(tau1=tau, tau2=tau, pooling="mean")(
        Tensor(pos), Tensor(neg)).item()
    assert bsl == pytest.approx(sl - np.log(m), rel=1e-6, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(_batch_strategy())
def test_all_losses_finite_on_bounded_scores(batch):
    pos, neg = batch
    for name in ("bpr", "bce", "mse", "sl", "bsl", "ccl", "hinge"):
        value = get_loss(name)(Tensor(pos), Tensor(neg)).item()
        assert np.isfinite(value), name


@settings(max_examples=40, deadline=None)
@given(_batch_strategy())
def test_mse_nonnegative(batch):
    pos, neg = batch
    assert MSELoss()(Tensor(pos), Tensor(neg)).item() >= 0


@settings(max_examples=30, deadline=None)
@given(_batch_strategy())
def test_gradients_finite_for_all_losses(batch):
    pos_data, neg_data = batch
    for name in ("bpr", "bce", "mse", "sl", "bsl"):
        pos = Tensor(pos_data, requires_grad=True)
        neg = Tensor(neg_data, requires_grad=True)
        get_loss(name)(pos, neg).backward()
        assert np.all(np.isfinite(pos.grad)), name
        assert np.all(np.isfinite(neg.grad)), name


@settings(max_examples=30, deadline=None)
@given(_batch_strategy(), st.floats(0.1, 0.9), st.floats(1.05, 2.0))
def test_bsl_ratio_weakens_positive_gradient(batch, tau2, ratio):
    """Raising τ1 (ratio > 1) must shrink the positive-score gradient."""
    pos_data, neg_data = batch
    grads = []
    for tau1 in (tau2, tau2 * ratio):
        pos = Tensor(pos_data, requires_grad=True)
        neg = Tensor(neg_data, requires_grad=True)
        BSLLoss(tau1=tau1, tau2=tau2, pooling="mean")(pos, neg).backward()
        grads.append(np.abs(pos.grad).mean())
    assert grads[1] < grads[0] + 1e-12
