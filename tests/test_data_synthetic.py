"""Synthetic generator: statistics and determinism."""

import numpy as np
import pytest

from repro.data import (SyntheticConfig, generate_dataset, load_dataset,
                        dataset_names, DATASET_PRESETS)


class TestGeneratorBasics:
    def test_deterministic_for_seed(self):
        cfg = SyntheticConfig(num_users=50, num_items=60, seed=9)
        a = generate_dataset(cfg)
        b = generate_dataset(cfg)
        np.testing.assert_array_equal(a.train_pairs, b.train_pairs)
        np.testing.assert_array_equal(a.test_pairs, b.test_pairs)

    def test_different_seeds_differ(self):
        a = generate_dataset(SyntheticConfig(num_users=50, num_items=60, seed=1))
        b = generate_dataset(SyntheticConfig(num_users=50, num_items=60, seed=2))
        assert not np.array_equal(a.train_pairs, b.train_pairs)

    def test_every_user_has_test_items(self):
        ds = generate_dataset(SyntheticConfig(num_users=40, num_items=50, seed=0))
        assert all(len(ds.test_items_by_user[u]) >= 1
                   for u in range(ds.num_users))

    def test_no_duplicate_interactions_per_user(self):
        ds = generate_dataset(SyntheticConfig(num_users=30, num_items=50, seed=3))
        for u in range(ds.num_users):
            items = np.concatenate([ds.train_items_by_user[u],
                                    ds.test_items_by_user[u]])
            assert len(items) == len(set(items.tolist()))

    def test_mean_degree_near_target(self):
        cfg = SyntheticConfig(num_users=200, num_items=300,
                              mean_interactions=20.0, seed=4)
        ds = generate_dataset(cfg)
        total_deg = (ds.num_train + ds.num_test) / cfg.num_users
        assert 14.0 < total_deg < 26.0

    def test_exposes_ground_truth(self):
        ds = generate_dataset(SyntheticConfig(num_users=30, num_items=40, seed=0))
        assert ds.item_clusters is not None
        assert ds.user_clusters.shape == (30,)
        assert ds.true_affinity.shape == (30, ds.num_clusters
                                          if hasattr(ds, "num_clusters")
                                          else ds.true_affinity.shape[1])
        np.testing.assert_allclose(ds.true_affinity.sum(axis=1),
                                   np.ones(30), atol=1e-9)


class TestLongTail:
    def test_popularity_is_long_tailed(self):
        ds = generate_dataset(SyntheticConfig(
            num_users=300, num_items=400, mean_interactions=25,
            popularity_exponent=1.0, seed=5))
        pop = np.sort(ds.item_popularity)[::-1]
        top_decile = pop[: len(pop) // 10].sum()
        assert top_decile / max(1, pop.sum()) > 0.25

    def test_cluster_structure_present(self):
        """Users interact mostly with items of their home cluster."""
        ds = generate_dataset(SyntheticConfig(
            num_users=100, num_items=150, num_clusters=5,
            cluster_affinity=0.8, seed=6))
        in_cluster = 0
        total = 0
        for u in range(ds.num_users):
            items = ds.train_items_by_user[u]
            in_cluster += (ds.item_clusters[items] == ds.user_clusters[u]).sum()
            total += len(items)
        assert in_cluster / total > 0.5  # way above the 1/5 chance level


class TestConfigValidation:
    def test_rejects_single_cluster(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_clusters=1)

    def test_rejects_bad_affinity(self):
        with pytest.raises(ValueError):
            SyntheticConfig(cluster_affinity=0.0)
        with pytest.raises(ValueError):
            SyntheticConfig(cluster_affinity=1.5)

    def test_rejects_bad_test_fraction(self):
        with pytest.raises(ValueError):
            SyntheticConfig(test_fraction=1.0)


class TestPresets:
    def test_all_presets_load(self):
        for name in dataset_names():
            ds = load_dataset(name)
            assert ds.num_train > 0
            assert ds.name == name

    def test_cache_returns_same_object(self):
        assert load_dataset("tiny") is load_dataset("tiny")

    def test_cache_bypass(self):
        a = load_dataset("tiny")
        b = load_dataset("tiny", use_cache=False)
        assert a is not b
        np.testing.assert_array_equal(a.train_pairs, b.train_pairs)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("netflix-full")

    def test_density_ordering_mirrors_table1(self):
        """ML-1M densest, Amazon sparsest, as in the paper's Table I."""
        density = {name: load_dataset(name).density
                   for name in ("amazon-small", "yelp2018-small",
                                "gowalla-small", "ml1m-small")}
        assert density["ml1m-small"] > density["yelp2018-small"]
        assert density["yelp2018-small"] > density["amazon-small"]
        assert density["gowalla-small"] > density["amazon-small"]

    def test_presets_have_distinct_seeds(self):
        seeds = [cfg.seed for cfg in DATASET_PRESETS.values()]
        assert len(seeds) == len(set(seeds))
