"""Trainer, config validation, grid search."""

import numpy as np
import pytest

from repro.losses import get_loss
from repro.models import MF, CML, ENMF, get_model
from repro.train import TrainConfig, Trainer, train_model, grid_search


@pytest.fixture()
def fast_cfg():
    return TrainConfig(epochs=5, batch_size=256, learning_rate=5e-2,
                       n_negatives=16, seed=0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(sampler="importance")
        with pytest.raises(ValueError):
            TrainConfig(patience=2, eval_every=0)

    def test_replace(self):
        cfg = TrainConfig(epochs=10)
        new = cfg.replace(epochs=3, rnoise=1.0)
        assert new.epochs == 3
        assert new.rnoise == 1.0
        assert cfg.epochs == 10  # original untouched


class TestTrainer:
    def test_loss_decreases(self, tiny_dataset, fast_cfg):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=16,
                   rng=0)
        result = train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                             fast_cfg)
        assert len(result.loss_history) == 5
        assert result.loss_history[-1] < result.loss_history[0]

    def test_training_beats_random(self, tiny_dataset, fast_cfg):
        from repro.eval import evaluate_model, evaluate_scores
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=16,
                   rng=0)
        train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                    fast_cfg.replace(epochs=20))
        trained = evaluate_model(model, tiny_dataset)["ndcg@20"]
        random_scores = np.random.default_rng(0).random(
            (tiny_dataset.num_users, tiny_dataset.num_items))
        random_ndcg = evaluate_scores(random_scores, tiny_dataset)["ndcg@20"]
        assert trained > 2 * random_ndcg

    def test_deterministic_given_seed(self, tiny_dataset, fast_cfg):
        def run():
            model = MF(tiny_dataset.num_users, tiny_dataset.num_items,
                       dim=8, rng=0)
            train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                        fast_cfg)
            return model.predict_scores()
        np.testing.assert_array_equal(run(), run())

    def test_periodic_eval_recorded(self, tiny_dataset, fast_cfg):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        cfg = fast_cfg.replace(epochs=6, eval_every=2)
        result = train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                             cfg)
        assert [e for e, _ in result.eval_history] == [2, 4, 6]
        assert result.final_metrics

    def test_early_stopping_restores_best(self, tiny_dataset):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        cfg = TrainConfig(epochs=50, batch_size=256, learning_rate=0.3,
                          n_negatives=16, eval_every=1, patience=2, seed=0)
        result = train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                             cfg)
        assert result.best_epoch > 0
        # stopped before exhausting the epoch budget OR ran to completion
        assert len(result.loss_history) <= 50

    def test_in_batch_sampler_path(self, tiny_dataset):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        cfg = TrainConfig(epochs=3, batch_size=64, learning_rate=5e-2,
                          sampler="in-batch", seed=0)
        result = train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                             cfg)
        assert result.final_loss < result.loss_history[0] + 1e9

    def test_in_batch_rejects_rnoise(self, tiny_dataset):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        cfg = TrainConfig(epochs=1, sampler="in-batch", rnoise=1.0)
        with pytest.raises(ValueError):
            Trainer(model, get_loss("sl"), tiny_dataset, cfg)

    def test_popularity_sampler_path(self, tiny_dataset, fast_cfg):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        cfg = fast_cfg.replace(sampler="popularity", epochs=2)
        result = train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                             cfg)
        assert len(result.loss_history) == 2

    def test_cml_projection_enforced_after_training(self, tiny_dataset,
                                                    fast_cfg):
        model = CML(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                    max_norm=1.0, rng=0)
        train_model(model, get_loss("hinge"), tiny_dataset,
                    fast_cfg.replace(epochs=3))
        norms = np.linalg.norm(model.user_embedding.weight.data, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_enmf_custom_loss_path(self, tiny_dataset, fast_cfg):
        model = ENMF(tiny_dataset, dim=8, rng=0)
        result = train_model(model, get_loss("mse"), tiny_dataset,
                             fast_cfg.replace(epochs=3))
        assert result.loss_history[-1] < result.loss_history[0]

    def test_ssl_model_trains(self, tiny_dataset, fast_cfg):
        model = get_model("simgcl", tiny_dataset, dim=8, rng=0,
                          ssl_weight=0.1)
        result = train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                             fast_cfg.replace(epochs=2))
        assert len(result.loss_history) == 2

    def test_model_left_in_eval_mode(self, tiny_dataset, fast_cfg):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        train_model(model, get_loss("sl", tau=0.2), tiny_dataset,
                    fast_cfg.replace(epochs=1))
        assert not model.training


class TestGridSearch:
    def test_sorted_by_metric(self):
        def run_fn(x):
            return {"ndcg@20": -(x - 3) ** 2}
        points = grid_search(run_fn, {"x": [1, 2, 3, 4]})
        assert points[0].params == {"x": 3}
        values = [p.metric("ndcg@20") for p in points]
        assert values == sorted(values, reverse=True)

    def test_cartesian_product(self):
        calls = []
        def run_fn(a, b):
            calls.append((a, b))
            return {"ndcg@20": 0.0}
        grid_search(run_fn, {"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(calls) == 6

    def test_rejects_non_dict_result(self):
        with pytest.raises(TypeError):
            grid_search(lambda x: x, {"x": [1]})
