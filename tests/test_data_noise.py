"""Positive-noise injection (RQ3 substrate)."""

import numpy as np
import pytest

from repro.data import inject_positive_noise, positive_noise_rate


class TestInjection:
    def test_zero_ratio_is_identity(self, tiny_dataset):
        assert inject_positive_noise(tiny_dataset, 0.0) is tiny_dataset

    def test_achieved_rate_matches_request(self, tiny_dataset):
        noisy = inject_positive_noise(tiny_dataset, 0.3, rng=0)
        achieved = positive_noise_rate(tiny_dataset, noisy)
        # requested 30% extra => fake fraction 0.3/1.3 ~= 0.23
        assert achieved == pytest.approx(0.3 / 1.3, abs=0.04)

    def test_test_split_untouched(self, tiny_dataset):
        noisy = inject_positive_noise(tiny_dataset, 0.4, rng=0)
        np.testing.assert_array_equal(noisy.test_pairs,
                                      tiny_dataset.test_pairs)

    def test_fakes_avoid_true_positives_and_test_items(self, tiny_dataset):
        noisy = inject_positive_noise(tiny_dataset, 0.4, rng=0)
        clean_set = {(int(u), int(i)) for u, i in tiny_dataset.train_pairs}
        test_set = {(int(u), int(i)) for u, i in tiny_dataset.test_pairs}
        fakes = [(int(u), int(i)) for u, i in noisy.train_pairs
                 if (int(u), int(i)) not in clean_set]
        assert fakes, "expected some injected pairs"
        assert not set(fakes) & test_set

    def test_injection_proportional_to_degree(self, tiny_dataset):
        noisy = inject_positive_noise(tiny_dataset, 0.5, rng=0)
        clean_deg = tiny_dataset.user_degree()
        noisy_deg = noisy.user_degree()
        extra = noisy_deg - clean_deg
        # heavier users receive more fakes
        heavy = clean_deg >= np.median(clean_deg)
        assert extra[heavy].mean() >= extra[~heavy].mean()

    def test_rejects_out_of_range_ratio(self, tiny_dataset):
        with pytest.raises(ValueError):
            inject_positive_noise(tiny_dataset, -0.1)
        with pytest.raises(ValueError):
            inject_positive_noise(tiny_dataset, 1.5)

    def test_deterministic_under_seed(self, tiny_dataset):
        a = inject_positive_noise(tiny_dataset, 0.2, rng=5)
        b = inject_positive_noise(tiny_dataset, 0.2, rng=5)
        np.testing.assert_array_equal(a.train_pairs, b.train_pairs)

    def test_ground_truth_attributes_carried(self, tiny_dataset):
        noisy = inject_positive_noise(tiny_dataset, 0.2, rng=0)
        assert hasattr(noisy, "user_clusters")
        np.testing.assert_array_equal(noisy.user_clusters,
                                      tiny_dataset.user_clusters)

    def test_name_records_noise_level(self, tiny_dataset):
        noisy = inject_positive_noise(tiny_dataset, 0.25, rng=0)
        assert "pnoise0.25" in noisy.name


class TestRateMeasurement:
    def test_rate_zero_for_identical(self, tiny_dataset):
        assert positive_noise_rate(tiny_dataset, tiny_dataset) == 0.0

    def test_rate_increases_with_ratio(self, tiny_dataset):
        r1 = positive_noise_rate(
            tiny_dataset, inject_positive_noise(tiny_dataset, 0.1, rng=0))
        r2 = positive_noise_rate(
            tiny_dataset, inject_positive_noise(tiny_dataset, 0.4, rng=0))
        assert r2 > r1 > 0
