"""Pointwise/pairwise losses: hand-computed values and gradient direction."""

import numpy as np
import pytest
from scipy.special import expit

from repro.losses import (BCELoss, MSELoss, BPRLoss, MarginHingeLoss,
                          get_loss, loss_names)
from repro.tensor import Tensor


def _scores(pos, neg):
    return (Tensor(np.asarray(pos, dtype=float), requires_grad=True),
            Tensor(np.asarray(neg, dtype=float), requires_grad=True))


class TestInterface:
    def test_rejects_wrong_pos_shape(self):
        loss = BPRLoss()
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros((2, 2))), Tensor(np.zeros((2, 2))))

    def test_rejects_wrong_neg_shape(self):
        loss = BPRLoss()
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros(2)), Tensor(np.zeros(2)))

    def test_rejects_batch_mismatch(self):
        loss = BPRLoss()
        with pytest.raises(ValueError):
            loss(Tensor(np.zeros(2)), Tensor(np.zeros((3, 4))))

    def test_repr_shows_params(self):
        assert "tau" in repr(get_loss("sl", tau=0.2))


class TestMSE:
    def test_hand_computed_value(self):
        pos, neg = _scores([1.0, 0.0], [[0.0, 1.0]] * 2)
        # pos term: mean((1-1)^2, (0-1)^2) = 0.5
        # neg term: mean(0, 1, 0, 1) = 0.5
        loss = MSELoss(negative_weight=1.0)(pos, neg)
        assert loss.item() == pytest.approx(1.0)

    def test_perfect_scores_zero_loss(self):
        pos, neg = _scores([1.0, 1.0], [[0.0], [0.0]])
        assert MSELoss()(pos, neg).item() == pytest.approx(0.0)

    def test_negative_weight_scales(self):
        pos, neg = _scores([1.0], [[1.0]])
        l1 = MSELoss(negative_weight=1.0)(pos, neg).item()
        l2 = MSELoss(negative_weight=2.0)(pos, neg).item()
        assert l2 == pytest.approx(2 * l1)

    def test_gradient_directions(self):
        pos, neg = _scores([0.2], [[0.5]])
        MSELoss()(pos, neg).backward()
        assert pos.grad[0] < 0   # increase positive score
        assert neg.grad[0, 0] > 0  # decrease negative score

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            MSELoss(negative_weight=0.0)


class TestBCE:
    def test_hand_computed_value(self):
        pos, neg = _scores([0.0], [[0.0]])
        # softplus(0) = log 2 on both sides
        assert BCELoss()(pos, neg).item() == pytest.approx(2 * np.log(2))

    def test_matches_sigmoid_formulation(self):
        rng = np.random.default_rng(0)
        p, n = rng.normal(size=4), rng.normal(size=(4, 3))
        pos, neg = _scores(p, n)
        got = BCELoss()(pos, neg).item()
        expected = (-np.log(expit(p)).mean()
                    - np.log(1 - expit(n)).mean())
        assert got == pytest.approx(expected, rel=1e-9)

    def test_scale_sharpens(self):
        pos, neg = _scores([0.5], [[-0.5]])
        # smaller scale -> effectively larger logits -> smaller loss here
        l_wide = BCELoss(scale=1.0)(pos, neg).item()
        l_sharp = BCELoss(scale=0.1)(pos, neg).item()
        assert l_sharp < l_wide

    def test_gradient_directions(self):
        pos, neg = _scores([0.1], [[0.3]])
        BCELoss()(pos, neg).backward()
        assert pos.grad[0] < 0
        assert neg.grad[0, 0] > 0


class TestBPR:
    def test_hand_computed_value(self):
        pos, neg = _scores([1.0], [[0.0]])
        expected = -np.log(expit(1.0))
        assert BPRLoss()(pos, neg).item() == pytest.approx(expected)

    def test_zero_margin_gives_log2(self):
        pos, neg = _scores([0.3], [[0.3]])
        assert BPRLoss()(pos, neg).item() == pytest.approx(np.log(2))

    def test_decreases_with_margin(self):
        values = []
        for margin in (0.0, 0.5, 1.0, 2.0):
            pos, neg = _scores([margin], [[0.0]])
            values.append(BPRLoss()(pos, neg).item())
        assert values == sorted(values, reverse=True)

    def test_gradient_pushes_apart(self):
        pos, neg = _scores([0.0], [[0.0, 0.0]])
        BPRLoss()(pos, neg).backward()
        assert pos.grad[0] < 0
        assert np.all(neg.grad > 0)

    def test_averages_over_negatives(self):
        pos1, neg1 = _scores([1.0], [[0.0]])
        pos2, neg2 = _scores([1.0], [[0.0, 0.0, 0.0]])
        assert BPRLoss()(pos1, neg1).item() == pytest.approx(
            BPRLoss()(pos2, neg2).item())


class TestMarginHinge:
    def test_inside_margin_penalized(self):
        pos, neg = _scores([0.2], [[0.0]])
        loss = MarginHingeLoss(margin=0.5)(pos, neg)
        assert loss.item() == pytest.approx(0.3)

    def test_outside_margin_zero(self):
        pos, neg = _scores([1.0], [[0.0]])
        assert MarginHingeLoss(margin=0.5)(pos, neg).item() == 0.0

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            MarginHingeLoss(margin=0.0)


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in loss_names():
            assert get_loss(name) is not None

    def test_kwargs_forwarded(self):
        loss = get_loss("bsl", tau1=0.3, tau2=0.1)
        assert loss.ratio == pytest.approx(3.0)

    def test_case_insensitive(self):
        assert get_loss("SL").name == "sl"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_loss("focal")
