"""The CI workflows stay executable: every command they invoke exists.

In the style of ``tests/test_docs.py``: the workflow YAML under
``.github/workflows/`` is parsed and every ``run:`` step is checked
against the repository — ``make`` targets must exist in the Makefile,
referenced scripts must exist on disk, and ``repro <verb>`` invocations
must be real CLI subcommands — so the workflow cannot rot silently when
a target or script is renamed.
"""

import pathlib
import re
import shlex

import pytest
import yaml

from repro import cli

REPO_ROOT = pathlib.Path(__file__).parent.parent
WORKFLOWS = REPO_ROOT / ".github" / "workflows"

_MAKE_TARGET = re.compile(r"^([A-Za-z0-9_.-]+):", re.MULTILINE)


def _load(name):
    return yaml.safe_load((WORKFLOWS / name).read_text())


def _run_commands(workflow) -> list[str]:
    """Every shell line of every ``run:`` step in every job."""
    commands = []
    for job in workflow["jobs"].values():
        for step in job["steps"]:
            if "run" in step:
                commands.extend(line.strip()
                                for line in step["run"].splitlines()
                                if line.strip())
    return commands


def _make_targets() -> set[str]:
    return set(_MAKE_TARGET.findall((REPO_ROOT / "Makefile").read_text()))


def _cli_verbs() -> set[str]:
    parser = cli.build_parser()
    for action in parser._actions:  # noqa: SLF001 - argparse has no API
        if hasattr(action, "choices") and action.choices:
            return set(action.choices)
    return set()


class TestWorkflowsExist:
    def test_both_workflows_present(self):
        assert (WORKFLOWS / "ci.yml").is_file()
        assert (WORKFLOWS / "ci-slow.yml").is_file()

    def test_ci_triggers_on_push_and_pr(self):
        workflow = _load("ci.yml")
        # pyyaml parses the bare `on:` key as boolean True
        triggers = workflow.get("on", workflow.get(True))
        assert "push" in triggers and "pull_request" in triggers

    def test_ci_matrix_covers_supported_pythons(self):
        workflow = _load("ci.yml")
        matrix = workflow["jobs"]["verify"]["strategy"]["matrix"]
        assert set(matrix["python-version"]) == {"3.10", "3.11", "3.12"}

    def test_ci_slow_is_nightly_and_manual(self):
        workflow = _load("ci-slow.yml")
        triggers = workflow.get("on", workflow.get(True))
        assert "workflow_dispatch" in triggers
        assert "schedule" in triggers and triggers["schedule"]


class TestWorkflowCommandsExist:
    """Every invoked command resolves against the real repository."""

    @pytest.mark.parametrize("name", ["ci.yml", "ci-slow.yml"])
    def test_make_targets_exist(self, name):
        targets = _make_targets()
        for command in _run_commands(_load(name)):
            tokens = shlex.split(command)
            if tokens and tokens[0] == "make":
                for target in tokens[1:]:
                    assert target in targets, \
                        f"{name} invokes unknown make target {target!r}"

    @pytest.mark.parametrize("name", ["ci.yml", "ci-slow.yml"])
    def test_referenced_scripts_exist(self, name):
        for command in _run_commands(_load(name)):
            for token in shlex.split(command):
                if token.startswith(("scripts/", "benchmarks/", "src/")):
                    assert (REPO_ROOT / token).exists(), \
                        f"{name} references missing file {token!r}"

    @pytest.mark.parametrize("name", ["ci.yml", "ci-slow.yml"])
    def test_repro_verbs_are_real(self, name):
        verbs = _cli_verbs()
        for command in _run_commands(_load(name)):
            tokens = shlex.split(command)
            if tokens and tokens[0] == "repro":
                assert tokens[1] in verbs, \
                    f"{name} invokes unknown CLI verb `repro {tokens[1]}`"

    def test_ci_gates_on_strict_verify(self):
        """The PR gate must run `make ci` (strict verify.sh)."""
        commands = _run_commands(_load("ci.yml"))
        assert any(c == "make ci" for c in commands)
        makefile = (REPO_ROOT / "Makefile").read_text()
        assert "verify.sh --strict" in makefile

    def test_ci_slow_runs_full_tier(self):
        commands = _run_commands(_load("ci-slow.yml"))
        assert any("verify-slow" in c for c in commands)

    def test_editable_install_is_backed_by_setup_py(self):
        """`pip install -e .` needs real packaging metadata."""
        commands = _run_commands(_load("ci.yml"))
        assert any("pip install -e ." in c for c in commands)
        setup_text = (REPO_ROOT / "setup.py").read_text()
        assert "console_scripts" in setup_text
        assert "repro = repro.cli:main" in setup_text
        assert "python_requires" in setup_text


class TestMakefileAndScripts:
    def test_ci_alias_target(self):
        assert "ci" in _make_targets()

    def test_bench_train_target_and_verb_exist(self):
        """The training-frontier entry points are wired end to end."""
        assert "bench-train" in _make_targets()
        assert "perf-train" in _cli_verbs()  # deprecated alias still works
        makefile = (REPO_ROOT / "Makefile").read_text()
        assert "bench train" in makefile
        assert (REPO_ROOT / "benchmarks" / "train_perf.py").is_file()

    def test_bench_latency_target_and_verb_exist(self):
        """The latency-frontier entry points are wired end to end."""
        assert "bench-latency" in _make_targets()
        assert "perf-latency" in _cli_verbs()  # deprecated alias
        makefile = (REPO_ROOT / "Makefile").read_text()
        assert "bench latency" in makefile
        assert (REPO_ROOT / "benchmarks" / "latency_perf.py").is_file()
        assert (REPO_ROOT / "BENCH_latency.json").is_file()

    def test_bench_refresh_target_and_verbs_exist(self):
        """The live-refresh entry points are wired end to end."""
        assert "bench-refresh" in _make_targets()
        verbs = _cli_verbs()
        for verb in ("perf-refresh", "delta-export", "apply-deltas",
                     "refresh"):
            assert verb in verbs, f"CLI verb {verb!r} missing"
        makefile = (REPO_ROOT / "Makefile").read_text()
        assert "bench refresh" in makefile
        assert (REPO_ROOT / "benchmarks" / "refresh_perf.py").is_file()
        assert (REPO_ROOT / "BENCH_refresh.json").is_file()

    def test_bench_registry_targets_cover_every_suite(self):
        """Each registry suite has its make target and committed file."""
        from repro.experiments import bench
        targets = _make_targets()
        for name in bench.suite_names():
            suite = bench.get_suite(name)
            assert suite.make_target in targets, name
            assert (REPO_ROOT / suite.output).is_file(), name

    def test_unified_bench_verb_and_aliases_exist(self):
        """`repro bench <suite>` plus back-compat perf-* aliases."""
        from repro.experiments.bench import ALIAS_VERBS
        verbs = _cli_verbs()
        assert "bench" in verbs
        for alias in ALIAS_VERBS:
            assert alias in verbs, f"alias {alias!r} missing"

    def test_scale_entry_points_exist(self):
        """The out-of-core frontier is wired end to end."""
        assert "bench-scale" in _make_targets()
        assert "perf-scale" in _cli_verbs()
        assert (REPO_ROOT / "benchmarks" / "scale_perf.py").is_file()
        assert (REPO_ROOT / "BENCH_scale.json").is_file()

    def test_ci_slow_runs_out_of_core_smoke(self):
        commands = _run_commands(_load("ci-slow.yml"))
        assert any("bench scale" in c and "scale-100k" in c
                   for c in commands)

    def test_verify_wires_bench_check(self):
        makefile = (REPO_ROOT / "Makefile").read_text()
        assert "bench-check" in makefile
        assert re.search(r"^verify: .*bench-check", makefile, re.MULTILINE)

    def test_verify_sh_accepts_strict(self):
        text = (REPO_ROOT / "scripts" / "verify.sh").read_text()
        assert "--strict" in text
        assert "check_bench.py" in text


class TestReadmeAdvertisesCI:
    def test_badge_points_at_workflow(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "workflows/ci.yml/badge.svg" in readme

    def test_ci_section_documents_the_split(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "Continuous integration" in readme


class TestObservabilityWiring:
    """The observability layer is wired into CLI, make, and verify."""

    def test_metrics_verb_exists(self):
        assert "metrics" in _cli_verbs()

    def test_recommend_supports_trace_flag(self):
        from repro.cli import build_parser
        text = build_parser().parse_args(
            ["recommend", "--snapshot", "x", "--users", "0", "--trace"])
        assert text.trace is True

    def test_bench_obs_target_and_artifact(self):
        makefile = (REPO_ROOT / "Makefile").read_text()
        assert re.search(r"^bench-obs:", makefile, re.MULTILINE)
        assert "bench obs" in makefile
        assert (REPO_ROOT / "BENCH_obs.json").exists()
        assert (REPO_ROOT / "benchmarks" / "obs_perf.py").exists()

    def test_verify_runs_metrics_smoke(self):
        text = (REPO_ROOT / "scripts" / "verify.sh").read_text()
        assert "metrics --demo --format prom --validate" in text


class TestFaultToleranceWiring:
    """The fault-injection/resilience layer is wired end to end."""

    def test_bench_faults_target_and_artifact(self):
        makefile = (REPO_ROOT / "Makefile").read_text()
        assert re.search(r"^bench-faults:", makefile, re.MULTILINE)
        assert "bench faults" in makefile
        assert (REPO_ROOT / "BENCH_faults.json").exists()
        assert (REPO_ROOT / "benchmarks" / "faults_perf.py").exists()

    def test_faults_suite_registered(self):
        from repro.experiments import bench
        suite = bench.get_suite("faults")
        assert suite.schema == "bsl-faults-bench/v1"
        assert suite.output == "BENCH_faults.json"
        assert "faults" in suite.required_kinds

    def test_ci_slow_runs_chaos_soak(self):
        commands = _run_commands(_load("ci-slow.yml"))
        assert any("tests/test_faults.py" in c for c in commands)
        assert any("bench faults" in c for c in commands)

    def test_chaos_soak_file_exists_and_soaks(self):
        text = (REPO_ROOT / "tests" / "test_faults.py").read_text()
        assert "TestDeterministicSoak" in text
        assert "TestRuntimeChaosSoak" in text
