"""Graph substrate: adjacency normalization, spmm gradients, perturbations."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (adjacency_from_pairs, normalize_adjacency,
                         bipartite_adjacency, spmm, edge_dropout_adjacency,
                         svd_view)
from repro.tensor import Tensor


@pytest.fixture()
def pairs():
    return np.array([[0, 0], [0, 1], [1, 1], [2, 0]])


class TestAdjacency:
    def test_bipartite_structure(self, pairs):
        adj = adjacency_from_pairs(pairs, num_users=3, num_items=2)
        assert adj.shape == (5, 5)
        dense = adj.toarray()
        # user-user and item-item blocks are zero
        assert not dense[:3, :3].any()
        assert not dense[3:, 3:].any()
        # symmetry
        np.testing.assert_array_equal(dense, dense.T)
        assert dense[0, 3] == 1.0  # user 0 - item 0

    def test_duplicates_collapsed(self):
        pairs = np.array([[0, 0], [0, 0]])
        adj = adjacency_from_pairs(pairs, 1, 1)
        assert adj.toarray()[0, 1] == 1.0

    def test_normalization_matches_dense_formula(self, pairs):
        adj = adjacency_from_pairs(pairs, 3, 2)
        dense = adj.toarray()
        deg = dense.sum(axis=1)
        d_inv = np.diag(1.0 / np.sqrt(deg))
        expected = d_inv @ dense @ d_inv
        np.testing.assert_allclose(normalize_adjacency(adj).toarray(),
                                   expected, atol=1e-12)

    def test_zero_degree_nodes_safe(self):
        # user 2 and item 1 have no edges
        pairs = np.array([[0, 0], [1, 0]])
        norm = normalize_adjacency(adjacency_from_pairs(pairs, 3, 2))
        assert np.all(np.isfinite(norm.toarray()))

    def test_spectral_radius_at_most_one(self, tiny_dataset):
        adj = bipartite_adjacency(tiny_dataset)
        # Largest singular value of the symmetric normalization is <= 1.
        top = sp.linalg.svds(adj, k=1, return_singular_vectors=False)
        assert top[0] <= 1.0 + 1e-9


class TestSpmm:
    def test_forward_matches_dense(self, rng):
        mat = sp.random(6, 5, density=0.5, random_state=0, format="csr")
        x = Tensor(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(spmm(mat, x).data, mat.toarray() @ x.data,
                                   atol=1e-12)

    def test_gradient_is_transpose(self, rng):
        mat = sp.random(6, 5, density=0.5, random_state=1, format="csr")
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        spmm(mat, x).sum().backward()
        expected = mat.toarray().T @ np.ones((6, 3))
        np.testing.assert_allclose(x.grad, expected, atol=1e-12)

    def test_shape_mismatch_rejected(self):
        mat = sp.eye(4).tocsr()
        with pytest.raises(ValueError):
            spmm(mat, Tensor(np.zeros((5, 2))))

    def test_composes_in_graph(self, rng):
        mat = sp.eye(4).tocsr() * 2.0
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        out = (spmm(mat, x) * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, np.full((4, 2), 6.0))


class TestEdgeDropout:
    def test_reduces_edge_count(self, tiny_dataset):
        full = bipartite_adjacency(tiny_dataset)
        dropped = edge_dropout_adjacency(tiny_dataset, 0.5, rng=0)
        assert dropped.nnz < full.nnz

    def test_zero_ratio_keeps_all(self, tiny_dataset):
        full = bipartite_adjacency(tiny_dataset)
        kept = edge_dropout_adjacency(tiny_dataset, 0.0, rng=0)
        assert kept.nnz == full.nnz

    def test_views_differ_across_draws(self, tiny_dataset):
        import numpy as np
        rng = np.random.default_rng(0)
        a = edge_dropout_adjacency(tiny_dataset, 0.3, rng=rng)
        b = edge_dropout_adjacency(tiny_dataset, 0.3, rng=rng)
        assert (a != b).nnz > 0

    def test_rejects_bad_ratio(self, tiny_dataset):
        with pytest.raises(ValueError):
            edge_dropout_adjacency(tiny_dataset, 1.0)


class TestSvdView:
    def test_shapes(self, tiny_dataset):
        u, v = svd_view(tiny_dataset, rank=4)
        assert u.shape == (tiny_dataset.num_users, 4)
        assert v.shape == (tiny_dataset.num_items, 4)

    def test_reconstruction_improves_with_rank(self, tiny_dataset):
        mat = tiny_dataset.train_matrix().toarray()
        # compare normalized matrix reconstruction errors
        def err(rank):
            u, v = svd_view(tiny_dataset, rank=rank)
            recon = u @ v.T
            du = mat.sum(axis=1, keepdims=True)
            di = mat.sum(axis=0, keepdims=True)
            with np.errstate(divide="ignore", invalid="ignore"):
                norm = np.where((du > 0) & (di > 0),
                                mat / np.sqrt(du) / np.sqrt(di), 0.0)
            return np.linalg.norm(norm - recon)
        assert err(8) < err(2)

    def test_rejects_bad_rank(self, tiny_dataset):
        with pytest.raises(ValueError):
            svd_view(tiny_dataset, rank=0)
