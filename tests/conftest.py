"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset


@pytest.fixture(scope="session")
def tiny_dataset():
    """The 'tiny' synthetic preset (60 users, 80 items)."""
    return load_dataset("tiny")


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_mf_snapshot(tmp_path_factory, tiny_dataset):
    """(model, snapshot) for a briefly-trained MF exported on 'tiny'.

    Session-scoped: the serve tests all compare against the same trained
    model and on-disk snapshot directory.
    """
    from repro.losses import get_loss
    from repro.models import MF
    from repro.serve import export_snapshot
    from repro.train import TrainConfig, train_model

    model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8, rng=0)
    config = TrainConfig(epochs=2, batch_size=64, n_negatives=8,
                         eval_every=0, patience=0, seed=0)
    train_model(model, get_loss("bsl"), tiny_dataset, config)
    out_dir = tmp_path_factory.mktemp("snapshot")
    snapshot = export_snapshot(model, tiny_dataset, out_dir, model_name="mf")
    return model, snapshot
