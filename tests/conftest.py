"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset


@pytest.fixture(scope="session")
def tiny_dataset():
    """The 'tiny' synthetic preset (60 users, 80 items)."""
    return load_dataset("tiny")


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
