"""Splitting utilities."""

import numpy as np
import pytest

from repro.data import ratio_split, leave_one_out_split


@pytest.fixture()
def pairs(rng):
    rows = []
    for user in range(20):
        items = rng.choice(50, size=rng.integers(2, 12), replace=False)
        rows.extend((user, i) for i in items)
    return np.asarray(rows, dtype=np.int64)


class TestRatioSplit:
    def test_partition_is_exact(self, pairs):
        ds = ratio_split(pairs, 20, 50, test_fraction=0.25, rng=0)
        all_pairs = {(int(u), int(i)) for u, i in pairs}
        train = {(int(u), int(i)) for u, i in ds.train_pairs}
        test = {(int(u), int(i)) for u, i in ds.test_pairs}
        assert train | test == all_pairs
        assert not train & test

    def test_every_user_keeps_training_items(self, pairs):
        ds = ratio_split(pairs, 20, 50, test_fraction=0.5, rng=0)
        deg = ds.user_degree()
        for user in np.unique(pairs[:, 0]):
            assert deg[user] >= 1

    def test_fraction_respected(self, pairs):
        ds = ratio_split(pairs, 20, 50, test_fraction=0.25, rng=0)
        frac = ds.num_test / (ds.num_test + ds.num_train)
        assert 0.15 < frac < 0.4

    def test_single_interaction_users_stay_in_train(self):
        pairs = np.array([[0, 3], [1, 2], [1, 4]])
        ds = ratio_split(pairs, 2, 5, test_fraction=0.5, rng=0)
        assert len(ds.train_items_by_user[0]) == 1
        assert len(ds.test_items_by_user[0]) == 0

    def test_deterministic(self, pairs):
        a = ratio_split(pairs, 20, 50, rng=7)
        b = ratio_split(pairs, 20, 50, rng=7)
        np.testing.assert_array_equal(a.test_pairs, b.test_pairs)

    def test_validation(self, pairs):
        with pytest.raises(ValueError):
            ratio_split(pairs, 20, 50, test_fraction=0.0)


class TestLeaveOneOut:
    def test_one_test_item_per_eligible_user(self, pairs):
        ds = leave_one_out_split(pairs, 20, 50, rng=0)
        for user in np.unique(pairs[:, 0]):
            assert len(ds.test_items_by_user[user]) == 1

    def test_partition_is_exact(self, pairs):
        ds = leave_one_out_split(pairs, 20, 50, rng=0)
        assert ds.num_train + ds.num_test == len(pairs)


class TestValidationSplit:
    def test_partition_of_training_set(self, tiny_dataset):
        from repro.data import validation_split
        fit, val = validation_split(tiny_dataset, fraction=0.2, rng=0)
        train = {(int(u), int(i)) for u, i in fit.train_pairs}
        held = {(int(u), int(i)) for u, i in val.test_pairs}
        original = {(int(u), int(i)) for u, i in tiny_dataset.train_pairs}
        assert train | held == original
        assert not train & held

    def test_test_split_untouched(self, tiny_dataset):
        from repro.data import validation_split
        fit, _ = validation_split(tiny_dataset, fraction=0.2, rng=0)
        np.testing.assert_array_equal(fit.test_pairs,
                                      tiny_dataset.test_pairs)

    def test_val_dataset_shares_training_set(self, tiny_dataset):
        from repro.data import validation_split
        fit, val = validation_split(tiny_dataset, fraction=0.2, rng=0)
        np.testing.assert_array_equal(fit.train_pairs, val.train_pairs)

    def test_composes_with_trainer_early_stopping(self, tiny_dataset):
        from repro.data import validation_split
        from repro.eval import Evaluator
        from repro.losses import get_loss
        from repro.models import MF
        from repro.train import TrainConfig, Trainer
        fit, val = validation_split(tiny_dataset, fraction=0.2, rng=0)
        model = MF(fit.num_users, fit.num_items, dim=8, rng=0)
        cfg = TrainConfig(epochs=6, batch_size=256, n_negatives=8,
                          learning_rate=5e-2, eval_every=2, patience=2,
                          seed=0)
        trainer = Trainer(model, get_loss("sl", tau=0.3), fit, cfg,
                          evaluator=Evaluator(val, ks=(20,)))
        result = trainer.fit()
        assert result.eval_history  # early stopping watched validation

    def test_fraction_validation(self, tiny_dataset):
        from repro.data import validation_split
        with pytest.raises(ValueError):
            validation_split(tiny_dataset, fraction=0.0)
