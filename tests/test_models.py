"""Backbones: shapes, propagation correctness, hooks, registry."""

import numpy as np
import pytest

from repro.data.sampling import TrainingBatch
from repro.graph import bipartite_adjacency
from repro.models import (MF, CML, ENMF, NGCF, LightGCN, SGL, SimGCL,
                          LightGCL, get_model, model_names)
from repro.tensor import Tensor


def _batch(dataset, rng, n_neg=4, size=8):
    pairs = dataset.train_pairs[rng.choice(len(dataset.train_pairs), size)]
    negs = rng.integers(0, dataset.num_items, size=(size, n_neg))
    return TrainingBatch(pairs[:, 0], pairs[:, 1], negs)


class TestMF:
    def test_propagate_returns_tables(self, tiny_dataset):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        users, items = model.propagate()
        assert users.shape == (tiny_dataset.num_users, 8)
        assert items.shape == (tiny_dataset.num_items, 8)

    def test_batch_scores_shapes(self, tiny_dataset, rng):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        batch = _batch(tiny_dataset, rng)
        pos, neg = model.batch_scores(batch)
        assert pos.shape == (8,)
        assert neg.shape == (8, 4)

    def test_cosine_scores_bounded(self, tiny_dataset, rng):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        pos, neg = model.batch_scores(_batch(tiny_dataset, rng))
        assert np.all(np.abs(pos.data) <= 1 + 1e-9)
        assert np.all(np.abs(neg.data) <= 1 + 1e-9)

    def test_batch_scores_match_manual_cosine(self, tiny_dataset, rng):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        batch = _batch(tiny_dataset, rng)
        pos, _ = model.batch_scores(batch)
        u = model.user_embedding.weight.data[batch.users]
        i = model.item_embedding.weight.data[batch.positives]
        u = u / np.linalg.norm(u, axis=1, keepdims=True)
        i = i / np.linalg.norm(i, axis=1, keepdims=True)
        np.testing.assert_allclose(pos.data, (u * i).sum(axis=1), atol=1e-9)

    def test_gradients_reach_embeddings(self, tiny_dataset, rng):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        pos, neg = model.batch_scores(_batch(tiny_dataset, rng))
        (pos.sum() + neg.sum()).backward()
        assert model.user_embedding.weight.grad is not None
        assert model.item_embedding.weight.grad is not None

    def test_predict_scores_shape_and_subset(self, tiny_dataset):
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        full = model.predict_scores()
        assert full.shape == (tiny_dataset.num_users, tiny_dataset.num_items)
        subset = model.predict_scores(user_ids=[3, 5])
        np.testing.assert_allclose(subset, full[[3, 5]], atol=1e-12)

    def test_invalid_scoring_rejected(self, tiny_dataset):
        from repro.models.base import Recommender
        with pytest.raises(ValueError):
            Recommender(3, 3, train_scoring="manhattan")


class TestLightGCN:
    def test_zero_layers_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            LightGCN(tiny_dataset, num_layers=0)

    def test_propagation_matches_dense_computation(self, tiny_dataset):
        model = LightGCN(tiny_dataset, dim=6, num_layers=2, rng=0)
        users, items = model.propagate()
        # hand-rolled dense propagation
        adj = bipartite_adjacency(tiny_dataset).toarray()
        e0 = np.concatenate([model.user_embedding.weight.data,
                             model.item_embedding.weight.data], axis=0)
        e1 = adj @ e0
        e2 = adj @ e1
        final = (e0 + e1 + e2) / 3.0
        np.testing.assert_allclose(users.data,
                                   final[: tiny_dataset.num_users],
                                   atol=1e-10)
        np.testing.assert_allclose(items.data,
                                   final[tiny_dataset.num_users:],
                                   atol=1e-10)

    def test_gradients_flow_through_propagation(self, tiny_dataset, rng):
        model = LightGCN(tiny_dataset, dim=6, num_layers=2, rng=0)
        pos, neg = model.batch_scores(_batch(tiny_dataset, rng))
        (pos.sum() + neg.sum()).backward()
        assert np.abs(model.user_embedding.weight.grad).sum() > 0

    def test_deterministic_under_seed(self, tiny_dataset):
        a = LightGCN(tiny_dataset, dim=6, rng=3).predict_scores()
        b = LightGCN(tiny_dataset, dim=6, rng=3).predict_scores()
        np.testing.assert_array_equal(a, b)


class TestNGCF:
    def test_output_dim_is_concat_of_layers(self, tiny_dataset):
        model = NGCF(tiny_dataset, dim=8, num_layers=2, rng=0)
        users, items = model.propagate()
        assert users.shape == (tiny_dataset.num_users, 8 * 3)
        assert items.shape == (tiny_dataset.num_items, 8 * 3)

    def test_has_transform_parameters(self, tiny_dataset):
        model = NGCF(tiny_dataset, dim=8, num_layers=2, rng=0)
        names = {n for n, _ in model.named_parameters()}
        assert any("w1_layers" in n for n in names)
        assert any("w2_layers" in n for n in names)

    def test_dropout_off_in_eval(self, tiny_dataset):
        model = NGCF(tiny_dataset, dim=8, num_layers=1,
                     message_dropout=0.5, rng=0)
        model.eval()
        a, _ = model.propagate()
        b, _ = model.propagate()
        np.testing.assert_array_equal(a.data, b.data)

    def test_gradients_reach_transforms(self, tiny_dataset, rng):
        model = NGCF(tiny_dataset, dim=8, num_layers=1, rng=0)
        pos, neg = model.batch_scores(_batch(tiny_dataset, rng))
        (pos.sum() + neg.sum()).backward()
        assert model.w1_layers[0].weight.grad is not None


class TestSSLModels:
    def test_sgl_auxiliary_loss_positive(self, tiny_dataset, rng):
        model = SGL(tiny_dataset, dim=8, num_layers=1, ssl_weight=0.5, rng=0)
        aux = model.auxiliary_loss(_batch(tiny_dataset, rng))
        assert aux is not None
        assert aux.item() > 0

    def test_sgl_zero_weight_skips(self, tiny_dataset, rng):
        model = SGL(tiny_dataset, dim=8, ssl_weight=0.0, rng=0)
        assert model.auxiliary_loss(_batch(tiny_dataset, rng)) is None

    def test_sgl_epoch_resample_changes_views(self, tiny_dataset):
        model = SGL(tiny_dataset, dim=8, drop_ratio=0.3, rng=0)
        first = model._view_adjacency[0].copy()
        model.on_epoch_start(np.random.default_rng(1))
        assert (model._view_adjacency[0] != first).nnz > 0

    def test_simgcl_noisy_views_differ(self, tiny_dataset):
        model = SimGCL(tiny_dataset, dim=8, noise_eps=0.2, rng=0)
        u1, _ = model._noisy_propagate()
        u2, _ = model._noisy_propagate()
        assert not np.allclose(u1.data, u2.data)

    def test_simgcl_auxiliary_positive(self, tiny_dataset, rng):
        model = SimGCL(tiny_dataset, dim=8, ssl_weight=0.2, rng=0)
        assert model.auxiliary_loss(_batch(tiny_dataset, rng)).item() > 0

    def test_lightgcl_svd_views_shapes(self, tiny_dataset):
        model = LightGCL(tiny_dataset, dim=8, svd_rank=4, rng=0)
        users, items = model._svd_propagate()
        assert users.shape == (tiny_dataset.num_users, 8)
        assert items.shape == (tiny_dataset.num_items, 8)

    def test_lightgcl_auxiliary_positive(self, tiny_dataset, rng):
        model = LightGCL(tiny_dataset, dim=8, ssl_weight=0.2, rng=0)
        assert model.auxiliary_loss(_batch(tiny_dataset, rng)).item() > 0

    def test_ssl_aux_gradients_reach_embeddings(self, tiny_dataset, rng):
        model = SimGCL(tiny_dataset, dim=8, ssl_weight=0.2, rng=0)
        aux = model.auxiliary_loss(_batch(tiny_dataset, rng))
        aux.backward()
        assert np.abs(model.user_embedding.weight.grad).sum() > 0


class TestCML:
    def test_euclidean_scores_negative(self, tiny_dataset, rng):
        model = CML(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                    rng=0)
        pos, neg = model.batch_scores(_batch(tiny_dataset, rng))
        assert np.all(pos.data <= 0)
        assert np.all(neg.data <= 0)

    def test_post_step_projects_into_ball(self, tiny_dataset):
        model = CML(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                    max_norm=1.0, rng=0)
        model.user_embedding.weight.data *= 100.0
        model.post_step()
        norms = np.linalg.norm(model.user_embedding.weight.data, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_projection_preserves_small_rows(self, tiny_dataset):
        model = CML(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                    max_norm=10.0, rng=0)
        before = model.user_embedding.weight.data.copy()
        model.post_step()
        np.testing.assert_allclose(model.user_embedding.weight.data, before)


class TestENMF:
    def test_custom_loss_replaces_generic(self, tiny_dataset, rng):
        model = ENMF(tiny_dataset, dim=8, rng=0)
        loss = model.custom_loss(_batch(tiny_dataset, rng))
        assert loss is not None
        assert loss.item() > 0

    def test_custom_loss_differentiable(self, tiny_dataset, rng):
        model = ENMF(tiny_dataset, dim=8, rng=0)
        model.custom_loss(_batch(tiny_dataset, rng)).backward()
        assert model.user_embedding.weight.grad is not None

    def test_rejects_bad_weight(self, tiny_dataset):
        with pytest.raises(ValueError):
            ENMF(tiny_dataset, negative_weight=0.0)


class TestRegistry:
    def test_all_models_instantiate(self, tiny_dataset):
        for name in model_names():
            model = get_model(name, tiny_dataset, dim=4, rng=0)
            users, items = model.propagate()
            assert users.shape[0] == tiny_dataset.num_users

    def test_unknown_model_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            get_model("bert4rec", tiny_dataset)

    def test_kwargs_forwarded(self, tiny_dataset):
        model = get_model("lightgcn", tiny_dataset, num_layers=3, rng=0)
        assert model.num_layers == 3
