"""Extended Table II baselines: LR-GCCF, NIA-GCN, UltraGCN, SimpleX,
NCL, DGCF — plus the k-means utility they rely on."""

import numpy as np
import pytest

from repro.analysis import kmeans
from repro.data.sampling import TrainingBatch
from repro.models import (DGCF, LRGCCF, NCL, NIAGCN, SimpleX, UltraGCN,
                          get_model)


def _batch(dataset, rng, n_neg=4, size=8):
    pairs = dataset.train_pairs[rng.choice(len(dataset.train_pairs), size)]
    negs = rng.integers(0, dataset.num_items, size=(size, n_neg))
    return TrainingBatch(pairs[:, 0], pairs[:, 1], negs)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        blobs = np.concatenate([rng.normal(size=(30, 2)),
                                rng.normal(size=(30, 2)) + 10.0])
        _, labels = kmeans(blobs, 2, rng=0)
        first, second = labels[:30], labels[30:]
        assert len(set(first.tolist())) == 1
        assert len(set(second.tolist())) == 1
        assert first[0] != second[0]

    def test_labels_in_range(self, rng):
        x = rng.normal(size=(40, 3))
        centroids, labels = kmeans(x, 5, rng=0)
        assert centroids.shape == (5, 3)
        assert set(labels.tolist()) <= set(range(5))

    def test_every_cluster_nonempty(self, rng):
        x = rng.normal(size=(50, 2))
        _, labels = kmeans(x, 6, rng=1)
        assert len(np.unique(labels)) == 6

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(3, 2)), 5)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=10), 2)


class TestLRGCCF:
    def test_concat_residual_dim(self, tiny_dataset):
        model = LRGCCF(tiny_dataset, dim=8, num_layers=2, rng=0)
        users, items = model.propagate()
        assert users.shape == (tiny_dataset.num_users, 8 * 3)
        assert items.shape == (tiny_dataset.num_items, 8 * 3)

    def test_gradients_flow(self, tiny_dataset, rng):
        model = LRGCCF(tiny_dataset, dim=8, rng=0)
        pos, neg = model.batch_scores(_batch(tiny_dataset, rng))
        (pos.sum() + neg.sum()).backward()
        assert np.abs(model.user_embedding.weight.grad).sum() > 0


class TestNIAGCN:
    def test_shapes(self, tiny_dataset):
        model = NIAGCN(tiny_dataset, dim=8, num_layers=2, rng=0)
        users, items = model.propagate()
        assert users.shape == (tiny_dataset.num_users, 8 * 3)

    def test_pni_identity(self, tiny_dataset):
        """((Σe)² - Σe²)/2 equals the explicit pair sum on a toy graph."""
        rng = np.random.default_rng(0)
        e = rng.normal(size=(4, 3))
        # node with neighbours {0, 1, 2}
        expected = (e[0] * e[1] + e[0] * e[2] + e[1] * e[2])
        s = e[:3].sum(axis=0)
        sq = (e[:3] ** 2).sum(axis=0)
        np.testing.assert_allclose((s * s - sq) / 2.0, expected, atol=1e-12)

    def test_gradients_reach_mix_layers(self, tiny_dataset, rng):
        model = NIAGCN(tiny_dataset, dim=8, num_layers=1, rng=0)
        pos, neg = model.batch_scores(_batch(tiny_dataset, rng))
        (pos.sum() + neg.sum()).backward()
        assert model.mix_layers[0].weight.grad is not None


class TestUltraGCN:
    def test_auxiliary_constraint_positive(self, tiny_dataset, rng):
        model = UltraGCN(tiny_dataset, dim=8, rng=0)
        aux = model.auxiliary_loss(_batch(tiny_dataset, rng))
        assert aux.item() > 0

    def test_item_graph_shapes(self, tiny_dataset):
        model = UltraGCN(tiny_dataset, dim=8, num_item_neighbors=5, rng=0)
        assert model._item_neighbors.shape == (tiny_dataset.num_items, 5)
        assert np.all(model._item_neighbor_w >= 0)

    def test_item_term_disabled(self, tiny_dataset, rng):
        model = UltraGCN(tiny_dataset, dim=8, item_weight=0.0, rng=0)
        aux = model.auxiliary_loss(_batch(tiny_dataset, rng))
        assert aux.item() > 0  # constraint term remains

    def test_beta_weights_down_popular_items(self, tiny_dataset):
        model = UltraGCN(tiny_dataset, dim=8, rng=0)
        _, item_factor = model._beta
        pop = tiny_dataset.item_popularity
        most, least = pop.argmax(), pop.argmin()
        assert item_factor[most] <= item_factor[least]


class TestSimpleX:
    def test_gate_blends_representations(self, tiny_dataset):
        pure_id = SimpleX(tiny_dataset, dim=8, gate=1.0, rng=0)
        pure_behaviour = SimpleX(tiny_dataset, dim=8, gate=0.0, rng=0)
        users_id, _ = pure_id.propagate()
        np.testing.assert_allclose(users_id.data,
                                   pure_id.user_embedding.weight.data)
        users_b, items_b = pure_behaviour.propagate()
        # behaviour-only user repr lives in the item-embedding span
        history = tiny_dataset.train_matrix().toarray()
        history /= np.maximum(history.sum(axis=1, keepdims=True), 1.0)
        np.testing.assert_allclose(users_b.data,
                                   history @ items_b.data, atol=1e-9)

    def test_learned_gate_is_parameter(self, tiny_dataset):
        model = SimpleX(tiny_dataset, dim=8, gate=0.5, learn_gate=True,
                        rng=0)
        names = {n for n, _ in model.named_parameters()}
        assert "_gate_param" in names
        assert 0.0 <= model.gate <= 1.0

    def test_gate_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            SimpleX(tiny_dataset, gate=1.5)


class TestNCL:
    def test_prototypes_refresh(self, tiny_dataset):
        model = NCL(tiny_dataset, dim=8, num_prototypes=4, rng=0)
        assert model._user_protos is None
        model.on_epoch_start(np.random.default_rng(0))
        assert model._user_protos.shape == (tiny_dataset.num_users, 8)

    def test_auxiliary_includes_both_branches(self, tiny_dataset, rng):
        model = NCL(tiny_dataset, dim=8, ssl_weight=0.1, proto_weight=0.1,
                    rng=0)
        model.on_epoch_start(rng)
        full = model.auxiliary_loss(_batch(tiny_dataset, rng)).item()
        model.proto_weight = 0.0
        struct_only = model.auxiliary_loss(_batch(tiny_dataset, rng)).item()
        assert full > struct_only > 0

    def test_disabled_branches_return_none(self, tiny_dataset, rng):
        model = NCL(tiny_dataset, dim=8, ssl_weight=0.0, proto_weight=0.0,
                    rng=0)
        assert model.auxiliary_loss(_batch(tiny_dataset, rng)) is None


class TestDGCF:
    def test_dim_divisibility_enforced(self, tiny_dataset):
        with pytest.raises(ValueError):
            DGCF(tiny_dataset, dim=10, num_intents=4)

    def test_propagate_shapes(self, tiny_dataset):
        model = DGCF(tiny_dataset, dim=8, num_intents=4, rng=0)
        users, items = model.propagate()
        assert users.shape == (tiny_dataset.num_users, 8)
        assert items.shape == (tiny_dataset.num_items, 8)

    def test_routing_entropy_bounded(self, tiny_dataset):
        model = DGCF(tiny_dataset, dim=8, num_intents=4, rng=0)
        entropy = model.intent_routing_entropy()
        assert 0.0 <= entropy <= np.log(4) + 1e-9

    def test_gradients_flow(self, tiny_dataset, rng):
        model = DGCF(tiny_dataset, dim=8, num_intents=2, rng=0)
        pos, neg = model.batch_scores(_batch(tiny_dataset, rng))
        (pos.sum() + neg.sum()).backward()
        assert np.abs(model.user_embedding.weight.grad).sum() > 0


class TestRegistryExtended:
    def test_all_new_models_train_one_epoch(self, tiny_dataset):
        from repro.losses import get_loss
        from repro.train import TrainConfig, train_model
        cfg = TrainConfig(epochs=1, batch_size=256, n_negatives=8,
                          learning_rate=1e-2, seed=0)
        for name in ("lr-gccf", "nia-gcn", "ultragcn", "simplex", "ncl",
                     "dgcf"):
            model = get_model(name, tiny_dataset, dim=8, rng=0)
            result = train_model(model, get_loss("sl", tau=0.3),
                                 tiny_dataset, cfg)
            assert np.isfinite(result.final_loss), name
