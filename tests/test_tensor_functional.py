"""Composite functional ops: values, gradients, numerical stability."""

import numpy as np
import pytest
from scipy.special import expit, logsumexp as scipy_lse

from repro.tensor import Tensor
from repro.tensor import functional as F

from tests.helpers import check_gradient


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestSigmoidFamily:
    def test_sigmoid_matches_scipy(self, rng):
        x = rng.normal(size=(3, 4)) * 3
        np.testing.assert_allclose(F.sigmoid(Tensor(x)).data, expit(x),
                                   atol=1e-12)

    def test_sigmoid_gradient(self, rng):
        check_gradient(lambda t: F.sigmoid(t).sum(),
                       lambda x: expit(x).sum(), (3, 4), rng)

    def test_sigmoid_extreme_values_stable(self):
        out = F.sigmoid(Tensor([-800.0, 800.0])).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_softplus_matches_logaddexp(self, rng):
        x = rng.normal(size=6) * 5
        np.testing.assert_allclose(F.softplus(Tensor(x)).data,
                                   np.logaddexp(0, x), atol=1e-12)

    def test_softplus_gradient_is_sigmoid(self, rng):
        x = Tensor(rng.normal(size=5), requires_grad=True)
        F.softplus(x).sum().backward()
        np.testing.assert_allclose(x.grad, expit(x.data), atol=1e-12)

    def test_softplus_no_overflow(self):
        out = F.softplus(Tensor([1000.0])).data
        np.testing.assert_allclose(out, [1000.0])

    def test_log_sigmoid_stable_and_correct(self, rng):
        x = rng.normal(size=5)
        np.testing.assert_allclose(F.log_sigmoid(Tensor(x)).data,
                                   np.log(expit(x)), atol=1e-10)
        assert np.isfinite(F.log_sigmoid(Tensor([-1000.0])).data).all()


class TestReluFamily:
    def test_relu_values(self):
        np.testing.assert_allclose(
            F.relu(Tensor([-1.0, 0.0, 2.0])).data, [0.0, 0.0, 2.0])

    def test_relu_gradient(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        F.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu_values(self):
        out = F.leaky_relu(Tensor([-2.0, 3.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_gradient(self, rng):
        check_gradient(
            lambda t: F.leaky_relu(t, 0.2).sum(),
            lambda x: np.where(x > 0, x, 0.2 * x).sum(), (4,), rng,
            low=0.1, high=2.0)


class TestLogSumExp:
    def test_matches_scipy(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            F.logsumexp(Tensor(x), axis=1).data, scipy_lse(x, axis=1),
            atol=1e-12)

    def test_full_reduction(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(F.logsumexp(Tensor(x)).item(),
                                   scipy_lse(x), atol=1e-12)

    def test_keepdims(self, rng):
        x = rng.normal(size=(3, 5))
        out = F.logsumexp(Tensor(x), axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_gradient_is_softmax(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        F.logsumexp(x, axis=1).sum().backward()
        expected = np.exp(x.data - scipy_lse(x.data, axis=1, keepdims=True))
        np.testing.assert_allclose(x.grad, expected, atol=1e-12)

    def test_large_values_stable(self):
        x = Tensor([1000.0, 1000.0])
        np.testing.assert_allclose(F.logsumexp(x).item(),
                                   1000.0 + np.log(2), atol=1e-9)

    def test_logmeanexp_shift(self, rng):
        x = rng.normal(size=(2, 8))
        np.testing.assert_allclose(
            F.logmeanexp(Tensor(x), axis=1).data,
            scipy_lse(x, axis=1) - np.log(8), atol=1e-12)

    def test_logmeanexp_of_constant_is_constant(self):
        x = Tensor(np.full((1, 16), 3.3))
        np.testing.assert_allclose(F.logmeanexp(x, axis=1).data, [3.3],
                                   atol=1e-12)


class TestSoftmaxNormalizeVariance:
    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 6)) * 3
        out = F.softmax(Tensor(x), axis=1).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_matches_direct(self, rng):
        x = rng.normal(size=(2, 3))
        e = np.exp(x - x.max(axis=1, keepdims=True))
        np.testing.assert_allclose(F.softmax(Tensor(x), axis=1).data,
                                   e / e.sum(axis=1, keepdims=True),
                                   atol=1e-12)

    def test_l2_normalize_unit_rows(self, rng):
        x = rng.normal(size=(5, 3))
        out = F.l2_normalize(Tensor(x), axis=1).data
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), np.ones(5),
                                   atol=1e-9)

    def test_l2_normalize_gradient(self, rng):
        check_gradient(
            lambda t: (F.l2_normalize(t, axis=1)[:, 0]).sum(),
            lambda x: (x / np.linalg.norm(x, axis=1, keepdims=True))[:, 0].sum(),
            (3, 4), rng, low=0.5, high=2.0, atol=1e-4)

    def test_l2_normalize_zero_row_safe(self):
        out = F.l2_normalize(Tensor([[0.0, 0.0]]), axis=1).data
        assert np.all(np.isfinite(out))

    def test_variance_matches_numpy(self, rng):
        x = rng.normal(size=(3, 7))
        np.testing.assert_allclose(F.variance(Tensor(x), axis=1).data,
                                   x.var(axis=1), atol=1e-12)

    def test_variance_gradient(self, rng):
        check_gradient(lambda t: F.variance(t).sum(),
                       lambda x: x.var(), (6,), rng)


class TestScoringHelpers:
    def test_inner_rows(self, rng):
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        np.testing.assert_allclose(F.inner_rows(Tensor(a), Tensor(b)).data,
                                   (a * b).sum(axis=1), atol=1e-12)

    def test_pairwise_scores(self, rng):
        u, i = rng.normal(size=(3, 2)), rng.normal(size=(5, 2))
        np.testing.assert_allclose(
            F.pairwise_scores(Tensor(u), Tensor(i)).data, u @ i.T, atol=1e-12)

    def test_euclidean_distance_rows(self, rng):
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            F.euclidean_distance_rows(Tensor(a), Tensor(b)).data,
            np.linalg.norm(a - b, axis=1), atol=1e-6)
