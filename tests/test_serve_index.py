"""Top-K indexes: evaluator bit-exactness and quantized fidelity."""

import numpy as np
import pytest

from repro.eval.evaluator import Evaluator
from repro.eval.metrics import rank_items
from repro.models import get_model
from repro.serve import (ExactTopKIndex, QuantizedTopKIndex, build_index,
                         export_snapshot)


def evaluator_rankings(model, dataset, k):
    """Ranked lists exactly as the Evaluator computes them."""
    ev = Evaluator(dataset, ks=(k,))
    tops = []
    for lo in range(0, len(ev._test_users), ev.batch_users):
        users = ev._test_users[lo:lo + ev.batch_users]
        scores = model.predict_scores(user_ids=users)
        ev._mask_train_items(scores, users)
        tops.append(rank_items(scores, k))
    return ev._test_users, np.concatenate(tops)


class TestExactIndex:
    def test_matches_evaluator_bit_for_bit(self, tiny_dataset,
                                           tiny_mf_snapshot):
        """Acceptance: online top-K == offline Evaluator rankings."""
        model, snapshot = tiny_mf_snapshot
        index = ExactTopKIndex(snapshot)
        users, expected = evaluator_rankings(model, tiny_dataset, k=20)
        result = index.topk(users, k=20, filter_seen=True)
        np.testing.assert_array_equal(result.items, expected)

    @pytest.mark.parametrize("model_name", ["lightgcn", "simplex", "cml"])
    def test_matches_evaluator_across_scorings(self, tiny_dataset, tmp_path,
                                               model_name):
        """inner / cosine / euclidean scoring all stay evaluator-exact."""
        model = get_model(model_name, tiny_dataset, dim=8, rng=0)
        snapshot = export_snapshot(model, tiny_dataset, tmp_path)
        index = ExactTopKIndex(snapshot)
        users, expected = evaluator_rankings(model, tiny_dataset, k=20)
        result = index.topk(users, k=20, filter_seen=True)
        np.testing.assert_array_equal(result.items, expected)

    def test_chunking_invariance(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        users = np.arange(snapshot.manifest.num_users, dtype=np.int64)
        whole = ExactTopKIndex(snapshot, chunk_users=1024).topk(users, k=10)
        sliced = ExactTopKIndex(snapshot, chunk_users=7).topk(users, k=10)
        np.testing.assert_array_equal(whole.items, sliced.items)
        np.testing.assert_array_equal(whole.scores, sliced.scores)

    def test_filter_seen_removes_train_items(self, tiny_dataset,
                                             tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        index = ExactTopKIndex(snapshot)
        users = np.arange(tiny_dataset.num_users, dtype=np.int64)
        filtered = index.topk(users, k=10, filter_seen=True)
        for row, u in enumerate(users):
            seen = set(tiny_dataset.train_items_by_user[u].tolist())
            assert not seen & set(filtered.items[row].tolist())

    def test_unfiltered_ranks_full_catalogue(self, tiny_dataset,
                                             tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        index = ExactTopKIndex(snapshot)
        heavy = max(range(tiny_dataset.num_users),
                    key=lambda u: len(tiny_dataset.train_items_by_user[u]))
        unfiltered = index.topk([heavy], k=tiny_dataset.num_items,
                                filter_seen=False)
        assert sorted(unfiltered.items[0].tolist()) == list(
            range(tiny_dataset.num_items))

    def test_result_metadata(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        result = ExactTopKIndex(snapshot).topk([3, 1], k=5)
        assert len(result) == 2
        assert result.k == 5 and result.filtered_seen is True
        np.testing.assert_array_equal(result.user_ids, [3, 1])
        # scores come back sorted best-first
        assert np.all(np.diff(result.scores, axis=1) <= 0)

    def test_k_clipped_to_catalogue(self, tiny_dataset, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        result = ExactTopKIndex(snapshot).topk([0], k=10_000,
                                               filter_seen=False)
        assert result.items.shape == (1, tiny_dataset.num_items)

    def test_input_validation(self, tiny_dataset, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        index = ExactTopKIndex(snapshot)
        with pytest.raises(ValueError, match="k must be positive"):
            index.topk([0], k=0)
        with pytest.raises(ValueError, match="user ids"):
            index.topk([tiny_dataset.num_users], k=5)
        with pytest.raises(ValueError, match="user ids"):
            index.topk([-1], k=5)
        with pytest.raises(ValueError, match="chunk_users"):
            ExactTopKIndex(snapshot, chunk_users=0)


class TestQuantizedIndex:
    def test_high_overlap_on_tiny(self, tiny_mf_snapshot):
        from repro.eval.metrics import overlap_at_k
        _, snapshot = tiny_mf_snapshot
        users = np.arange(snapshot.manifest.num_users, dtype=np.int64)
        overlap = overlap_at_k(
            ExactTopKIndex(snapshot).topk(users, k=10).items,
            QuantizedTopKIndex(snapshot).topk(users, k=10).items)
        assert overlap >= 0.95

    def test_acceptance_overlap_on_yelp(self, tmp_path):
        """Acceptance: >= 0.95 recall@10 overlap vs exact on yelp2018-small
        for a trained checkpoint (shared ``overlap_at_k`` metric)."""
        from repro.data import load_dataset
        from repro.eval.metrics import overlap_at_k
        from repro.losses import get_loss
        from repro.train import TrainConfig, train_model

        dataset = load_dataset("yelp2018-small")
        model = get_model("mf", dataset, dim=64, rng=0)
        config = TrainConfig(epochs=3, batch_size=1024, n_negatives=64,
                             eval_every=0, patience=0, seed=0)
        train_model(model, get_loss("bsl"), dataset, config)
        snapshot = export_snapshot(model, dataset, tmp_path)
        users = np.arange(dataset.num_users, dtype=np.int64)
        overlap = overlap_at_k(
            ExactTopKIndex(snapshot).topk(users, k=10).items,
            QuantizedTopKIndex(snapshot).topk(users, k=10).items)
        assert overlap >= 0.95

    def test_table_is_int8_and_smaller(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        index = QuantizedTopKIndex(snapshot)
        assert index._quantized.dtype == np.int8
        assert index.table_bytes < np.asarray(snapshot.items).nbytes / 4

    def test_respects_filter_seen(self, tiny_dataset, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        index = QuantizedTopKIndex(snapshot)
        result = index.topk(np.arange(tiny_dataset.num_users), k=10)
        for row in range(tiny_dataset.num_users):
            seen = set(tiny_dataset.train_items_by_user[row].tolist())
            assert not seen & set(result.items[row].tolist())

    def test_item_chunking_invariance(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        users = np.arange(snapshot.manifest.num_users, dtype=np.int64)
        big = QuantizedTopKIndex(snapshot, chunk_items=4096).topk(users, k=10)
        small = QuantizedTopKIndex(snapshot, chunk_items=13).topk(users, k=10)
        np.testing.assert_array_equal(big.items, small.items)

    def test_euclidean_scoring_supported(self, tiny_dataset, tmp_path):
        model = get_model("cml", tiny_dataset, dim=8, rng=0)
        snapshot = export_snapshot(model, tiny_dataset, tmp_path)
        exact = ExactTopKIndex(snapshot).topk(np.arange(8), k=5)
        quant = QuantizedTopKIndex(snapshot).topk(np.arange(8), k=5)
        # approximate, but the top item should almost always agree at dim 8
        agree = np.mean(exact.items[:, 0] == quant.items[:, 0])
        assert agree >= 0.5


class TestBuildIndex:
    def test_by_kind(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        assert isinstance(build_index(snapshot, "exact"), ExactTopKIndex)
        assert isinstance(build_index(snapshot, "quantized"),
                          QuantizedTopKIndex)
        with pytest.raises(KeyError):
            build_index(snapshot, "faiss")
