"""Metrics vs brute force; evaluator masking and aggregation; groups."""

import numpy as np
import pytest

from repro.data import InteractionDataset
from repro.eval import (recall_at_k, ndcg_at_k, precision_at_k,
                        hit_rate_at_k, average_precision_at_k, rank_items,
                        overlap_at_k, Evaluator, evaluate_scores,
                        group_ndcg, fairness_gap)


class TestRankItems:
    def test_orders_by_score(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        np.testing.assert_array_equal(rank_items(scores, 3), [[1, 2, 0]])

    def test_k_larger_than_items(self):
        scores = np.array([[0.3, 0.1]])
        assert rank_items(scores, 10).shape == (1, 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            rank_items(np.zeros((1, 3)), 0)

    def test_matches_argsort(self, rng):
        scores = rng.normal(size=(5, 30))
        top = rank_items(scores, 10)
        expected = np.argsort(-scores, axis=1)[:, :10]
        np.testing.assert_array_equal(top, expected)

    def test_ties_broken_by_smaller_index(self):
        """Canonical order: equal scores rank by ascending item id."""
        scores = np.array([[1.0, 2.0, 1.0, 2.0]])
        np.testing.assert_array_equal(rank_items(scores, 4), [[1, 3, 0, 2]])

    def test_boundary_ties_take_smallest_ids(self):
        """Ties straddling the top-k cut keep the smallest indices."""
        scores = np.array([[1.0, 1.0, 1.0, 0.0]])
        np.testing.assert_array_equal(rank_items(scores, 2), [[0, 1]])
        scores = np.array([[0.0, 1.0, 1.0, 1.0]])
        np.testing.assert_array_equal(rank_items(scores, 2), [[1, 2]])
        # mixed: one strictly-greater item, boundary tie below it
        scores = np.array([[5.0, 2.0, 2.0, 2.0, 1.0]])
        np.testing.assert_array_equal(rank_items(scores, 3), [[0, 1, 2]])

    def test_neg_inf_ties_are_canonical(self):
        """Masked (-inf) items fill trailing slots by ascending id."""
        scores = np.array([[0.5, -np.inf, -np.inf, -np.inf]])
        np.testing.assert_array_equal(rank_items(scores, 3), [[0, 1, 2]])

    def test_canonical_under_row_permutation(self, rng):
        """The ranking is a pure function of (score, id) pairs."""
        scores = rng.integers(0, 4, size=(7, 40)).astype(np.float64)
        top = rank_items(scores, 10)
        again = rank_items(scores.copy(order="F"), 10)
        np.testing.assert_array_equal(top, again)


class TestOverlapAtK:
    def test_identical_lists(self):
        lists = np.array([[1, 2, 3], [4, 5, 6]])
        assert overlap_at_k(lists, lists) == 1.0

    def test_disjoint_lists(self):
        a = np.array([[1, 2, 3]])
        b = np.array([[4, 5, 6]])
        assert overlap_at_k(a, b) == 0.0

    def test_order_invariant_partial_overlap(self):
        a = np.array([[1, 2, 3, 4]])
        b = np.array([[4, 3, 9, 8]])
        assert overlap_at_k(a, b) == pytest.approx(0.5)

    def test_single_row_promoted(self):
        assert overlap_at_k(np.array([1, 2]), np.array([2, 1])) == 1.0

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row count"):
            overlap_at_k(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            overlap_at_k(np.zeros((1, 0)), np.zeros((1, 0)))


class TestMetricValues:
    def test_recall(self):
        top = np.array([3, 1, 7])
        assert recall_at_k(top, {1, 2}) == pytest.approx(0.5)
        assert recall_at_k(top, {5}) == 0.0
        assert recall_at_k(top, set()) == 0.0

    def test_precision(self):
        top = np.array([3, 1, 7])
        assert precision_at_k(top, {1, 3}) == pytest.approx(2 / 3)

    def test_hit_rate(self):
        top = np.array([3, 1])
        assert hit_rate_at_k(top, {1}) == 1.0
        assert hit_rate_at_k(top, {9}) == 0.0

    def test_ndcg_perfect_ranking_is_one(self):
        top = np.array([4, 2, 9])
        assert ndcg_at_k(top, {4, 2, 9}) == pytest.approx(1.0)

    def test_ndcg_hand_computed(self):
        # hit at ranks 1 and 3 (0-indexed 0, 2), two relevant items
        top = np.array([4, 0, 9])
        relevant = {4, 9}
        dcg = 1 / np.log2(2) + 1 / np.log2(4)
        idcg = 1 / np.log2(2) + 1 / np.log2(3)
        assert ndcg_at_k(top, relevant) == pytest.approx(dcg / idcg)

    def test_ndcg_prefers_early_hits(self):
        early = ndcg_at_k(np.array([1, 8, 9]), {1})
        late = ndcg_at_k(np.array([8, 9, 1]), {1})
        assert early > late

    def test_map_hand_computed(self):
        top = np.array([4, 0, 9])
        # precisions at hits: 1/1 and 2/3, two relevant
        expected = (1.0 + 2 / 3) / 2
        assert average_precision_at_k(top, {4, 9}) == pytest.approx(expected)

    def test_map_zero_without_hits(self):
        assert average_precision_at_k(np.array([1, 2]), {7}) == 0.0


@pytest.fixture()
def toy_dataset():
    train = np.array([[0, 0], [1, 1], [2, 2]])
    test = np.array([[0, 1], [0, 2], [1, 0], [2, 3]])
    return InteractionDataset(3, 4, train, test)


class TestEvaluator:
    def test_perfect_oracle_scores(self, toy_dataset):
        scores = np.zeros((3, 4))
        for u, i in toy_dataset.test_pairs:
            scores[u, i] = 10.0
        result = evaluate_scores(scores, toy_dataset, ks=(2,))
        assert result["recall@2"] == pytest.approx(1.0)
        assert result["ndcg@2"] == pytest.approx(1.0)

    def test_train_items_masked(self, toy_dataset):
        # train item scored sky-high must not consume top-k slots
        scores = np.full((3, 4), -1.0)
        scores[0, 0] = 100.0  # train positive of user 0
        scores[0, 1] = 1.0    # actual test positive
        result = evaluate_scores(scores, toy_dataset, ks=(1,))
        per_user = result.per_user["recall@1"]
        user0 = np.where(result.evaluated_users == 0)[0][0]
        assert per_user[user0] == pytest.approx(0.5)  # hit 1 of 2

    def test_multiple_cutoffs(self, toy_dataset):
        scores = np.random.default_rng(0).random((3, 4))
        result = evaluate_scores(scores, toy_dataset, ks=(1, 2, 3))
        assert set(result.metrics) == {"recall@1", "ndcg@1", "recall@2",
                                       "ndcg@2", "recall@3", "ndcg@3"}
        # recall is monotone in k
        assert result["recall@1"] <= result["recall@2"] <= result["recall@3"]

    def test_metric_selection(self, toy_dataset):
        scores = np.random.default_rng(0).random((3, 4))
        result = evaluate_scores(scores, toy_dataset, ks=(2,),
                                 metric_names=("hit", "map"))
        assert set(result.metrics) == {"hit@2", "map@2"}

    def test_unknown_metric_rejected(self, toy_dataset):
        with pytest.raises(ValueError):
            Evaluator(toy_dataset, metric_names=("auc",))

    def test_users_without_test_items_excluded(self):
        train = np.array([[0, 0], [1, 1]])
        test = np.array([[0, 1]])  # user 1 has no test items
        ds = InteractionDataset(2, 3, train, test)
        result = evaluate_scores(np.zeros((2, 3)), ds, ks=(1,))
        np.testing.assert_array_equal(result.evaluated_users, [0])

    def test_batched_equals_unbatched(self, tiny_dataset, rng):
        scores = rng.normal(size=(tiny_dataset.num_users,
                                  tiny_dataset.num_items))
        small = Evaluator(tiny_dataset, ks=(10,), batch_users=7)
        big = Evaluator(tiny_dataset, ks=(10,), batch_users=10_000)

        class _Fixed:
            training = False
            def eval(self): return self
            def train(self): return self
            def predict_scores(self, user_ids=None):
                return scores[np.asarray(user_ids)].copy()

        a = small.evaluate(_Fixed())
        b = big.evaluate(_Fixed())
        assert a.metrics == b.metrics


class TestGroups:
    def test_group_ndcg_sums_to_overall(self, tiny_dataset, rng):
        scores = rng.normal(size=(tiny_dataset.num_users,
                                  tiny_dataset.num_items))

        class _Fixed:
            training = False
            def eval(self): return self
            def train(self): return self
            def predict_scores(self, user_ids=None):
                return scores[np.asarray(user_ids)].copy()

        groups = group_ndcg(_Fixed(), tiny_dataset, k=20, n_groups=10)
        overall = evaluate_scores(scores, tiny_dataset, ks=(20,))["ndcg@20"]
        assert groups.sum() == pytest.approx(overall, rel=1e-9)

    def test_fairness_gap_sign(self):
        biased = np.array([0.0] * 7 + [0.1, 0.2, 0.3])
        fair = np.full(10, 0.06)
        assert fairness_gap(biased) > fairness_gap(fair)
