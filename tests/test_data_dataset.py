"""InteractionDataset invariants."""

import numpy as np
import pytest

from repro.data import InteractionDataset


@pytest.fixture()
def small():
    train = np.array([[0, 0], [0, 1], [1, 2], [2, 0], [2, 3]])
    test = np.array([[0, 2], [1, 0], [2, 1]])
    return InteractionDataset(3, 4, train, test, name="unit")


class TestConstruction:
    def test_counts(self, small):
        assert small.num_train == 5
        assert small.num_test == 3
        assert small.density == pytest.approx(5 / 12)

    def test_grouping(self, small):
        np.testing.assert_array_equal(small.train_items_by_user[0], [0, 1])
        np.testing.assert_array_equal(small.train_items_by_user[1], [2])
        np.testing.assert_array_equal(small.test_items_by_user[2], [1])

    def test_popularity_counts(self, small):
        np.testing.assert_array_equal(small.item_popularity, [2, 1, 1, 1])

    def test_user_degree(self, small):
        np.testing.assert_array_equal(small.user_degree(), [2, 1, 2])

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(2, 4, np.array([[5, 0]]), np.empty((0, 2)))

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(2, 4, np.array([[0, 9]]), np.empty((0, 2)))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(2, 4, np.array([[0, 1, 2]]), np.empty((0, 2)))

    def test_empty_test_ok(self):
        ds = InteractionDataset(2, 2, np.array([[0, 0]]), np.empty((0, 2)))
        assert ds.num_test == 0

    def test_is_train_positive(self, small):
        assert small.is_train_positive(0, 1)
        assert not small.is_train_positive(0, 3)


class TestDenseViews:
    def test_train_matrix_binary(self, small):
        mat = small.train_matrix().toarray()
        assert mat.shape == (3, 4)
        assert mat.sum() == 5
        assert set(np.unique(mat)) <= {0.0, 1.0}

    def test_positive_mask_matches_matrix(self, small):
        np.testing.assert_array_equal(
            small.positive_mask(), small.train_matrix().toarray() > 0)

    def test_positive_mask_cached(self, small):
        assert small.positive_mask() is small.positive_mask()

    def test_padded_positives(self, small):
        padded, degrees = small.padded_positives()
        np.testing.assert_array_equal(degrees, [2, 1, 2])
        np.testing.assert_array_equal(padded[0, :2], [0, 1])
        np.testing.assert_array_equal(padded[2, :2], [0, 3])


class TestPopularityGroups:
    def test_groups_partition_items(self, small):
        groups = small.popularity_groups(2)
        assert groups.shape == (4,)
        assert set(groups) == {0, 1}

    def test_most_popular_in_top_group(self):
        train = np.array([[0, 0]] * 1 + [[1, 1]] * 1 +
                         [[2, 2]] * 1 + [[0, 3]] + [[1, 3]] + [[2, 3]])
        ds = InteractionDataset(3, 4, train, np.empty((0, 2)))
        groups = ds.popularity_groups(2)
        assert groups[3] == 1  # item 3 has 3 interactions: top group

    def test_group_sizes_balanced(self, tiny_dataset):
        groups = tiny_dataset.popularity_groups(10)
        counts = np.bincount(groups, minlength=10)
        assert counts.max() - counts.min() <= 1


class TestDerivation:
    def test_with_train_pairs_keeps_test(self, small):
        clone = small.with_train_pairs(np.array([[0, 3]]), name="clone")
        assert clone.num_train == 1
        np.testing.assert_array_equal(clone.test_pairs, small.test_pairs)
        assert clone.name == "clone"
        # original untouched
        assert small.num_train == 5

    def test_repr_mentions_name(self, small):
        assert "unit" in repr(small)
