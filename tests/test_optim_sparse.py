"""Sparse optimizers: exact dense-parity, lazy semantics, edge cases.

The acceptance pin for the row-sparse training engine: ``exact`` mode
must be numerically equivalent (allclose at 1e-10) to the dense
optimizer fed explicit zero gradients for untouched rows, over 50+
steps of realistic sparse gradient streams drawn from the tiny
dataset's sampler.
"""

import numpy as np
import pytest

from repro.data.sampling import UniformNegativeSampler
from repro.nn import Adam, Parameter, SGD, SparseAdam, SparseSGD
from repro.tensor import RowSparseGrad


def _tiny_gradient_stream(tiny_dataset, steps, dim, seed=0):
    """Realistic (rows, values) per step: batch rows from the sampler."""
    sampler = UniformNegativeSampler(tiny_dataset, n_negatives=4,
                                     batch_size=32, rng=seed)
    rng = np.random.default_rng(seed + 1)
    batches = []
    while len(batches) < steps:
        for batch in sampler.epoch():
            rows = np.unique(np.concatenate(
                [batch.positives, batch.negatives.reshape(-1)]))
            batches.append((rows, rng.normal(size=(len(rows), dim))))
            if len(batches) >= steps:
                break
    return batches


def _run_parity(tiny_dataset, make_dense, make_sparse, *, steps=60, dim=6):
    shape = (tiny_dataset.num_items, dim)
    rng = np.random.default_rng(9)
    start = rng.normal(size=shape)
    p_dense, p_sparse = Parameter(start.copy()), Parameter(start.copy())
    opt_dense, opt_sparse = make_dense([p_dense]), make_sparse([p_sparse])
    for rows, values in _tiny_gradient_stream(tiny_dataset, steps, dim):
        dense_grad = np.zeros(shape)
        dense_grad[rows] = values
        p_dense.grad = dense_grad
        p_sparse.grad = RowSparseGrad(rows, values.copy(), shape)
        opt_dense.step()
        opt_sparse.step()
    opt_sparse.flush()
    return p_dense.data, p_sparse.data


class TestExactParity:
    """`exact` sparse == dense optimizer over >= 50 realistic steps."""

    @pytest.mark.parametrize("weight_decay", [0.0, 1e-3])
    def test_sparse_adam_exact_matches_dense_adam(self, tiny_dataset,
                                                  weight_decay):
        dense, sparse = _run_parity(
            tiny_dataset,
            lambda p: Adam(p, lr=0.05, weight_decay=weight_decay),
            lambda p: SparseAdam(p, lr=0.05, weight_decay=weight_decay,
                                 mode="exact"))
        np.testing.assert_allclose(sparse, dense, atol=1e-10, rtol=0)

    @pytest.mark.parametrize("momentum,weight_decay",
                             [(0.0, 0.0), (0.9, 0.0), (0.9, 1e-3)])
    def test_sparse_sgd_exact_matches_dense_sgd(self, tiny_dataset,
                                                momentum, weight_decay):
        dense, sparse = _run_parity(
            tiny_dataset,
            lambda p: SGD(p, lr=0.05, momentum=momentum,
                          weight_decay=weight_decay),
            lambda p: SparseSGD(p, lr=0.05, momentum=momentum,
                                weight_decay=weight_decay, mode="exact"))
        np.testing.assert_allclose(sparse, dense, atol=1e-10, rtol=0)

    def test_flush_is_required_for_parity(self, tiny_dataset):
        """Without flush, rows untouched since their last step lag the
        dense trajectory — the reason the trainer flushes before eval."""
        shape = (tiny_dataset.num_items, 4)
        p_dense = Parameter(np.ones(shape))
        p_sparse = Parameter(np.ones(shape))
        opt_dense = Adam([p_dense], lr=0.1)
        opt_sparse = SparseAdam([p_sparse], lr=0.1, mode="exact")
        rows = np.array([0, 1])
        values = np.ones((2, 4))
        for _ in range(3):
            dense_grad = np.zeros(shape)
            dense_grad[rows] = values
            p_dense.grad = dense_grad
            p_sparse.grad = RowSparseGrad(rows, values.copy(), shape)
            opt_dense.step()
            opt_sparse.step()
            rows = rows + 2  # touch a sliding window of rows
        assert not np.allclose(p_sparse.data, p_dense.data, atol=1e-10)
        opt_sparse.flush()
        np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-10)

    def test_exact_mixed_sparse_then_dense_stream_matches_dense(self):
        """A dense gradient arriving after sparse steps (auxiliary
        losses, graph models) must replay the pending zero-grad updates
        of idle rows before applying, or exact parity silently breaks."""
        shape = (8, 3)
        rng = np.random.default_rng(4)
        start = rng.normal(size=shape)
        p_dense, p_sparse = Parameter(start.copy()), Parameter(start.copy())
        opt_dense = Adam([p_dense], lr=0.1, weight_decay=1e-2)
        opt_sparse = SparseAdam([p_sparse], lr=0.1, weight_decay=1e-2,
                                mode="exact")
        for t in range(12):
            if t % 3 == 2:  # every third step densifies
                g = rng.normal(size=shape)
                p_dense.grad = g
                p_sparse.grad = g.copy()
            else:
                rows = np.unique(rng.integers(0, shape[0], size=3))
                values = rng.normal(size=(len(rows), shape[1]))
                dense_g = np.zeros(shape)
                dense_g[rows] = values
                p_dense.grad = dense_g
                p_sparse.grad = RowSparseGrad(rows, values.copy(), shape)
            opt_dense.step()
            opt_sparse.step()
        opt_sparse.flush()
        np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-10,
                                   rtol=0)

    def test_dense_optimizer_flush_is_noop(self):
        p = Parameter(np.ones((3, 2)))
        opt = Adam([p], lr=0.1)
        opt.flush()  # base-class no-op: callers need not duck-type
        np.testing.assert_array_equal(p.data, np.ones((3, 2)))

    def test_exact_with_dense_grads_equals_dense_adam(self):
        p_dense, p_sparse = Parameter(np.ones((5, 3))), Parameter(np.ones((5, 3)))
        opt_dense = Adam([p_dense], lr=0.1, weight_decay=1e-2)
        opt_sparse = SparseAdam([p_sparse], lr=0.1, weight_decay=1e-2,
                                mode="exact")
        rng = np.random.default_rng(0)
        for _ in range(20):
            g = rng.normal(size=(5, 3))
            p_dense.grad = g
            p_sparse.grad = g.copy()
            opt_dense.step()
            opt_sparse.step()
        np.testing.assert_allclose(p_sparse.data, p_dense.data, atol=1e-12)


class TestLazySemantics:
    def test_untouched_rows_frozen(self):
        p = Parameter(np.arange(20.0).reshape(10, 2))
        before = p.data.copy()
        opt = SparseAdam([p], lr=0.5, mode="lazy")
        for _ in range(4):
            p.grad = RowSparseGrad(np.array([2, 7]), np.ones((2, 2)), p.shape)
            opt.step()
        untouched = [0, 1, 3, 4, 5, 6, 8, 9]
        np.testing.assert_array_equal(p.data[untouched], before[untouched])
        assert not np.allclose(p.data[[2, 7]], before[[2, 7]])

    def test_lazy_sgd_without_momentum_equals_dense(self, tiny_dataset):
        dense, sparse = _run_parity(
            tiny_dataset,
            lambda p: SGD(p, lr=0.05),
            lambda p: SparseSGD(p, lr=0.05, mode="lazy"),
            steps=50)
        np.testing.assert_allclose(sparse, dense, atol=1e-12)

    def test_lazy_weight_decay_applies_only_on_touch(self):
        """Lazy regularization: decay pulls a row only when touched."""
        p = Parameter(np.full((4, 2), 10.0))
        opt = SparseSGD([p], lr=0.1, weight_decay=1.0, mode="lazy")
        p.grad = RowSparseGrad(np.array([1]), np.zeros((1, 2)), p.shape)
        opt.step()
        np.testing.assert_allclose(p.data[1], 9.0)   # 10 - lr * wd * 10
        np.testing.assert_allclose(p.data[0], 10.0)  # untouched: no decay

    def test_lazy_adam_weight_decay_documented_semantics(self):
        """Touched rows see grad + wd * p, untouched rows see nothing."""
        p = Parameter(np.full((3, 2), 4.0))
        opt = SparseAdam([p], lr=0.1, weight_decay=0.5, mode="lazy")
        p.grad = RowSparseGrad(np.array([0]), np.zeros((1, 2)), p.shape)
        opt.step()
        # effective grad = 0 + 0.5 * 4 = 2 -> first Adam step ~= lr
        np.testing.assert_allclose(p.data[0], 4.0 - 0.1, atol=1e-6)
        np.testing.assert_allclose(p.data[1:], 4.0)

    def test_flush_is_noop_in_lazy_mode(self):
        p = Parameter(np.ones((4, 2)))
        opt = SparseAdam([p], lr=0.5, mode="lazy")
        p.grad = RowSparseGrad(np.array([0]), np.ones((1, 2)), p.shape)
        opt.step()
        after_step = p.data.copy()
        opt.flush()
        np.testing.assert_array_equal(p.data, after_step)


class TestEdgeCases:
    def test_dense_optimizers_reject_sparse_grads(self):
        for make in (lambda p: Adam(p, lr=0.1), lambda p: SGD(p, lr=0.1)):
            p = Parameter(np.ones((4, 2)))
            p.grad = RowSparseGrad(np.array([1]), np.ones((1, 2)), p.shape)
            with pytest.raises(TypeError, match="row-sparse"):
                make([p]).step()

    def test_duplicate_indices_accumulate_not_overwrite(self):
        """A batch repeating one row must apply the summed gradient."""
        p_dup, p_sum = Parameter(np.ones((4, 2))), Parameter(np.ones((4, 2)))
        dup = RowSparseGrad.from_rows(np.array([2, 2, 2]),
                                      np.ones((3, 2)), p_dup.shape)
        summed = RowSparseGrad(np.array([2]), np.full((1, 2), 3.0),
                               p_sum.shape)
        np.testing.assert_allclose(dup.densify(), summed.densify())
        opt_dup = SparseAdam([p_dup], lr=0.1, mode="lazy")
        opt_sum = SparseAdam([p_sum], lr=0.1, mode="lazy")
        p_dup.grad, p_sum.grad = dup, summed
        opt_dup.step()
        opt_sum.step()
        np.testing.assert_array_equal(p_dup.data, p_sum.data)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SparseAdam([Parameter(np.ones(2))], lr=0.1, mode="eager")

    def test_all_none_grads_change_nothing(self):
        p = Parameter(np.ones((3, 2)))
        opt = SparseAdam([p], lr=0.1, mode="exact")
        opt.step()
        opt.flush()
        np.testing.assert_array_equal(p.data, np.ones((3, 2)))

    def test_mixed_sparse_and_dense_params_in_one_optimizer(self):
        table = Parameter(np.ones((6, 2)))
        bias = Parameter(np.ones(3))
        opt = SparseAdam([table, bias], lr=0.1, mode="lazy")
        table.grad = RowSparseGrad(np.array([1]), np.ones((1, 2)), table.shape)
        bias.grad = np.ones(3)
        opt.step()
        assert not np.allclose(table.data[1], 1.0)
        assert not np.allclose(bias.data, 1.0)
        np.testing.assert_array_equal(table.data[[0, 2, 3, 4, 5]],
                                      np.ones((5, 2)))


class TestTrainerIntegration:
    def test_sparse_trainer_mf_runs_and_learns(self, tiny_dataset):
        from repro.losses import get_loss
        from repro.models.registry import get_model
        from repro.train.trainer import train_model
        for sparse_mode in ("lazy", "exact"):
            model = get_model("mf", tiny_dataset, dim=8, rng=0)
            result = train_model(model, get_loss("bsl"), tiny_dataset,
                                 epochs=3, batch_size=64, n_negatives=8,
                                 grad_mode="sparse", sparse_mode=sparse_mode,
                                 seed=5)
            assert result.loss_history[-1] < result.loss_history[0]

    def test_sparse_mode_on_graph_backbone_densifies_and_trains(
            self, tiny_dataset):
        """LightGCN's propagation densifies the gradients; the sparse
        trainer must still work (SparseAdam dense fallback)."""
        from repro.losses import get_loss
        from repro.models.registry import get_model
        from repro.train.trainer import train_model
        model = get_model("lightgcn", tiny_dataset, dim=8, rng=0)
        result = train_model(model, get_loss("bsl"), tiny_dataset,
                             epochs=2, batch_size=64, n_negatives=8,
                             grad_mode="sparse", seed=5)
        assert np.isfinite(result.loss_history).all()

    def test_train_config_validates_modes(self):
        from repro.train.config import TrainConfig
        with pytest.raises(ValueError):
            TrainConfig(grad_mode="blocked")
        with pytest.raises(ValueError):
            TrainConfig(sparse_mode="sometimes")
