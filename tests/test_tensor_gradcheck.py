"""Finite-difference gradient checks for every primitive op."""

import numpy as np
import pytest

from repro.tensor import Tensor, ops

from tests.helpers import check_gradient, numeric_gradient


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestElementwiseGrads:
    def test_add(self, rng):
        check_gradient(lambda t: (t + 3.0).sum(), lambda x: (x + 3.0).sum(),
                       (3, 4), rng)

    def test_sub(self, rng):
        check_gradient(lambda t: (5.0 - t).sum(), lambda x: (5.0 - x).sum(),
                       (3, 4), rng)

    def test_mul(self, rng):
        check_gradient(lambda t: (t * t).sum(), lambda x: (x * x).sum(),
                       (3, 4), rng)

    def test_div(self, rng):
        check_gradient(lambda t: (1.0 / t).sum(), lambda x: (1.0 / x).sum(),
                       (3, 4), rng, low=0.5, high=2.0)

    def test_neg(self, rng):
        check_gradient(lambda t: (-t).sum(), lambda x: (-x).sum(), (5,), rng)

    def test_power(self, rng):
        check_gradient(lambda t: (t ** 3).sum(), lambda x: (x ** 3).sum(),
                       (4,), rng, low=0.5, high=2.0)

    def test_exp(self, rng):
        check_gradient(lambda t: t.exp().sum(), lambda x: np.exp(x).sum(),
                       (3, 3), rng)

    def test_log(self, rng):
        check_gradient(lambda t: t.log().sum(), lambda x: np.log(x).sum(),
                       (4,), rng, low=0.5, high=3.0)

    def test_sqrt(self, rng):
        check_gradient(lambda t: t.sqrt().sum(), lambda x: np.sqrt(x).sum(),
                       (4,), rng, low=0.5, high=3.0)

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh().sum(), lambda x: np.tanh(x).sum(),
                       (4,), rng)

    def test_abs(self, rng):
        check_gradient(lambda t: t.abs().sum(), lambda x: np.abs(x).sum(),
                       (4,), rng, low=0.2, high=2.0)

    def test_clip_interior_and_exterior(self, rng):
        x = np.array([-2.0, 0.5, 3.0])
        t = Tensor(x, requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum_gradient_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_maximum_splits_ties(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])

    def test_minimum_gradient_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        ops.minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestBroadcastGrads:
    def test_add_broadcast_row(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_broadcast_column(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.broadcast_to(b.data, (3, 4)))
        np.testing.assert_allclose(b.grad, a.data.sum(axis=1, keepdims=True))

    def test_scalar_broadcast(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (a * s).sum().backward()
        np.testing.assert_allclose(s.grad, a.data.sum())

    def test_div_broadcast(self, rng):
        a = Tensor(rng.uniform(1, 2, size=(3, 4)), requires_grad=True)
        b = Tensor(rng.uniform(1, 2, size=(4,)), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(b.grad,
                                   (-a.data / b.data ** 2).sum(axis=0))


class TestReductionGrads:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t.sum(), lambda x: x.sum(), (3, 4), rng)

    def test_sum_axis(self, rng):
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(),
                       lambda x: (x.sum(axis=1) ** 2).sum(), (3, 4), rng)

    def test_sum_keepdims(self, rng):
        check_gradient(lambda t: (t.sum(axis=0, keepdims=True) ** 2).sum(),
                       lambda x: (x.sum(axis=0, keepdims=True) ** 2).sum(),
                       (3, 4), rng)

    def test_mean_all(self, rng):
        check_gradient(lambda t: t.mean(), lambda x: x.mean(), (3, 4), rng)

    def test_mean_axis(self, rng):
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(),
                       lambda x: (x.mean(axis=0) ** 2).sum(), (3, 4), rng)

    def test_max_axis(self, rng):
        # Distinct values to avoid tie-splitting vs numeric-diff mismatch.
        x = np.arange(12.0).reshape(3, 4)
        rng.shuffle(x.reshape(-1))
        t = Tensor(x.copy(), requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = numeric_gradient(lambda a: a.max(axis=1).sum(), x.copy())
        np.testing.assert_allclose(t.grad, expected, atol=1e-5)

    def test_min_all(self, rng):
        x = np.array([3.0, -1.0, 2.0])
        t = Tensor(x, requires_grad=True)
        t.min().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestIndexingGrads:
    def test_getitem_slice(self, rng):
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((4, 5))
        expected[1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_repeated_indices_accumulate(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x[np.array([1, 1, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 2.0, 1.0, 0.0])

    def test_getitem_pair_index(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        rows = np.array([0, 2])
        cols = np.array([1, 3])
        x[rows, cols].sum().backward()
        expected = np.zeros((3, 4))
        expected[0, 1] = expected[2, 3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_take_rows_scatter_add(self):
        x = Tensor(np.eye(4), requires_grad=True)
        out = ops.take_rows(x, np.array([[0, 1], [1, 3]]))
        assert out.shape == (2, 2, 4)
        out.sum().backward()
        # each gathered occurrence contributes ones(4) to its source row
        np.testing.assert_allclose(x.grad.sum(axis=1), [4.0, 8.0, 0.0, 4.0])


class TestShapeGrads:
    def test_reshape(self, rng):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(),
                       lambda x: (x.reshape(6) ** 2).sum(), (2, 3), rng)

    def test_transpose_default(self, rng):
        check_gradient(lambda t: (t.T ** 2).sum(),
                       lambda x: (x.T ** 2).sum(), (2, 3), rng)

    def test_transpose_axes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        y = x.transpose((2, 0, 1))
        assert y.shape == (4, 2, 3)
        (y * y).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)

    def test_concatenate(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = ops.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)
        np.testing.assert_allclose(b.grad, 2 * b.data)

    def test_stack(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.mean(axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 0.5))

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = ops.where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestMatmulGrads:
    def test_matmul_2d(self, rng):
        a_val = rng.normal(size=(3, 4))
        b = Tensor(rng.normal(size=(4, 2)))
        check_gradient(lambda t: (t @ b).sum(),
                       lambda x: (x @ b.data).sum(), (3, 4), rng)

    def test_matmul_grad_both_sides(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad,
                                   np.ones((3, 2)) @ b.data.T, atol=1e-10)
        np.testing.assert_allclose(b.grad,
                                   a.data.T @ np.ones((3, 2)), atol=1e-10)

    def test_matmul_vec_vec(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_matmul_vec_mat(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data.sum(axis=1))

    def test_matmul_mat_vec(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0))

    def test_power_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            ops.power(Tensor([1.0]), Tensor([2.0]))
