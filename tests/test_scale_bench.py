"""Out-of-core scale frontier: committed numbers + harness mechanics.

``BENCH_scale.json`` is the committed proof that the out-of-core engine
actually reaches million-scale catalogues: these tests pin that the
file carries a >=1M x >=1M row and that its training-phase peak RSS
grows sub-linearly in catalogue size (the whole point of streaming from
mmap shards instead of materializing dense state).  The harness tests
run the per-phase pipeline in-process on a tiny catalogue so tier-1
covers the measurement code itself.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.data.synthetic import SCALE_PRESETS, ScaleConfig
from repro.experiments.scale_perf import (PHASES, SCALE_SCHEMA,
                                          ScalePerfConfig, _level_paths,
                                          _resolve_level, run_scale_phase,
                                          run_scale_suite, summarize_scale)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_scale.json"


def _load_check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "scripts" / "check_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def payload():
    return json.loads(BENCH_PATH.read_text())


class TestCommittedFrontier:
    def test_validates_against_registry(self, payload):
        check_bench = _load_check_bench()
        assert check_bench.check_payload("BENCH_scale.json", payload) == []
        assert payload["schema"] == SCALE_SCHEMA

    def test_reaches_million_scale(self, payload):
        rows = [r for r in payload["results"] if r["kind"] == "scale"]
        assert any(r["num_users"] >= 1_000_000 and r["num_items"] >= 1_000_000
                   for r in rows), "no million-scale row committed"

    def test_train_rss_sublinear_in_catalogue(self, payload):
        rows = sorted((r for r in payload["results"] if r["kind"] == "scale"),
                      key=lambda r: r["num_users"] * r["num_items"])
        assert len(rows) >= 2
        small, big = rows[0], rows[-1]
        cat_ratio = (big["num_users"] * big["num_items"]) / \
            (small["num_users"] * small["num_items"])
        rss_ratio = big["peak_rss_mb"] / small["peak_rss_mb"]
        assert cat_ratio >= 10  # the sweep must actually span scales
        assert rss_ratio <= 0.5 * cat_ratio, (
            f"train RSS grew {rss_ratio:.1f}x over a {cat_ratio:.0f}x "
            f"catalogue — not out-of-core")

    def test_rss_far_below_dense_baseline(self, payload):
        for row in payload["results"]:
            rss_bytes = row["peak_rss_mb"] * 2**20
            assert rss_bytes < row["est_dense_bytes"] / 50, row["level"]

    def test_throughput_positive(self, payload):
        for row in payload["results"]:
            assert row["users_per_s"] > 0 and row["ms_per_step"] > 0


class TestLevelResolution:
    def test_presets_resolve(self):
        for name in SCALE_PRESETS:
            cfg = _resolve_level(name)
            assert isinstance(cfg, ScaleConfig) and cfg.name == name

    def test_config_passthrough(self):
        cfg = ScaleConfig(num_users=10, num_items=10, num_clusters=2,
                          mean_interactions=2.0, users_per_chunk=5,
                          seed=0, name="x")
        assert _resolve_level(cfg) is cfg

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError, match="unknown scale level"):
            _resolve_level("scale-1b")

    def test_million_preset_exists(self):
        assert any(cfg.num_users >= 1_000_000 and cfg.num_items >= 1_000_000
                   for cfg in SCALE_PRESETS.values())


TINY = ScaleConfig(num_users=400, num_items=300, num_clusters=8,
                   mean_interactions=6.0, users_per_chunk=128,
                   block_rows=512, seed=13, name="tiny")

RUN_SPEC = {"dim": 8, "steps": 3, "warmup": 1, "batch_size": 128,
            "n_negatives": 4, "serve_batches": 2, "serve_batch_size": 32,
            "k": 5, "shards": 2, "seed": 0}


class TestPhasePipeline:
    """All five phases, in-process, on a tiny catalogue."""

    @pytest.fixture(scope="class")
    def level_dir(self, tmp_path_factory):
        from dataclasses import asdict
        work = tmp_path_factory.mktemp("scale") / "tiny"
        work.mkdir()
        _level_paths(work)["config"].write_text(json.dumps(
            {"scale": asdict(TINY), "run": RUN_SPEC}) + "\n")
        return work

    @pytest.fixture(scope="class")
    def phase_results(self, level_dir):
        # phases depend on each other's on-disk artifacts, so run in order
        return {phase: run_scale_phase(phase, level_dir)
                for phase in PHASES}

    def test_gen_reports_catalogue(self, phase_results):
        gen = phase_results["gen"]
        assert gen["num_users"] == 400 and gen["num_items"] == 300
        assert gen["num_train"] > 0 and gen["shard_bytes"] > 0

    def test_train_reports_throughput(self, phase_results):
        train = phase_results["train"]
        assert train["ms_per_step"] > 0 and train["users_per_s"] > 0

    def test_export_writes_snapshot(self, phase_results, level_dir):
        export = phase_results["export"]
        assert export["snapshot_bytes"] > 0
        assert (_level_paths(level_dir)["snapshot"] / "shards.json").is_file()

    def test_serve_answers_queries(self, phase_results):
        assert phase_results["serve"]["users_per_s"] > 0

    def test_unknown_phase_rejected(self, level_dir):
        with pytest.raises(ValueError):
            run_scale_phase("profile", level_dir)


@pytest.mark.slow
class TestSubprocessSweep:
    """Full suite driver: one fresh subprocess per phase, real payload."""

    def test_tiny_sweep_end_to_end(self, tmp_path):
        payload = run_scale_suite(ScalePerfConfig(
            levels=(TINY,), dim=8, steps=3, warmup=1, batch_size=128,
            n_negatives=4, serve_batches=2, serve_batch_size=32, k=5,
            shards=2, work_dir=str(tmp_path)))
        check_bench = _load_check_bench()
        assert check_bench.check_payload("BENCH_scale.json", payload) == []
        (row,) = payload["results"]
        assert row["level"] == "tiny" and row["peak_rss_mb"] > 0
        assert "tiny" in summarize_scale(payload)
