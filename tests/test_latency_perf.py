"""Latency harness + the monotonic-floor timing fix, schema and CLI."""

import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro.experiments import perf
from repro.experiments.perf import (CLOCK_RESOLUTION_S, LATENCY_SCHEMA,
                                    LatencyPerfConfig, clamp_elapsed,
                                    run_latency_level, run_latency_suite,
                                    summarize_latency, time_index_topk,
                                    time_recommend, time_recommend_sharded,
                                    write_report)
from repro.serve import RecommendationService
from repro.serve.runtime import RuntimeConfig

pytestmark = pytest.mark.filterwarnings("ignore")

REPO_ROOT = pathlib.Path(__file__).parent.parent

_FAST_LEVEL = dict(offered_qps=2000.0, k=5)
_FAST_RUNTIME = RuntimeConfig(slo_ms=100.0, max_queue=256, initial_batch=8,
                              window=16)


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "scripts" / "check_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestMonotonicFloor:
    """Regression: a too-fast timed section must clamp to one clock tick
    instead of emitting ``float("inf")`` throughput that
    ``scripts/check_bench.py`` itself rejects."""

    def test_clamp_floors_at_resolution(self):
        assert clamp_elapsed(0.0) == CLOCK_RESOLUTION_S
        assert clamp_elapsed(-1.0) == CLOCK_RESOLUTION_S
        assert clamp_elapsed(CLOCK_RESOLUTION_S / 2) == CLOCK_RESOLUTION_S

    def test_clamp_passes_real_intervals_through(self):
        assert clamp_elapsed(0.25) == 0.25

    def test_resolution_positive(self):
        assert CLOCK_RESOLUTION_S > 0.0

    @pytest.fixture()
    def frozen_clock(self, monkeypatch):
        """perf_counter that never advances: every elapsed reads 0.0."""
        monkeypatch.setattr(perf.time, "perf_counter", lambda: 123.0)

    def test_time_index_topk_finite_on_frozen_clock(self, frozen_clock):
        class InstantIndex:
            def topk(self, users, k=10):
                return None

        row = time_index_topk(InstantIndex(), np.arange(8), batch_size=4,
                              k=5, repeats=2)
        assert np.isfinite(row["users_per_s"])
        assert row["users_per_s"] == pytest.approx(8 / CLOCK_RESOLUTION_S)

    def test_time_recommend_finite_on_frozen_clock(self, frozen_clock):
        class InstantService:
            class index:
                kind = "exact"

            class stats:
                hit_rate = 0.0

            def recommend(self, users, k=10):
                return []

        row = time_recommend(InstantService(), np.arange(8), batch_size=4,
                             k=5, repeats=2)
        assert np.isfinite(row["users_per_s"])

    def test_time_recommend_sharded_finite_on_frozen_clock(self,
                                                           frozen_clock):
        class InstantStats:
            sweeps = 0
            merge_s = 0.0
            merge_fraction = 0.0

            def reset(self):
                pass

        class InstantIndex:
            kind = "sharded-exact"
            per_shard_table_bytes = [128]

        class InstantService:
            index = InstantIndex()
            router_stats = InstantStats()

            def recommend(self, users, k=10):
                return []

        row = time_recommend_sharded(InstantService(), np.arange(8),
                                     batch_size=4, k=5, repeats=2, shards=2)
        assert np.isfinite(row["users_per_s"])
        assert np.isfinite(row["merge_overhead_ms"])


class TestLatencyLevel:
    def test_row_fields_and_bounds(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=0)
        users = np.arange(40, dtype=np.int64)
        row = run_latency_level(service, users, runtime_config=_FAST_RUNTIME,
                                **_FAST_LEVEL)
        assert row["kind"] == "latency"
        assert row["index"] == "exact"
        assert row["requests"] == 40
        assert row["completed"] + row["shed"] == 40
        assert row["achieved_qps"] > 0
        assert 0.0 <= row["p50_ms"] <= row["p99_ms"]
        assert 0.0 <= row["shed_rate"] <= 1.0
        assert row["mean_queue_ms"] >= 0.0
        assert row["mean_service_ms"] >= 0.0
        assert row["slo_ms"] == _FAST_RUNTIME.slo_ms
        for value in row.values():
            if isinstance(value, float):
                assert np.isfinite(value)

    def test_rejects_bad_offered_qps(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot)
        with pytest.raises(ValueError, match="offered_qps"):
            run_latency_level(service, np.arange(4), offered_qps=0.0)

    def test_tiny_queue_sheds_and_reports(self, tiny_mf_snapshot):
        """An offered burst far beyond a 1-deep queue must shed, not
        grow an unbounded backlog — and the row must account for it."""
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=0)
        config = RuntimeConfig(slo_ms=100.0, max_queue=1, initial_batch=1,
                               max_batch=1, window=4, poll_ms=20.0)
        row = run_latency_level(service, np.arange(50, dtype=np.int64),
                                offered_qps=100_000.0, k=5,
                                runtime_config=config)
        assert row["shed"] > 0
        assert row["shed_rate"] == pytest.approx(row["shed"] / 50)
        assert row["completed"] == 50 - row["shed"]


class TestLatencySuite:
    @pytest.fixture(scope="class")
    def payload(self):
        config = LatencyPerfConfig(
            dataset="tiny", epochs=1, dim=8, start_qps=1000.0, qps_step=4.0,
            max_levels=3, requests_per_level=60, window=16)
        return run_latency_suite(config)

    def test_schema_header(self, payload):
        assert payload["schema"] == LATENCY_SCHEMA
        assert payload["dataset"] == "tiny"
        assert payload["snapshot_version"]
        assert payload["config"]["requests_per_level"] == 60

    def test_levels_sweep_offered_load(self, payload):
        rows = payload["results"]
        assert 1 <= len(rows) <= 3
        offered = [row["offered_qps"] for row in rows]
        assert offered == sorted(offered)
        for i, row in enumerate(rows):
            assert row["kind"] == "latency"
            assert row["level"] == i
            assert row["offered_qps"] == pytest.approx(1000.0 * 4.0 ** i)
        # only the last level may be saturated (the sweep stops there)
        assert all(not row["saturated"] for row in rows[:-1])

    def test_validator_accepts_payload(self, payload, check_bench,
                                       tmp_path):
        path = tmp_path / "BENCH_latency.json"
        write_report(payload, path)
        assert check_bench.check_file(path) == []

    def test_json_roundtrip(self, payload, tmp_path):
        path = tmp_path / "BENCH_latency.json"
        write_report(payload, path)
        assert json.loads(path.read_text()) == payload

    def test_summarize_mentions_levels(self, payload):
        text = summarize_latency(payload)
        assert "latency suite on tiny" in text
        for row in payload["results"]:
            assert f"{row['offered_qps']:,.0f}" in text


class TestCommittedFrontier:
    """The committed BENCH_latency.json is the PR's acceptance artefact:
    a valid p50/p99-vs-offered-load frontier ending at saturation."""

    @pytest.fixture(scope="class")
    def committed(self):
        return json.loads((REPO_ROOT / "BENCH_latency.json").read_text())

    def test_file_expected_by_validator(self, check_bench):
        assert "BENCH_latency.json" in check_bench.EXPECTED
        assert check_bench.check_file(REPO_ROOT / "BENCH_latency.json") == []

    def test_frontier_shape(self, committed):
        assert committed["schema"] == LATENCY_SCHEMA
        rows = [r for r in committed["results"] if r["kind"] == "latency"]
        assert len(rows) >= 3  # a frontier, not a single point
        offered = [row["offered_qps"] for row in rows]
        assert offered == sorted(offered)
        for row in rows:
            assert row["p50_ms"] <= row["p99_ms"]
            assert row["completed"] > 0

    def test_sweep_reached_saturation(self, committed):
        rows = committed["results"]
        assert rows[-1]["saturated"]
        assert all(not row["saturated"] for row in rows[:-1])


class TestCLI:
    def test_perf_latency_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "BENCH_latency.json"
        rc = main(["perf-latency", "--dataset", "tiny", "--epochs", "1",
                   "--dim", "8", "--start-qps", "1000", "--max-levels", "2",
                   "--requests-per-level", "40", "--out", str(out)])
        assert rc == 0
        shown = capsys.readouterr().out
        assert "latency suite on tiny" in shown
        assert f"wrote {out}" in shown
        payload = json.loads(out.read_text())
        assert payload["schema"] == LATENCY_SCHEMA
