"""The bench-schema validator catches rot; the committed files pass it.

The validator's file list and required columns come from the suite
registry (:mod:`repro.experiments.bench`), so this module also pins the
registry <-> validator <-> repo-file coverage in both directions: every
registry suite must have its output file committed and validated, and
every committed ``BENCH_*.json`` must belong to a registry suite.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.experiments import bench

REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "scripts" / "check_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _minimal_serve_payload():
    return {
        "schema": "bsl-serve-bench/v2",
        "created_unix": 1.0,
        "dataset": "tiny",
        "config": {"k": 5},
        "results": [
            {"kind": "serve", "index": "exact", "cache": "cold",
             "batch_size": 8, "k": 5, "users_per_s": 100.0,
             "ms_per_batch": 1.0, "cache_hit_rate": 0.0},
            {"kind": "serve_sharded", "index": "sharded-exact",
             "shards": 2, "partition_by": "both", "strategy": "contiguous",
             "batch_size": 8, "k": 5, "users_per_s": 90.0,
             "merge_overhead_ms": 0.1, "merge_fraction": 0.05,
             "per_shard_bytes": 1024},
        ],
    }


def _minimal_train_payload():
    return {
        "schema": "bsl-train-bench/v1",
        "created_unix": 1.0,
        "dataset": "tiny",
        "config": {"model": "mf"},
        "results": [
            {"kind": "train_throughput", "model": "mf", "loss": "bsl",
             "grad_mode": "sparse", "num_items": 80, "catalogue_scale": 1,
             "batch_size": 64, "n_negatives": 8, "ms_per_step": 5.0,
             "steps_per_s": 200.0},
            {"kind": "train_quality", "model": "mf", "loss": "bsl",
             "grad_mode": "sparse", "sparse_mode": "lazy", "epochs": 2,
             "ndcg_at_20": 0.2},
        ],
    }


def _minimal_ann_payload():
    return {
        "schema": "bsl-ann-bench/v1",
        "created_unix": 1.0,
        "dataset": "tiny",
        "config": {"k": 5},
        "results": [
            {"kind": "ann_baseline", "index": "exact", "k": 5,
             "batch_size": 32, "users_per_s": 100.0},
            {"kind": "ann", "index": "ivf", "nlist": 4, "nprobe": 2,
             "recall": 0.97, "users_per_s": 300.0, "k": 5,
             "batch_size": 32, "candidates_mean": 20.0,
             "speedup_vs_exact": 3.0},
        ],
    }


def _minimal_latency_payload():
    return {
        "schema": "bsl-latency-bench/v1",
        "created_unix": 1.0,
        "dataset": "tiny",
        "config": {"k": 5},
        "results": [
            {"kind": "latency", "index": "exact", "offered_qps": 100.0,
             "achieved_qps": 99.0, "p50_ms": 1.0, "p99_ms": 2.0,
             "shed_rate": 0.0, "k": 5, "slo_ms": 50.0,
             "mean_queue_ms": 0.5, "mean_service_ms": 0.4},
        ],
    }


def _minimal_scale_payload():
    return {
        "schema": "bsl-scale-bench/v1",
        "created_unix": 1.0,
        "dataset": "tiny",
        "config": {"levels": ["tiny"]},
        "results": [
            {"kind": "scale", "level": "tiny", "num_users": 100,
             "num_items": 80, "catalogue": 8000, "num_train": 500,
             "dim": 8, "batch_size": 64, "n_negatives": 4, "steps": 3,
             "ms_per_step": 1.0, "users_per_s": 100.0,
             "peak_rss_mb": 50.0, "est_dense_bytes": 8000,
             "shard_bytes": 4096},
        ],
    }


class TestRegistryCoverage:
    """Registry <-> validator <-> committed files, both directions."""

    def test_every_suite_output_is_validated(self, check_bench):
        for name in bench.suite_names():
            suite = bench.get_suite(name)
            assert suite.output in check_bench.EXPECTED, name

    def test_every_validated_file_belongs_to_a_suite(self, check_bench):
        outputs = {bench.get_suite(n).output for n in bench.suite_names()}
        assert set(check_bench.EXPECTED) == outputs

    def test_every_suite_output_is_committed(self):
        for name in bench.suite_names():
            suite = bench.get_suite(name)
            assert (REPO_ROOT / suite.output).is_file(), (
                f"suite {name!r} promises {suite.output} but the repo "
                f"does not carry it — run `make {suite.make_target}`")

    def test_every_committed_bench_file_has_a_suite(self):
        outputs = {bench.get_suite(n).output for n in bench.suite_names()}
        for path in REPO_ROOT.glob("BENCH_*.json"):
            assert path.name in outputs, (
                f"{path.name} is committed but no registry suite owns it")

    def test_required_kinds_have_row_fields(self, check_bench):
        for name in bench.suite_names():
            for kind in bench.get_suite(name).required_kinds:
                assert check_bench.REQUIRED_FIELDS.get(kind), (name, kind)


class TestRepoFilesPass:
    def test_committed_bench_files_validate(self, check_bench):
        assert check_bench.main([]) == 0

    def test_serve_schema_is_v2(self):
        payload = json.loads((REPO_ROOT / "BENCH_serve.json").read_text())
        assert payload["schema"] == "bsl-serve-bench/v2"
        kinds = {row["kind"] for row in payload["results"]}
        assert {"serve", "serve_sharded", "overlap"} <= kinds

    def test_ann_file_expected(self, check_bench):
        assert "BENCH_ann.json" in check_bench.EXPECTED
        payload = json.loads((REPO_ROOT / "BENCH_ann.json").read_text())
        assert payload["schema"] == "bsl-ann-bench/v1"
        kinds = {row["kind"] for row in payload["results"]}
        assert {"ann", "ann_baseline"} <= kinds

    def test_train_file_expected(self, check_bench):
        assert "BENCH_train.json" in check_bench.EXPECTED
        payload = json.loads((REPO_ROOT / "BENCH_train.json").read_text())
        assert payload["schema"] == "bsl-train-bench/v1"
        kinds = {row["kind"] for row in payload["results"]}
        assert {"train_throughput", "train_quality"} <= kinds

    def test_latency_file_expected(self, check_bench):
        assert "BENCH_latency.json" in check_bench.EXPECTED
        payload = json.loads((REPO_ROOT / "BENCH_latency.json").read_text())
        assert payload["schema"] == "bsl-latency-bench/v1"
        assert {row["kind"] for row in payload["results"]} == {"latency"}

    def test_scale_file_expected(self, check_bench):
        assert "BENCH_scale.json" in check_bench.EXPECTED
        payload = json.loads((REPO_ROOT / "BENCH_scale.json").read_text())
        assert payload["schema"] == "bsl-scale-bench/v1"
        assert {row["kind"] for row in payload["results"]} == {"scale"}


class TestValidatorCatchesRot:
    def test_good_payload_passes(self, check_bench):
        problems = check_bench.check_payload("BENCH_serve.json",
                                             _minimal_serve_payload())
        assert problems == []

    def test_wrong_schema_rejected(self, check_bench):
        payload = _minimal_serve_payload()
        payload["schema"] = "bsl-serve-bench/v1"
        problems = check_bench.check_payload("BENCH_serve.json", payload)
        assert any("does not match expected" in p for p in problems)

    def test_missing_section_rejected(self, check_bench):
        payload = _minimal_serve_payload()
        payload["results"] = [r for r in payload["results"]
                              if r["kind"] != "serve_sharded"]
        problems = check_bench.check_payload("BENCH_serve.json", payload)
        assert any("serve_sharded" in p and "required section" in p
                   for p in problems)

    @pytest.mark.parametrize("bad", [float("inf"), float("nan")])
    def test_non_finite_numbers_rejected(self, check_bench, bad):
        payload = _minimal_serve_payload()
        payload["results"][0]["users_per_s"] = bad
        problems = check_bench.check_payload("BENCH_serve.json", payload)
        assert any("non-finite" in p for p in problems)

    def test_missing_row_fields_rejected(self, check_bench):
        payload = _minimal_serve_payload()
        del payload["results"][1]["merge_overhead_ms"]
        problems = check_bench.check_payload("BENCH_serve.json", payload)
        assert any("missing fields" in p and "merge_overhead_ms" in p
                   for p in problems)

    def test_missing_top_level_key_rejected(self, check_bench):
        payload = _minimal_serve_payload()
        del payload["results"]
        problems = check_bench.check_payload("BENCH_serve.json", payload)
        assert any("missing top-level key" in p for p in problems)

    def test_empty_results_rejected(self, check_bench):
        payload = _minimal_serve_payload()
        payload["results"] = []
        problems = check_bench.check_payload("BENCH_serve.json", payload)
        assert any("empty" in p for p in problems)

    def test_missing_file_reported(self, check_bench, tmp_path):
        problems = check_bench.check_file(tmp_path / "BENCH_serve.json")
        assert any("file missing" in p for p in problems)

    def test_invalid_json_reported(self, check_bench, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text("{not json")
        problems = check_bench.check_file(path)
        assert any("invalid JSON" in p for p in problems)

    def test_unknown_file_reported(self, check_bench, tmp_path):
        path = tmp_path / "BENCH_other.json"
        path.write_text("{}")
        problems = check_bench.check_file(path)
        assert any("unknown bench file" in p for p in problems)


class TestTrainValidation:
    def test_good_train_payload_passes(self, check_bench):
        problems = check_bench.check_payload("BENCH_train.json",
                                             _minimal_train_payload())
        assert problems == []

    def test_missing_frontier_columns_rejected(self, check_bench):
        for column in ("grad_mode", "num_items", "ms_per_step",
                       "steps_per_s"):
            payload = _minimal_train_payload()
            del payload["results"][0][column]
            problems = check_bench.check_payload("BENCH_train.json", payload)
            assert any("missing fields" in p and column in p
                       for p in problems), column

    def test_missing_quality_section_rejected(self, check_bench):
        payload = _minimal_train_payload()
        payload["results"] = [r for r in payload["results"]
                              if r["kind"] != "train_quality"]
        problems = check_bench.check_payload("BENCH_train.json", payload)
        assert any("train_quality" in p and "required section" in p
                   for p in problems)

    def test_non_finite_step_time_rejected(self, check_bench):
        payload = _minimal_train_payload()
        payload["results"][0]["ms_per_step"] = float("nan")
        problems = check_bench.check_payload("BENCH_train.json", payload)
        assert any("non-finite" in p for p in problems)

    def test_wrong_schema_rejected(self, check_bench):
        payload = _minimal_train_payload()
        payload["schema"] = "bsl-train-bench/v0"
        problems = check_bench.check_payload("BENCH_train.json", payload)
        assert any("does not match expected" in p for p in problems)


class TestAnnValidation:
    def test_good_ann_payload_passes(self, check_bench):
        problems = check_bench.check_payload("BENCH_ann.json",
                                             _minimal_ann_payload())
        assert problems == []

    def test_missing_frontier_columns_rejected(self, check_bench):
        for column in ("nlist", "nprobe", "recall", "users_per_s"):
            payload = _minimal_ann_payload()
            del payload["results"][1][column]
            problems = check_bench.check_payload("BENCH_ann.json", payload)
            assert any("missing fields" in p and column in p
                       for p in problems), column

    def test_missing_baseline_section_rejected(self, check_bench):
        payload = _minimal_ann_payload()
        payload["results"] = [r for r in payload["results"]
                              if r["kind"] != "ann_baseline"]
        problems = check_bench.check_payload("BENCH_ann.json", payload)
        assert any("ann_baseline" in p and "required section" in p
                   for p in problems)

    def test_non_finite_recall_rejected(self, check_bench):
        payload = _minimal_ann_payload()
        payload["results"][1]["recall"] = float("nan")
        problems = check_bench.check_payload("BENCH_ann.json", payload)
        assert any("non-finite" in p for p in problems)

    def test_wrong_schema_rejected(self, check_bench):
        payload = _minimal_ann_payload()
        payload["schema"] = "bsl-ann-bench/v0"
        problems = check_bench.check_payload("BENCH_ann.json", payload)
        assert any("does not match expected" in p for p in problems)


class TestLatencyValidation:
    def test_good_latency_payload_passes(self, check_bench):
        problems = check_bench.check_payload("BENCH_latency.json",
                                             _minimal_latency_payload())
        assert problems == []

    def test_missing_frontier_columns_rejected(self, check_bench):
        for column in ("offered_qps", "achieved_qps", "p50_ms", "p99_ms",
                       "shed_rate", "slo_ms", "mean_queue_ms",
                       "mean_service_ms"):
            payload = _minimal_latency_payload()
            del payload["results"][0][column]
            problems = check_bench.check_payload("BENCH_latency.json",
                                                 payload)
            assert any("missing fields" in p and column in p
                       for p in problems), column

    def test_missing_latency_section_rejected(self, check_bench):
        payload = _minimal_latency_payload()
        payload["results"][0]["kind"] = "other"
        problems = check_bench.check_payload("BENCH_latency.json", payload)
        assert any("latency" in p and "required section" in p
                   for p in problems)

    @pytest.mark.parametrize("bad", [float("inf"), float("nan")])
    def test_non_finite_latency_rejected(self, check_bench, bad):
        payload = _minimal_latency_payload()
        payload["results"][0]["p99_ms"] = bad
        problems = check_bench.check_payload("BENCH_latency.json", payload)
        assert any("non-finite" in p for p in problems)

    def test_wrong_schema_rejected(self, check_bench):
        payload = _minimal_latency_payload()
        payload["schema"] = "bsl-latency-bench/v0"
        problems = check_bench.check_payload("BENCH_latency.json", payload)
        assert any("does not match expected" in p for p in problems)


class TestScaleValidation:
    def test_good_scale_payload_passes(self, check_bench):
        problems = check_bench.check_payload("BENCH_scale.json",
                                             _minimal_scale_payload())
        assert problems == []

    def test_missing_frontier_columns_rejected(self, check_bench):
        for column in ("level", "num_users", "num_items", "ms_per_step",
                       "users_per_s", "peak_rss_mb", "est_dense_bytes",
                       "shard_bytes"):
            payload = _minimal_scale_payload()
            del payload["results"][0][column]
            problems = check_bench.check_payload("BENCH_scale.json", payload)
            assert any("missing fields" in p and column in p
                       for p in problems), column

    def test_missing_scale_section_rejected(self, check_bench):
        payload = _minimal_scale_payload()
        payload["results"][0]["kind"] = "other"
        problems = check_bench.check_payload("BENCH_scale.json", payload)
        assert any("'scale'" in p and "required section" in p
                   for p in problems)

    @pytest.mark.parametrize("bad", [float("inf"), float("nan")])
    def test_non_finite_rss_rejected(self, check_bench, bad):
        payload = _minimal_scale_payload()
        payload["results"][0]["peak_rss_mb"] = bad
        problems = check_bench.check_payload("BENCH_scale.json", payload)
        assert any("non-finite" in p for p in problems)

    def test_wrong_schema_rejected(self, check_bench):
        payload = _minimal_scale_payload()
        payload["schema"] = "bsl-scale-bench/v0"
        problems = check_bench.check_payload("BENCH_scale.json", payload)
        assert any("does not match expected" in p for p in problems)
