"""ANN subsystem: parity, recall floors, over-fetch, persistence."""

import numpy as np
import pytest

from repro.ann import (IVFFlatIndex, IVFIndexData, IVFPQIndex, assign_lists,
                       build_ann_index, is_ann_index, load_ann_generator,
                       load_ann_index, train_coarse_quantizer)
from repro.data import load_dataset
from repro.eval.metrics import overlap_at_k
from repro.losses import get_loss
from repro.models import get_model
from repro.serve import (ExactTopKIndex, RecommendationService,
                         ShardedTopKIndex, export_sharded_snapshot,
                         export_snapshot)
from repro.train import TrainConfig, train_model


@pytest.fixture(scope="module")
def yelp_retrieval(tmp_path_factory):
    """(dataset, model, snapshot) for a retrieval-trained cell on yelp.

    Matches the ANN benchmark's default cell (``mf`` + ``bpr``): a
    pairwise loss keeps the item embeddings clusterable, which is what
    the recall-floor acceptance rides on (see ``docs/ann.md``).
    """
    dataset = load_dataset("yelp2018-small")
    model = get_model("mf", dataset, dim=64, rng=0)
    config = TrainConfig(epochs=25, n_negatives=16, eval_every=0,
                         patience=0, seed=0)
    train_model(model, get_loss("bpr"), dataset, config)
    out = tmp_path_factory.mktemp("yelp-snap")
    snapshot = export_snapshot(model, dataset, out, model_name="mf")
    return dataset, model, snapshot


@pytest.fixture(scope="module")
def yelp_ivf(yelp_retrieval, tmp_path_factory):
    """An on-disk IVF index (nlist=16, nprobe=2) over the yelp snapshot."""
    _, _, snapshot = yelp_retrieval
    out = tmp_path_factory.mktemp("yelp-ann")
    return out, build_ann_index(snapshot, out, nlist=16, default_nprobe=2,
                                seed=0)


class TestTraining:
    def test_quantizer_shapes_and_determinism(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        items = np.asarray(snapshot.items)
        c1, l1 = train_coarse_quantizer(items, 4, seed=7)
        c2, l2 = train_coarse_quantizer(items, 4, seed=7)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(l1, l2)
        assert c1.shape == (4, items.shape[1])
        c3, _ = train_coarse_quantizer(items, 4, seed=8)
        assert not np.array_equal(c1, c3)

    def test_assign_lists_partitions_catalogue(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        items = np.asarray(snapshot.items)
        centroids, _ = train_coarse_quantizer(items, 4, seed=0)
        lists = assign_lists(items, centroids, spill=1)
        merged = np.sort(np.concatenate(lists))
        np.testing.assert_array_equal(merged, np.arange(len(items)))
        for ids in lists:
            assert np.all(np.diff(ids) > 0)  # ascending, unique

    def test_spill_stores_items_redundantly(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        items = np.asarray(snapshot.items)
        centroids, _ = train_coarse_quantizer(items, 4, seed=0)
        spilled = assign_lists(items, centroids, spill=2)
        assert sum(len(ids) for ids in spilled) == 2 * len(items)

    def test_bad_args_rejected(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        items = np.asarray(snapshot.items)
        with pytest.raises(ValueError):
            train_coarse_quantizer(items, 0)
        centroids, _ = train_coarse_quantizer(items, 4, seed=0)
        with pytest.raises(ValueError):
            assign_lists(items, centroids, spill=0)
        with pytest.raises(ValueError):
            assign_lists(items, centroids, spill=5)


class TestExactnessBoundary:
    """ISSUE acceptance: nprobe == nlist is bit-identical to exact.

    The parity configuration pins what the exact index pins —
    ``panel_width`` and ``chunk_users`` — because BLAS bit patterns are
    a function of every GEMM dimension.  With those matched, the single
    probe-signature covers the catalogue in ascending id order and the
    ANN path performs literally the exact index's computation.
    """

    def test_bit_identical_on_yelp(self, yelp_retrieval, yelp_ivf):
        dataset, _, snapshot = yelp_retrieval
        _, built = yelp_ivf
        exact = ExactTopKIndex(snapshot)
        boundary = IVFFlatIndex(snapshot, built.data, nprobe=built.data.nlist,
                                panel_width=512, chunk_users=256)
        users = np.arange(dataset.num_users, dtype=np.int64)
        a = boundary.topk(users, k=10)
        e = exact.topk(users, k=10)
        np.testing.assert_array_equal(a.items, e.items)
        np.testing.assert_array_equal(a.scores, e.scores)

    @pytest.mark.parametrize("batch", [1, 37, 256])
    def test_bit_identical_across_batch_sizes(self, yelp_retrieval,
                                              yelp_ivf, batch):
        dataset, _, snapshot = yelp_retrieval
        _, built = yelp_ivf
        exact = ExactTopKIndex(snapshot)
        boundary = IVFFlatIndex(snapshot, built.data, nprobe=built.data.nlist,
                                panel_width=512, chunk_users=256)
        users = np.arange(0, dataset.num_users, 3, dtype=np.int64)[:batch]
        a = boundary.topk(users, k=10)
        e = exact.topk(users, k=10)
        np.testing.assert_array_equal(a.items, e.items)
        np.testing.assert_array_equal(a.scores, e.scores)

    def test_bit_identical_unfiltered_and_k_sweep(self, yelp_retrieval,
                                                  yelp_ivf):
        dataset, _, snapshot = yelp_retrieval
        _, built = yelp_ivf
        exact = ExactTopKIndex(snapshot)
        boundary = IVFFlatIndex(snapshot, built.data, nprobe=built.data.nlist,
                                panel_width=512, chunk_users=256)
        users = np.arange(dataset.num_users, dtype=np.int64)
        for k, filter_seen in ((1, True), (37, True), (10_000, False)):
            a = boundary.topk(users, k=k, filter_seen=filter_seen)
            e = exact.topk(users, k=k, filter_seen=filter_seen)
            np.testing.assert_array_equal(a.items, e.items)
            np.testing.assert_array_equal(a.scores, e.scores)

    def test_euclidean_scoring_boundary(self, tiny_dataset, tmp_path):
        """CML snapshots (euclidean scoring) keep the parity contract."""
        model = get_model("cml", tiny_dataset, dim=8, rng=0)
        snapshot = export_snapshot(model, tiny_dataset, tmp_path / "snap")
        assert snapshot.scoring == "euclidean"
        built = build_ann_index(snapshot, tmp_path / "ann", nlist=4, seed=0)
        boundary = IVFFlatIndex(snapshot, built.data, nprobe=4,
                                chunk_users=256)
        exact = ExactTopKIndex(snapshot, panel_width=boundary.panel_width)
        users = np.arange(tiny_dataset.num_users, dtype=np.int64)
        a = boundary.topk(users, k=10)
        e = exact.topk(users, k=10)
        np.testing.assert_array_equal(a.items, e.items)
        np.testing.assert_array_equal(a.scores, e.scores)

    def test_euclidean_partial_probe_is_sane(self, tiny_dataset, tmp_path):
        """At nprobe < nlist the euclidean path ranks by distance, so
        it recovers most of the exact top-10 (a raw-dot-product bug
        would tank this)."""
        model = get_model("cml", tiny_dataset, dim=8, rng=0)
        snapshot = export_snapshot(model, tiny_dataset, tmp_path / "snap")
        built = build_ann_index(snapshot, tmp_path / "ann", nlist=4,
                                default_nprobe=2, seed=0)
        users = np.arange(tiny_dataset.num_users, dtype=np.int64)
        exact = ExactTopKIndex(snapshot).topk(users, k=10).items
        recall = overlap_at_k(exact, built.topk(users, k=10).items)
        assert recall >= 0.7

    def test_euclidean_rejected_by_ivfpq(self, tiny_dataset, tmp_path):
        model = get_model("cml", tiny_dataset, dim=8, rng=0)
        snapshot = export_snapshot(model, tiny_dataset, tmp_path / "snap")
        with pytest.raises(ValueError, match="euclidean"):
            build_ann_index(snapshot, tmp_path / "ann", kind="ivfpq",
                            nlist=4, pq_m=4, pq_ks=8, seed=0)

    def test_tiny_boundary_with_default_width(self, tiny_dataset,
                                              tiny_mf_snapshot, tmp_path):
        """Same identity at the ANN default panel width, exact matched."""
        _, snapshot = tiny_mf_snapshot
        built = build_ann_index(snapshot, tmp_path, nlist=4, seed=0)
        boundary = IVFFlatIndex(snapshot, built.data, nprobe=4,
                                chunk_users=256)
        exact = ExactTopKIndex(snapshot,
                               panel_width=boundary.panel_width)
        users = np.arange(tiny_dataset.num_users, dtype=np.int64)
        a = boundary.topk(users, k=10)
        e = exact.topk(users, k=10)
        np.testing.assert_array_equal(a.items, e.items)
        np.testing.assert_array_equal(a.scores, e.scores)


class TestOverFetch:
    def test_heaviest_users_get_full_lists(self, yelp_retrieval, yelp_ivf):
        """filter_seen masking must never starve the top-k."""
        dataset, _, snapshot = yelp_retrieval
        _, index = yelp_ivf
        seen_counts = np.diff(snapshot.seen_indptr)
        heavy = np.argsort(-seen_counts)[:25].astype(np.int64)
        assert seen_counts[heavy].max() > 50  # genuinely heavy users
        result = index.topk(heavy, k=10, filter_seen=True)
        assert np.all(result.items >= 0)
        assert np.all(result.items < dataset.num_items)
        assert np.all(np.isfinite(result.scores))
        for row, user in enumerate(heavy.tolist()):
            seen = set(dataset.train_items_by_user[user].tolist())
            assert not seen & set(result.items[row].tolist())

    def test_probe_expansion_scales_with_seen(self, yelp_retrieval,
                                              yelp_ivf):
        """Heavy users' candidate sets expand past nprobe lists."""
        _, _, snapshot = yelp_retrieval
        _, index = yelp_ivf
        seen_counts = np.diff(snapshot.seen_indptr).astype(np.int64)
        heavy = int(np.argmax(seen_counts))
        from repro.serve.index import scoring_ready_users
        vectors = scoring_ready_users(snapshot.users[[heavy]],
                                      snapshot.scoring)
        indptr, ids = index.data.candidates_csr(
            vectors, seen_counts[[heavy]], 10, 2, True)
        assert indptr[1] - indptr[0] >= 10 + seen_counts[heavy]

    def test_k_larger_than_candidates_expands_to_catalogue(
            self, tiny_dataset, tiny_mf_snapshot, tmp_path):
        _, snapshot = tiny_mf_snapshot
        index = build_ann_index(snapshot, tmp_path, nlist=4,
                                default_nprobe=1, seed=0)
        result = index.topk([0], k=tiny_dataset.num_items,
                            filter_seen=False)
        assert sorted(result.items[0].tolist()) == list(
            range(tiny_dataset.num_items))


class TestRecallFloor:
    def test_flagship_operating_point(self, yelp_retrieval, yelp_ivf):
        """The benchmark's qualifying point: recall@10 >= 0.95."""
        dataset, _, snapshot = yelp_retrieval
        _, index = yelp_ivf
        users = np.arange(dataset.num_users, dtype=np.int64)
        exact = ExactTopKIndex(snapshot).topk(users, k=10).items
        recall = overlap_at_k(exact, index.topk(users, k=10).items)
        assert recall >= 0.95

    def test_recall_monotone_in_nprobe(self, yelp_retrieval, yelp_ivf):
        dataset, _, snapshot = yelp_retrieval
        _, built = yelp_ivf
        users = np.arange(dataset.num_users, dtype=np.int64)
        exact = ExactTopKIndex(snapshot).topk(users, k=10).items
        recalls = []
        for nprobe in (1, 2, 8, 16):
            index = IVFFlatIndex(snapshot, built.data, nprobe=nprobe)
            recalls.append(overlap_at_k(exact,
                                        index.topk(users, k=10).items))
        assert recalls == sorted(recalls)
        assert recalls[-1] == 1.0

    def test_ivfpq_recall_floor(self, yelp_retrieval, tmp_path):
        """ADC shortlisting keeps >= 0.9 of the exact top-10."""
        dataset, _, snapshot = yelp_retrieval
        index = build_ann_index(snapshot, tmp_path, kind="ivfpq", nlist=16,
                                default_nprobe=2, seed=0)
        users = np.arange(dataset.num_users, dtype=np.int64)
        exact = ExactTopKIndex(snapshot).topk(users, k=10).items
        assert overlap_at_k(exact, index.topk(users, k=10).items) >= 0.9


class TestSearchSemantics:
    def test_routed_equals_dynamic(self, yelp_retrieval, yelp_ivf):
        dataset, _, snapshot = yelp_retrieval
        _, built = yelp_ivf
        users = np.arange(dataset.num_users, dtype=np.int64)
        routed = IVFFlatIndex(snapshot, built.data, nprobe=2, routed=True)
        dynamic = IVFFlatIndex(snapshot, built.data, nprobe=2, routed=False)
        a, b = routed.topk(users, k=10), dynamic.topk(users, k=10)
        np.testing.assert_array_equal(a.items, b.items)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_results_independent_of_batch_composition(self, yelp_retrieval,
                                                      yelp_ivf):
        """A user's ranked list cannot depend on who shares the batch.

        Item lists must match exactly; scores may drift in the last ulp
        because the scoring GEMM's row count follows the batch's group
        size — the same property the exact index has across request
        batch sizes (see ``docs/ann.md``).
        """
        _, _, snapshot = yelp_retrieval
        _, index = yelp_ivf
        alone = index.topk([7], k=10)
        together = index.topk(np.arange(64, dtype=np.int64), k=10)
        np.testing.assert_array_equal(alone.items[0], together.items[7])
        np.testing.assert_allclose(alone.scores[0], together.scores[7],
                                   rtol=1e-12, atol=0)

    def test_filter_seen_removes_train_items(self, yelp_retrieval,
                                             yelp_ivf):
        dataset, _, snapshot = yelp_retrieval
        _, index = yelp_ivf
        users = np.arange(dataset.num_users, dtype=np.int64)
        result = index.topk(users, k=10, filter_seen=True)
        for row, user in enumerate(users.tolist()):
            seen = set(dataset.train_items_by_user[user].tolist())
            assert not seen & set(result.items[row].tolist())

    def test_returned_scores_match_exact_values(self, yelp_retrieval,
                                                yelp_ivf):
        """Candidate re-scoring is exact arithmetic: every returned
        (user, item) score agrees with the exact index's score for the
        same pair to the last couple of ulp (GEMM row-count differs)."""
        dataset, _, snapshot = yelp_retrieval
        _, index = yelp_ivf
        users = np.arange(dataset.num_users, dtype=np.int64)
        exact_full = ExactTopKIndex(snapshot).topk(
            users, k=dataset.num_items, filter_seen=True)
        lookup = np.empty((dataset.num_users, dataset.num_items))
        rows = np.arange(dataset.num_users)[:, None]
        lookup[rows, exact_full.items] = exact_full.scores
        result = index.topk(users, k=10)
        expected = np.take_along_axis(lookup, result.items, axis=1)
        np.testing.assert_allclose(result.scores, expected, rtol=1e-12,
                                   atol=0)

    def test_input_validation(self, yelp_retrieval, yelp_ivf):
        dataset, _, snapshot = yelp_retrieval
        _, built = yelp_ivf
        index = built
        with pytest.raises(ValueError, match="k must be positive"):
            index.topk([0], k=0)
        with pytest.raises(ValueError, match="user ids"):
            index.topk([dataset.num_users], k=5)
        with pytest.raises(ValueError, match="nprobe"):
            IVFFlatIndex(snapshot, built.data, nprobe=99)
        with pytest.raises(ValueError, match="chunk_users"):
            IVFFlatIndex(snapshot, built.data, chunk_users=0)


class TestServiceIntegration:
    def test_drop_in_index_backend(self, yelp_retrieval, yelp_ivf):
        _, _, snapshot = yelp_retrieval
        _, index = yelp_ivf
        service = RecommendationService(snapshot, index=index)
        recs = service.recommend([3, 14, 15, 14], k=5)
        assert len(recs) == 4
        assert recs[1].items.shape == (5,)
        # duplicate users share one cached answer
        np.testing.assert_array_equal(recs[1].items, recs[3].items)
        assert service.stats.cache_misses == 3

    def test_cache_keyed_on_ann_kind(self, yelp_retrieval, yelp_ivf):
        """An ANN service can never serve exact-index cache entries."""
        _, _, snapshot = yelp_retrieval
        _, index = yelp_ivf
        assert index.kind == "ivf"
        service = RecommendationService(snapshot, index=index)
        assert service._key(3, 10, True)[1] == "ivf"

    def test_routing_tables_bounded(self, yelp_retrieval, yelp_ivf):
        """Caller-controlled k cannot grow the routing memo unboundedly."""
        _, _, snapshot = yelp_retrieval
        _, built = yelp_ivf
        index = IVFFlatIndex(snapshot, built.data, nprobe=2)
        for k in range(1, 2 * index.MAX_ROUTING_TABLES + 1):
            index.topk([0], k=k)
        assert len(index._routing) <= index.MAX_ROUTING_TABLES


class TestShardedIntegration:
    @pytest.fixture(scope="class")
    def sharded(self, yelp_retrieval, tmp_path_factory):
        dataset, model, _ = yelp_retrieval
        out = tmp_path_factory.mktemp("yelp-shards")
        return export_sharded_snapshot(model, dataset, out, shards=3)

    def test_full_probe_candidates_are_invisible(self, yelp_retrieval,
                                                 yelp_ivf, sharded):
        """nprobe == nlist candidates cover the catalogue, so the ANN
        prefilter is a no-op: bit-identical to the plain sharded path."""
        dataset, _, _ = yelp_retrieval
        _, built = yelp_ivf
        users = np.arange(dataset.num_users, dtype=np.int64)
        plain = ShardedTopKIndex(sharded, kind="exact").topk(users, k=10)
        routed = ShardedTopKIndex(sharded, kind="exact", ann=built,
                                  ann_nprobe=built.data.nlist
                                  ).topk(users, k=10)
        np.testing.assert_array_equal(plain.items, routed.items)
        np.testing.assert_array_equal(plain.scores, routed.scores)

    def test_sharded_ann_recall_floor(self, yelp_retrieval, yelp_ivf,
                                      sharded):
        dataset, _, snapshot = yelp_retrieval
        _, built = yelp_ivf
        users = np.arange(dataset.num_users, dtype=np.int64)
        exact = ExactTopKIndex(snapshot).topk(users, k=10).items
        router = ShardedTopKIndex(sharded, kind="exact", ann=built)
        assert router.kind == "sharded-exact-ann"
        recall = overlap_at_k(exact, router.topk(users, k=10).items)
        assert recall >= 0.95

    def test_sharded_ann_filters_seen(self, yelp_retrieval, yelp_ivf,
                                      sharded):
        dataset, _, _ = yelp_retrieval
        _, built = yelp_ivf
        seen_counts = np.array([len(dataset.train_items_by_user[u])
                                for u in range(dataset.num_users)])
        heavy = np.argsort(-seen_counts)[:10].astype(np.int64)
        router = ShardedTopKIndex(sharded, kind="exact", ann=built)
        result = router.topk(heavy, k=10)
        assert np.all(np.isfinite(result.scores))
        for row, user in enumerate(heavy.tolist()):
            seen = set(dataset.train_items_by_user[user].tolist())
            assert not seen & set(result.items[row].tolist())

    def test_generator_structural_mismatch_rejected(self, yelp_ivf,
                                                    tiny_mf_snapshot):
        path, _ = yelp_ivf
        _, tiny_snapshot = tiny_mf_snapshot
        with pytest.raises(ValueError, match="does not fit"):
            load_ann_generator(path, snapshot=tiny_snapshot)

    def test_generator_verify_detects_tamper(self, yelp_retrieval,
                                             tmp_path):
        _, _, snapshot = yelp_retrieval
        build_ann_index(snapshot, tmp_path, nlist=8, seed=0)
        items = np.load(tmp_path / "list_items.npy")
        items[:2] = items[:2][::-1]
        np.save(tmp_path / "list_items.npy", items)
        load_ann_generator(tmp_path)  # unverified load still works
        with pytest.raises(ValueError, match="content hash"):
            load_ann_generator(tmp_path, verify=True)


class TestPersistence:
    def test_round_trip(self, yelp_retrieval, yelp_ivf):
        _, _, snapshot = yelp_retrieval
        path, built = yelp_ivf
        assert is_ann_index(path)
        loaded = load_ann_index(path, snapshot, verify=True)
        users = np.arange(64, dtype=np.int64)
        a, b = built.topk(users, k=10), loaded.topk(users, k=10)
        np.testing.assert_array_equal(a.items, b.items)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_pq_round_trip(self, yelp_retrieval, tmp_path):
        _, _, snapshot = yelp_retrieval
        built = build_ann_index(snapshot, tmp_path, kind="ivfpq", nlist=8,
                                seed=0)
        loaded = load_ann_index(tmp_path, snapshot, verify=True)
        assert isinstance(loaded, IVFPQIndex)
        users = np.arange(64, dtype=np.int64)
        a, b = built.topk(users, k=10), loaded.topk(users, k=10)
        np.testing.assert_array_equal(a.items, b.items)

    def test_deterministic_builds_byte_identical(self, yelp_retrieval,
                                                 tmp_path):
        """Satellite acceptance: same snapshot + seed => same bytes."""
        _, _, snapshot = yelp_retrieval
        a, b = tmp_path / "a", tmp_path / "b"
        build_ann_index(snapshot, a, kind="ivfpq", nlist=8, spill=2, seed=3)
        build_ann_index(snapshot, b, kind="ivfpq", nlist=8, spill=2, seed=3)
        files = sorted(p.name for p in a.iterdir())
        assert files == sorted(p.name for p in b.iterdir())
        for name in files:
            assert (a / name).read_bytes() == (b / name).read_bytes(), name

    def test_different_seed_changes_version(self, yelp_retrieval, tmp_path):
        _, _, snapshot = yelp_retrieval
        a = build_ann_index(snapshot, tmp_path / "a", nlist=8, seed=0)
        b = build_ann_index(snapshot, tmp_path / "b", nlist=8, seed=1)
        manifest_a = (tmp_path / "a" / "manifest.json").read_text()
        manifest_b = (tmp_path / "b" / "manifest.json").read_text()
        assert manifest_a != manifest_b

    def test_tamper_detection(self, yelp_retrieval, tmp_path):
        _, _, snapshot = yelp_retrieval
        build_ann_index(snapshot, tmp_path, nlist=8, seed=0)
        centroids = np.load(tmp_path / "centroids.npy")
        centroids[0, 0] += 1.0
        np.save(tmp_path / "centroids.npy", centroids)
        load_ann_index(tmp_path, snapshot)  # unverified load still works
        with pytest.raises(ValueError, match="content hash"):
            load_ann_index(tmp_path, snapshot, verify=True)

    def test_snapshot_mismatch_rejected(self, yelp_ivf, tiny_mf_snapshot):
        path, _ = yelp_ivf
        _, tiny_snapshot = tiny_mf_snapshot
        with pytest.raises(ValueError, match="built from snapshot"):
            load_ann_index(path, tiny_snapshot)

    def test_unknown_manifest_fields_rejected(self, yelp_retrieval,
                                              tmp_path):
        import json
        _, _, snapshot = yelp_retrieval
        build_ann_index(snapshot, tmp_path, nlist=8, seed=0)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["surprise"] = 1
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unknown fields"):
            load_ann_index(tmp_path, snapshot)

    def test_missing_directory_reported(self, yelp_retrieval, tmp_path):
        _, _, snapshot = yelp_retrieval
        with pytest.raises(FileNotFoundError):
            load_ann_index(tmp_path / "nope", snapshot)
        assert not is_ann_index(tmp_path / "nope")


class TestIndexDataValidation:
    def test_csr_consistency_enforced(self):
        centroids = np.zeros((2, 4))
        with pytest.raises(ValueError, match="span"):
            IVFIndexData(centroids, np.array([0, 1, 3]),
                         np.array([0, 1]), num_items=2)
        with pytest.raises(ValueError, match="cover"):
            IVFIndexData(centroids, np.array([0, 1, 2]),
                         np.array([0, 0]), num_items=2)
        with pytest.raises(ValueError, match="out-of-range"):
            IVFIndexData(centroids, np.array([0, 1, 2]),
                         np.array([0, 5]), num_items=2)

    def test_default_nprobe_bounds(self):
        centroids = np.zeros((2, 4))
        with pytest.raises(ValueError, match="default_nprobe"):
            IVFIndexData(centroids, np.array([0, 1, 2]),
                         np.array([0, 1]), num_items=2, default_nprobe=3)
