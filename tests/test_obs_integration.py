"""End-to-end observability: stats views, span/counter reconciliation.

Satellite 6 of the observability PR: the span trees captured under
``tracing()`` and the ``RuntimeStats`` counters are two projections of
the **same clock readings** (the instrumented call sites reuse the
span's ``start_s``/``end_s`` instead of reading the clock twice), so a
breakdown derived from spans must reconcile with ``breakdown()`` —
not just approximately, but up to float-summation order.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, tracing
from repro.serve import RecommendationService, ServingRuntime
from repro.serve.runtime import RuntimeConfig

pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture()
def fresh_registry():
    with use_registry(MetricsRegistry()) as registry:
        yield registry


@pytest.fixture()
def traced(monkeypatch):
    """Fresh enabled tracer installed as the process-global one."""
    import repro.obs.trace as trace_mod
    tracer = Tracer(keep=256)
    monkeypatch.setattr(trace_mod, "_TRACER", tracer)
    tracer.enabled = True
    return tracer


class TestServiceStatsView:
    def test_invariant_and_registry_visibility(self, tiny_mf_snapshot,
                                               fresh_registry):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=64)
        users = [0, 1, 2, 1, 0]
        service.recommend(users, k=5)
        service.recommend(users, k=5)
        stats = service.stats
        # the pinned pre-registry invariant still holds on the view
        assert stats.cache_hits + stats.cache_misses == stats.users_served
        assert stats.users_served == 10
        assert stats.requests == 2
        # ... and the same counts are visible through the registry
        labels = stats.obs_labels
        hits = fresh_registry.counter("serve.service.cache_hits",
                                      labels=labels)
        misses = fresh_registry.counter("serve.service.cache_misses",
                                        labels=labels)
        assert hits.value == stats.cache_hits
        assert misses.value == stats.cache_misses

    def test_two_services_get_distinct_series(self, tiny_mf_snapshot,
                                              fresh_registry):
        _, snapshot = tiny_mf_snapshot
        a = RecommendationService(snapshot, cache_size=0)
        b = RecommendationService(snapshot, cache_size=0)
        a.recommend([0, 1], k=5)
        assert a.stats.users_served == 2
        assert b.stats.users_served == 0
        assert a.stats.obs_labels != b.stats.obs_labels

    def test_disabled_registry_view_still_counts_nothing(
            self, tiny_mf_snapshot):
        from repro.obs.metrics import NULL_REGISTRY
        _, snapshot = tiny_mf_snapshot
        with use_registry(NULL_REGISTRY):
            service = RecommendationService(snapshot, cache_size=0)
            service.recommend([0, 1, 2], k=5)
            # null instruments: the view reads 0 but serving still works
            assert service.stats.users_served == 0
            assert service.stats.obs_labels is None


class TestServiceTrace:
    def test_recommend_root_span_with_sweep_child(self, tiny_mf_snapshot,
                                                  fresh_registry, traced):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=0)
        service.recommend([0, 1, 2], k=5)
        root = traced.last_trace()
        assert root.name == "serve.service.recommend"
        assert root.meta == {"users": 3, "k": 5}
        sweeps = root.find("serve.service.sweep")
        assert len(sweeps) == 1
        # the sweep span reuses the exact readings that fed sweep_s
        assert (sweeps[0].end_s - sweeps[0].start_s
                == service.stats.sweep_s)

    def test_cache_hit_request_has_no_sweep(self, tiny_mf_snapshot,
                                            fresh_registry, traced):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=64)
        service.recommend([0], k=5)
        service.recommend([0], k=5)  # pure cache hit
        root = traced.last_trace()
        assert root.name == "serve.service.recommend"
        assert root.find("serve.service.sweep") == []


class TestRuntimeReconciliation:
    def _drive(self, snapshot, n_requests=24):
        service = RecommendationService(snapshot, cache_size=0)
        config = RuntimeConfig(slo_ms=100.0, initial_batch=4, max_batch=8,
                               window=8)
        with ServingRuntime(service, config) as runtime:
            handles = [runtime.submit(i % snapshot.manifest.num_users, k=5)
                       for i in range(n_requests)]
            for handle in handles:
                handle.result(timeout=10.0)
            breakdown = runtime.breakdown()
            stats = runtime.stats
            return runtime, breakdown, stats

    def test_span_derived_service_time_reconciles_exactly(
            self, tiny_mf_snapshot, fresh_registry, traced):
        """sum(batch-span duration × batch size) == stats.service_s.

        Both sides accumulate the identical per-batch terms in the
        identical order from the identical clock readings, so the
        equality is float-exact, not approximate.
        """
        _, snapshot = tiny_mf_snapshot
        _runtime, _breakdown, stats = self._drive(snapshot)
        batch_spans = [root for root in traced.traces()
                       if root.name == "serve.runtime.batch"]
        assert batch_spans
        assert sum(span.meta["batch"] for span in batch_spans) \
            == stats.completed
        service_s = 0.0
        for span in batch_spans:
            service_s += (span.end_s - span.start_s) * span.meta["batch"]
        assert service_s == stats.service_s

    def test_queue_plus_service_equals_latency(self, tiny_mf_snapshot,
                                               fresh_registry, traced):
        """Per request, queue wait + in-batch service time *is* the
        end-to-end latency; summed, the counters must agree with the
        recorded latency samples (and both bound the wall clock)."""
        import time
        _, snapshot = tiny_mf_snapshot
        wall_start = time.perf_counter()
        runtime, breakdown, stats = self._drive(snapshot)
        wall_s = time.perf_counter() - wall_start
        latency_sum_s = 1e-3 * fresh_registry.histogram(
            "serve.runtime.latency_ms",
            labels=stats.obs_labels).sum
        assert stats.queue_s + stats.service_s \
            == pytest.approx(latency_sum_s, rel=1e-9)
        # means: queue_ms + service_ms is mean latency ≤ wall time
        assert breakdown["queue_ms"] + breakdown["service_ms"] \
            <= 1e3 * wall_s
        assert breakdown["queue_ms"] >= 0.0
        assert breakdown["service_ms"] > 0.0

    def test_refresh_attribution_matches_spans(self, tiny_mf_snapshot,
                                               fresh_registry, traced):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=16)
        with ServingRuntime(service) as runtime:
            runtime.submit(0, k=5).result(timeout=10.0)
            runtime.refresh(snapshot)
            runtime.submit(1, k=5).result(timeout=10.0)
            stats = runtime.stats
            breakdown = runtime.breakdown()
        refresh_spans = [root for root in traced.traces()
                         if root.name == "serve.runtime.refresh"]
        assert len(refresh_spans) == 1
        assert stats.refreshes == 1
        span = refresh_spans[0]
        assert span.end_s - span.start_s == stats.refresh_s
        assert breakdown["refresh_ms"] == pytest.approx(
            1e3 * stats.refresh_s)


class TestCLITrace:
    def test_recommend_trace_prints_span_tree(self, tiny_mf_snapshot,
                                              capsys):
        from repro.cli import main
        _, snapshot = tiny_mf_snapshot
        rc = main(["recommend", "--snapshot", str(snapshot.path),
                   "--users", "0,1", "--k", "5", "--trace"])
        assert rc == 0
        shown = capsys.readouterr().out
        assert "serve.service.recommend" in shown
        assert "serve.service.sweep" in shown
        assert "ms" in shown

    def test_metrics_verb_renders_prom(self, capsys):
        from repro.cli import main
        rc = main(["metrics", "--format", "prom"])
        assert rc == 0
        # the process registry has instruments from earlier tests; the
        # exposition itself must be well-formed either way
        from repro.obs.export import prom
        shown = capsys.readouterr().out
        assert prom.validate_exposition(shown) == []

    def test_metrics_verb_json_out(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "metrics.json"
        rc = main(["metrics", "--format", "json", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "bsl-obs-metrics/v1"
        assert isinstance(payload["metrics"], list)


class TestRouterTrace:
    def test_sharded_route_records_phase_spans(self, tmp_path,
                                               fresh_registry, traced):
        from repro.data import load_dataset
        from repro.losses import get_loss
        from repro.models import MF
        from repro.serve import (ShardedRecommendationService,
                                 export_sharded_snapshot,
                                 load_sharded_snapshot)
        from repro.train import TrainConfig, train_model

        dataset = load_dataset("tiny")
        model = MF(dataset.num_users, dataset.num_items, dim=8, rng=0)
        train_model(model, get_loss("bsl"), dataset,
                    TrainConfig(epochs=1, batch_size=64, n_negatives=4,
                                eval_every=0, patience=0, seed=0))
        export_sharded_snapshot(model, dataset, tmp_path, shards=2,
                                model_name="mf")
        sharded = load_sharded_snapshot(tmp_path)
        service = ShardedRecommendationService(sharded, cache_size=0,
                                               workers=0)
        service.recommend([0, 1, 2, 3], k=5)
        root = traced.last_trace()
        assert root.name == "serve.service.recommend"
        phases = {span.name for span, _ in root.walk()}
        assert {"serve.router.gather", "serve.router.score",
                "serve.router.merge"} <= phases
        # the recorded phase intervals are the stats' own readings
        gather = root.find("serve.router.gather")
        stats = service.router_stats
        assert sum(s.end_s - s.start_s for s in gather) \
            == pytest.approx(stats.gather_s, rel=1e-9)
