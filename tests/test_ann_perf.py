"""The ANN perf harness runs, keeps its schema, and the committed
``BENCH_ann.json`` records the acceptance operating point."""

import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro.experiments.perf import (ANN_SCHEMA, AnnPerfConfig, run_ann_suite,
                                    summarize_ann, time_index_topk,
                                    write_report)
from repro.serve import ExactTopKIndex

REPO_ROOT = pathlib.Path(__file__).parent.parent

pytestmark = pytest.mark.filterwarnings("ignore")


class TestTimer:
    def test_row_fields(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        index = ExactTopKIndex(snapshot)
        users = np.arange(32, dtype=np.int64)
        row = time_index_topk(index, users, batch_size=8, k=5, repeats=2)
        assert row["batch_size"] == 8 and row["k"] == 5
        assert row["users"] == 32 and row["repeats"] == 2
        assert row["total_s"] > 0 and row["users_per_s"] > 0
        assert row["best_pass_s"] <= row["total_s"]
        assert row["ms_per_batch"] == pytest.approx(
            1e3 * row["best_pass_s"] / 4)

    def test_invalid_args_rejected(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        index = ExactTopKIndex(snapshot)
        users = np.arange(4)
        with pytest.raises(ValueError):
            time_index_topk(index, users, batch_size=0)
        with pytest.raises(ValueError):
            time_index_topk(index, users, batch_size=2, repeats=0)


class TestSuitePayload:
    @pytest.fixture(scope="class")
    def payload(self):
        config = AnnPerfConfig(dataset="tiny", model="mf", loss="bpr",
                               epochs=2, dim=8, n_negatives=4, k=5,
                               nlists=(2, 4), nprobes=(1, 2),
                               batch_size=32, request_users=64, repeats=1,
                               pq_m=4, pq_ks=8)
        return run_ann_suite(config)

    def test_schema_header(self, payload):
        assert payload["schema"] == ANN_SCHEMA == "bsl-ann-bench/v1"
        assert payload["dataset"] == "tiny"
        assert payload["created_unix"] > 0
        assert len(payload["snapshot_version"]) == 16
        assert payload["config"]["nlists"] == [2, 4]
        assert payload["config"]["loss"] == "bpr"

    def test_covers_frontier_grid(self, payload):
        cells = {(r["nlist"], r["nprobe"]) for r in payload["results"]
                 if r["kind"] == "ann" and r["index"] == "ivf"}
        assert cells == {(2, 1), (2, 2), (4, 1), (4, 2)}
        assert any(r["kind"] == "ann" and r["index"] == "ivfpq"
                   for r in payload["results"])

    def test_baseline_row_present(self, payload):
        rows = [r for r in payload["results"] if r["kind"] == "ann_baseline"]
        assert len(rows) == 1
        assert rows[0]["index"] == "exact"
        assert rows[0]["users_per_s"] > 0

    def test_ann_rows_well_formed(self, payload):
        baseline = next(r for r in payload["results"]
                        if r["kind"] == "ann_baseline")
        for row in payload["results"]:
            if row["kind"] != "ann":
                continue
            assert 0.0 <= row["recall"] <= 1.0
            assert row["candidates_mean"] >= row["k"]
            assert row["users_per_s"] > 0
            assert row["speedup_vs_exact"] == pytest.approx(
                row["users_per_s"] / baseline["users_per_s"])
            assert row["index_bytes"] > 0

    def test_full_probe_rows_have_full_recall(self, payload):
        """nprobe == nlist scores every item: recall must be 1.0."""
        for row in payload["results"]:
            if (row["kind"] == "ann" and row["index"] == "ivf"
                    and row["nprobe"] == row["nlist"]):
                assert row["recall"] == 1.0

    def test_validator_accepts_payload(self, payload):
        spec = importlib.util.spec_from_file_location(
            "check_bench", REPO_ROOT / "scripts" / "check_bench.py")
        check_bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_bench)
        assert check_bench.check_payload("BENCH_ann.json", payload) == []

    def test_json_roundtrip(self, payload, tmp_path):
        out = tmp_path / "BENCH_ann.json"
        write_report(payload, out)
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(payload))

    def test_summarize_mentions_frontier(self, payload):
        text = summarize_ann(payload)
        assert "exact baseline" in text
        assert "nlist=" in text and "recall@5" in text and "users/s" in text


class TestCommittedBench:
    """The checked-in BENCH_ann.json carries the acceptance point."""

    @pytest.fixture(scope="class")
    def committed(self):
        return json.loads((REPO_ROOT / "BENCH_ann.json").read_text())

    def test_schema(self, committed):
        assert committed["schema"] == "bsl-ann-bench/v1"
        assert committed["dataset"] == "yelp2018-small"

    def test_operating_point_meets_acceptance(self, committed):
        """recall@10 >= 0.95 at >= 3x exact users/s, same stream."""
        baseline = next(r for r in committed["results"]
                        if r["kind"] == "ann_baseline")
        qualifying = [
            r for r in committed["results"]
            if r["kind"] == "ann" and r["index"] == "ivf"
            and r["k"] == 10 and r["recall"] >= 0.95
            and r["users_per_s"] >= 3.0 * baseline["users_per_s"]
            and r["batch_size"] == baseline["batch_size"]]
        assert qualifying, (
            "no committed IVF operating point with recall@10 >= 0.95 at "
            ">= 3x the exact index's users/s — regenerate with "
            "`make bench-ann` on an idle machine")


class TestCLI:
    def test_perf_serve_ann_only(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "bench_ann.json"
        rc = main(["perf-serve", "--dataset", "tiny", "--ann-only",
                   "--ann-nlists", "2,4", "--ann-nprobes", "1,2",
                   "--ann-epochs", "1", "--ann-out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == ANN_SCHEMA
        captured = capsys.readouterr().out
        assert "wrote" in captured
        # --ann-only must not have produced the serve payload
        assert "serve suite" not in captured
