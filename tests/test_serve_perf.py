"""The serve perf harness runs, reports sane numbers, keeps its schema."""

import json

import numpy as np
import pytest

from repro.experiments.perf import (SERVE_SCHEMA, ServePerfConfig,
                                    run_serve_suite, summarize_serve,
                                    time_recommend, topk_overlap,
                                    write_report)
from repro.serve import (ExactTopKIndex, QuantizedTopKIndex,
                         RecommendationService)

pytestmark = pytest.mark.filterwarnings("ignore")


class TestTimers:
    def test_serve_row_fields(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=0)
        users = np.arange(32, dtype=np.int64)
        row = time_recommend(service, users, batch_size=8, k=5, repeats=2)
        assert row["kind"] == "serve"
        assert row["index"] == "exact" and row["cache"] == "cold"
        assert row["batch_size"] == 8 and row["k"] == 5
        assert row["users"] == 32 and row["repeats"] == 2
        assert row["total_s"] > 0 and row["users_per_s"] > 0
        assert row["ms_per_batch"] == pytest.approx(
            1e3 * row["total_s"] / (2 * 4))
        assert row["cache_hit_rate"] == 0.0

    def test_warm_cache_hits(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=1024)
        users = np.arange(16, dtype=np.int64)
        row = time_recommend(service, users, batch_size=16, k=5, repeats=2,
                             label="warm")
        assert row["cache"] == "warm"
        assert row["cache_hit_rate"] > 0.5  # warmup pass filled the cache

    def test_invalid_args_rejected(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot)
        users = np.arange(4)
        with pytest.raises(ValueError):
            time_recommend(service, users, batch_size=0)
        with pytest.raises(ValueError):
            time_recommend(service, users, batch_size=2, repeats=0)

    def test_overlap_bounds(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        exact = ExactTopKIndex(snapshot)
        users = np.arange(snapshot.manifest.num_users, dtype=np.int64)
        assert topk_overlap(exact, exact, users, k=10) == 1.0
        quant = topk_overlap(exact, QuantizedTopKIndex(snapshot), users, k=10)
        assert 0.0 <= quant <= 1.0


class TestSuitePayload:
    @pytest.fixture(scope="class")
    def payload(self):
        config = ServePerfConfig(dataset="tiny", model="mf", loss="sl",
                                 epochs=1, dim=8, k=5, batch_sizes=(1, 8),
                                 repeats=1, request_users=64)
        return run_serve_suite(config)

    def test_schema_header(self, payload):
        assert payload["schema"] == SERVE_SCHEMA == "bsl-serve-bench/v1"
        assert payload["dataset"] == "tiny"
        assert payload["created_unix"] > 0
        assert len(payload["snapshot_version"]) == 16
        assert payload["config"]["batch_sizes"] == [1, 8]

    def test_covers_required_grid(self, payload):
        """Cold rows for every (index, batch size) plus one warm row each."""
        cold = {(r["index"], r["batch_size"]) for r in payload["results"]
                if r["kind"] == "serve" and r["cache"] == "cold"}
        assert cold == {(i, b) for i in ("exact", "quantized")
                        for b in (1, 8)}
        warm = {r["index"] for r in payload["results"]
                if r["kind"] == "serve" and r["cache"] == "warm"}
        assert warm == {"exact", "quantized"}

    def test_overlap_row(self, payload):
        rows = [r for r in payload["results"] if r["kind"] == "overlap"]
        assert len(rows) == 1
        assert 0.0 <= rows[0]["overlap_at_k"] <= 1.0
        assert rows[0]["table_bytes"] < rows[0]["exact_table_bytes"]

    def test_no_quantized_flag(self):
        config = ServePerfConfig(dataset="tiny", model="mf", loss="sl",
                                 epochs=1, dim=8, k=5, batch_sizes=(4,),
                                 repeats=1, request_users=16,
                                 include_quantized=False)
        payload = run_serve_suite(config)
        assert all(r["index"] == "exact" for r in payload["results"])

    def test_json_roundtrip(self, payload, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        write_report(payload, out)
        assert json.loads(out.read_text()) == json.loads(json.dumps(payload))

    def test_summarize_mentions_rows(self, payload):
        text = summarize_serve(payload)
        assert "overlap@5" in text
        assert "exact" in text and "quantized" in text
        assert "users/s" in text


class TestCLI:
    def test_perf_serve_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "bench.json"
        rc = main(["perf-serve", "--dataset", "tiny", "--model", "mf",
                   "--loss", "sl", "--epochs", "1", "--dim", "8",
                   "--batch-sizes", "4", "--repeats", "1",
                   "--request-users", "16", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == SERVE_SCHEMA
        assert "wrote" in capsys.readouterr().out
