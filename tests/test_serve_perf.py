"""The serve perf harness runs, reports sane numbers, keeps its schema."""

import json

import numpy as np
import pytest

from repro.experiments.perf import (SERVE_SCHEMA, ServePerfConfig,
                                    run_serve_suite, summarize_serve,
                                    time_recommend, time_recommend_sharded,
                                    topk_overlap, write_report)
from repro.serve import (ExactTopKIndex, QuantizedTopKIndex,
                         RecommendationService,
                         ShardedRecommendationService,
                         export_sharded_snapshot)

pytestmark = pytest.mark.filterwarnings("ignore")


class TestTimers:
    def test_serve_row_fields(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=0)
        users = np.arange(32, dtype=np.int64)
        row = time_recommend(service, users, batch_size=8, k=5, repeats=2)
        assert row["kind"] == "serve"
        assert row["index"] == "exact" and row["cache"] == "cold"
        assert row["batch_size"] == 8 and row["k"] == 5
        assert row["users"] == 32 and row["repeats"] == 2
        assert row["total_s"] > 0 and row["users_per_s"] > 0
        assert row["ms_per_batch"] == pytest.approx(
            1e3 * row["total_s"] / (2 * 4))
        assert row["cache_hit_rate"] == 0.0

    def test_warm_cache_hits(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=1024)
        users = np.arange(16, dtype=np.int64)
        row = time_recommend(service, users, batch_size=16, k=5, repeats=2,
                             label="warm")
        assert row["cache"] == "warm"
        assert row["cache_hit_rate"] > 0.5  # warmup pass filled the cache

    def test_invalid_args_rejected(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot)
        users = np.arange(4)
        with pytest.raises(ValueError):
            time_recommend(service, users, batch_size=0)
        with pytest.raises(ValueError):
            time_recommend(service, users, batch_size=2, repeats=0)

    def test_overlap_bounds(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        exact = ExactTopKIndex(snapshot)
        users = np.arange(snapshot.manifest.num_users, dtype=np.int64)
        assert topk_overlap(exact, exact, users, k=10) == 1.0
        quant = topk_overlap(exact, QuantizedTopKIndex(snapshot), users, k=10)
        assert 0.0 <= quant <= 1.0

    def test_sharded_row_fields(self, tiny_dataset, tiny_mf_snapshot,
                                tmp_path):
        model, _ = tiny_mf_snapshot
        sharded = export_sharded_snapshot(model, tiny_dataset, tmp_path,
                                          shards=2)
        service = ShardedRecommendationService(sharded, cache_size=0)
        users = np.arange(32, dtype=np.int64)
        row = time_recommend_sharded(service, users, batch_size=8, k=5,
                                     repeats=2, shards=2,
                                     partition_by="both",
                                     strategy="contiguous")
        assert row["kind"] == "serve_sharded"
        assert row["index"] == "sharded-exact"
        assert row["shards"] == 2 and row["partition_by"] == "both"
        assert row["users_per_s"] > 0 and row["total_s"] > 0
        assert row["merge_overhead_ms"] >= 0
        assert 0.0 <= row["merge_fraction"] < 1.0
        assert row["per_shard_bytes"] > 0
        with pytest.raises(ValueError):
            time_recommend_sharded(service, users, batch_size=0, shards=2)


class TestSuitePayload:
    @pytest.fixture(scope="class")
    def payload(self):
        config = ServePerfConfig(dataset="tiny", model="mf", loss="sl",
                                 epochs=1, dim=8, k=5, batch_sizes=(1, 8),
                                 repeats=1, request_users=64, shards=(2, 3))
        return run_serve_suite(config)

    def test_schema_header(self, payload):
        assert payload["schema"] == SERVE_SCHEMA == "bsl-serve-bench/v2"
        assert payload["dataset"] == "tiny"
        assert payload["created_unix"] > 0
        assert len(payload["snapshot_version"]) == 16
        assert payload["config"]["batch_sizes"] == [1, 8]
        assert payload["config"]["shards"] == [2, 3]

    def test_covers_required_grid(self, payload):
        """Cold rows for every (index, batch size) plus one warm row each."""
        cold = {(r["index"], r["batch_size"]) for r in payload["results"]
                if r["kind"] == "serve" and r["cache"] == "cold"}
        assert cold == {(i, b) for i in ("exact", "quantized")
                        for b in (1, 8)}
        warm = {r["index"] for r in payload["results"]
                if r["kind"] == "serve" and r["cache"] == "warm"}
        assert warm == {"exact", "quantized"}

    def test_sharded_section_covers_grid(self, payload):
        """One sharded row per (shards, index, batch size) cell."""
        cells = {(r["shards"], r["index"], r["batch_size"])
                 for r in payload["results"] if r["kind"] == "serve_sharded"}
        assert cells == {(n, i, b) for n in (2, 3)
                         for i in ("sharded-exact", "sharded-quantized")
                         for b in (1, 8)}
        for row in payload["results"]:
            if row["kind"] == "serve_sharded":
                assert row["per_shard_bytes"] > 0
                assert np.isfinite(row["merge_overhead_ms"])
                assert 0.0 <= row["merge_fraction"] <= 1.0

    def test_validator_accepts_payload(self, payload, tmp_path):
        """The suite's own output passes scripts/check_bench.py."""
        import importlib.util
        import pathlib
        spec = importlib.util.spec_from_file_location(
            "check_bench", pathlib.Path(__file__).parent.parent
            / "scripts" / "check_bench.py")
        check_bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_bench)
        assert check_bench.check_payload("BENCH_serve.json", payload) == []

    def test_overlap_row(self, payload):
        rows = [r for r in payload["results"] if r["kind"] == "overlap"]
        assert len(rows) == 1
        assert 0.0 <= rows[0]["overlap_at_k"] <= 1.0
        assert rows[0]["table_bytes"] < rows[0]["exact_table_bytes"]

    def test_no_quantized_flag(self):
        """include_quantized=False drops int8 rows, sharded ones too."""
        config = ServePerfConfig(dataset="tiny", model="mf", loss="sl",
                                 epochs=1, dim=8, k=5, batch_sizes=(4,),
                                 repeats=1, request_users=16, shards=(2,),
                                 include_quantized=False)
        payload = run_serve_suite(config)
        assert all("quantized" not in r["index"] for r in payload["results"])
        assert any(r["kind"] == "serve_sharded" for r in payload["results"])

    def test_empty_shards_skips_sharded_section(self):
        config = ServePerfConfig(dataset="tiny", model="mf", loss="sl",
                                 epochs=1, dim=8, k=5, batch_sizes=(4,),
                                 repeats=1, request_users=16, shards=())
        payload = run_serve_suite(config)
        assert all(r["kind"] != "serve_sharded" for r in payload["results"])

    def test_json_roundtrip(self, payload, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        write_report(payload, out)
        assert json.loads(out.read_text()) == json.loads(json.dumps(payload))

    def test_summarize_mentions_rows(self, payload):
        text = summarize_serve(payload)
        assert "overlap@5" in text
        assert "exact" in text and "quantized" in text
        assert "users/s" in text


class TestCLI:
    def test_perf_serve_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "bench.json"
        rc = main(["perf-serve", "--dataset", "tiny", "--model", "mf",
                   "--loss", "sl", "--epochs", "1", "--dim", "8",
                   "--batch-sizes", "4", "--repeats", "1",
                   "--request-users", "16", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == SERVE_SCHEMA
        assert "wrote" in capsys.readouterr().out
