"""Out-of-core training/export byte-parity against the in-memory path.

The safety contract of the million-scale engine: routing data through
mmap shards and mmap parameter tables must change **nothing** about the
numbers.  These tests pin the three links of that chain —

* chunked mmap Xavier init == one-shot ``MF(rng=seed)`` init,
* a streamed epoch over a :class:`ShardedInteractionSource` into an
  mmap-backed model == the same epoch in memory (parameter bytes, loss
  histories, and the on-disk table bytes after ``flush_model``),
* a sharded export straight from mmap tables + source ==
  ``export_sharded_snapshot`` of the equivalent dense model/dataset,
  file for file.
"""

import pathlib

import numpy as np
import pytest

from repro.data import load_dataset, write_interaction_shards
from repro.data.source import ShardedInteractionSource
from repro.losses import get_loss
from repro.models import MF
from repro.serve import export_sharded_snapshot, export_sharded_source_snapshot
from repro.train import (TrainConfig, Trainer, flush_model,
                         init_mmap_mf_tables, open_mmap_mf)
from repro.train.outofcore import ITEM_TABLE, USER_TABLE


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("yelp2018-small")


@pytest.fixture(scope="module")
def shard_dir(dataset, tmp_path_factory):
    out = tmp_path_factory.mktemp("ooc") / "shards"
    write_interaction_shards(dataset, out, block_rows=2048)
    return out


def _train_config(**overrides):
    base = dict(epochs=2, batch_size=512, learning_rate=5e-3,
                n_negatives=8, grad_mode="sparse", seed=11)
    base.update(overrides)
    return TrainConfig(**base)


def _table_bytes(model):
    return (np.asarray(model.user_embedding.weight.data).tobytes(),
            np.asarray(model.item_embedding.weight.data).tobytes())


class TestMmapInitParity:
    def test_chunked_init_matches_one_shot(self, tmp_path):
        table_dir = init_mmap_mf_tables(tmp_path / "t", 257, 181, 12,
                                        rng=42, chunk_rows=50)
        reference = MF(257, 181, 12, rng=42)
        mmapped = open_mmap_mf(table_dir, mode="r")
        assert _table_bytes(mmapped) == _table_bytes(reference)

    def test_chunk_size_is_irrelevant(self, tmp_path):
        a = open_mmap_mf(init_mmap_mf_tables(tmp_path / "a", 100, 90, 8,
                                             rng=7, chunk_rows=13), mode="r")
        b = open_mmap_mf(init_mmap_mf_tables(tmp_path / "b", 100, 90, 8,
                                             rng=7, chunk_rows=1000), mode="r")
        assert _table_bytes(a) == _table_bytes(b)


class TestStreamedTrainingParity:
    def _run_in_memory(self, dataset, cfg):
        model = MF(dataset.num_users, dataset.num_items, 16, rng=5)
        return Trainer(model, get_loss("bsl", tau1=0.2, tau2=0.1),
                       dataset, cfg).fit()

    def _run_out_of_core(self, shard_dir, cfg, tmp_path):
        source = ShardedInteractionSource(shard_dir)
        table_dir = init_mmap_mf_tables(tmp_path / "tables",
                                        source.num_users, source.num_items,
                                        16, rng=5)
        model = open_mmap_mf(table_dir)
        result = Trainer(model, get_loss("bsl", tau1=0.2, tau2=0.1),
                         source, cfg).fit()
        flush_model(model)
        return result, table_dir

    def test_streamed_epoch_is_bit_identical(self, dataset, shard_dir,
                                             tmp_path):
        cfg = _train_config()
        dense = self._run_in_memory(dataset, cfg)
        streamed, table_dir = self._run_out_of_core(shard_dir, cfg, tmp_path)
        assert streamed.loss_history == dense.loss_history
        assert _table_bytes(streamed.model) == _table_bytes(dense.model)
        # ... and the bytes actually on disk agree too (flush_model worked)
        want_users, want_items = _table_bytes(dense.model)
        disk_users = np.load(table_dir / USER_TABLE)
        disk_items = np.load(table_dir / ITEM_TABLE)
        assert disk_users.tobytes() == want_users
        assert disk_items.tobytes() == want_items

    def test_rnoise_parity(self, dataset, shard_dir, tmp_path):
        cfg = _train_config(epochs=1, rnoise=0.1)
        dense = self._run_in_memory(dataset, cfg)
        streamed, _ = self._run_out_of_core(shard_dir, cfg, tmp_path)
        assert streamed.loss_history == dense.loss_history
        assert _table_bytes(streamed.model) == _table_bytes(dense.model)


def _tree_bytes(root: pathlib.Path) -> dict[str, bytes]:
    return {str(p.relative_to(root)): p.read_bytes()
            for p in sorted(root.rglob("*")) if p.is_file()}


class TestExportParity:
    @pytest.fixture(scope="class")
    def trained(self, dataset):
        model = MF(dataset.num_users, dataset.num_items, 8, rng=3)
        Trainer(model, get_loss("bsl", tau1=0.2, tau2=0.1), dataset,
                _train_config(epochs=1)).fit()
        return model

    @pytest.mark.parametrize("partition_by,strategy", [
        ("both", "contiguous"),
        ("both", "hash"),
        ("user", "contiguous"),
    ])
    def test_source_export_matches_dense_export(self, dataset, shard_dir,
                                                trained, tmp_path,
                                                partition_by, strategy):
        dense_dir = tmp_path / "dense"
        ooc_dir = tmp_path / "ooc"
        export_sharded_snapshot(trained, dataset, dense_dir, shards=3,
                                partition_by=partition_by, strategy=strategy,
                                created_unix=1_700_000_000.0)
        export_sharded_source_snapshot(
            np.asarray(trained.user_embedding.weight.data),
            np.asarray(trained.item_embedding.weight.data),
            ShardedInteractionSource(shard_dir), ooc_dir, shards=3,
            partition_by=partition_by, strategy=strategy,
            created_unix=1_700_000_000.0)
        dense_files = _tree_bytes(dense_dir)
        ooc_files = _tree_bytes(ooc_dir)
        assert sorted(dense_files) == sorted(ooc_files)
        for name in dense_files:
            assert dense_files[name] == ooc_files[name], name

    def test_size_mismatch_rejected(self, shard_dir, tmp_path):
        source = ShardedInteractionSource(shard_dir)
        with pytest.raises(ValueError):
            export_sharded_source_snapshot(
                np.zeros((3, 4)), np.zeros((source.num_items, 4)),
                source, tmp_path / "bad", shards=2)
