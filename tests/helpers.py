"""Shared test helpers (gradient checking)."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for idx in range(flat.size):
        orig = flat[idx]
        flat[idx] = orig + eps
        f_plus = fn(x)
        flat[idx] = orig - eps
        f_minus = fn(x)
        flat[idx] = orig
        gflat[idx] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_gradient(tensor_fn, numpy_fn, shape, rng, atol=1e-5,
                   low=-2.0, high=2.0):
    """Compare autograd vs finite differences for one op.

    ``tensor_fn(Tensor) -> scalar Tensor`` and ``numpy_fn(ndarray) ->
    float`` must compute the same function.
    """
    x = rng.uniform(low, high, size=shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = tensor_fn(t)
    assert out.size == 1, "gradcheck target must be scalar"
    out.backward()
    expected = numeric_gradient(lambda arr: float(numpy_fn(arr)), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol,
                               err_msg="autograd gradient mismatch")
    np.testing.assert_allclose(out.item(), float(numpy_fn(x)), atol=1e-8)
