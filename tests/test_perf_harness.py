"""The perf harness runs, reports sane numbers, and keeps its schema."""

import json

import pytest

from repro.experiments.perf import (PerfConfig, SCHEMA, run_perf_suite,
                                    summarize, time_eval, time_train_steps,
                                    write_report)

pytestmark = pytest.mark.filterwarnings("ignore")

_FAST = dict(steps=2, warmup=1, dim=8, batch_size=64, n_negatives=8)


class TestTimers:
    def test_train_row_fields(self, tiny_dataset):
        row = time_train_steps("mf", "sl", tiny_dataset, **_FAST)
        assert row["kind"] == "train_step"
        assert row["model"] == "mf" and row["loss"] == "sl"
        assert row["fused"] is True and row["cache_propagation"] is True
        assert row["steps"] == 2
        assert row["total_s"] > 0
        assert row["ms_per_step"] == pytest.approx(
            1e3 * row["total_s"] / row["steps"])
        assert row["steps_per_s"] > 0

    def test_eval_row_fields(self, tiny_dataset):
        row = time_eval("mf", tiny_dataset, repeats=2, dim=8)
        assert row["kind"] == "eval"
        assert row["chunked"] is True
        assert row["users"] > 0
        assert row["users_per_s"] > 0

    def test_reference_flags_recorded(self, tiny_dataset):
        row = time_train_steps("lightgcn", "bsl", tiny_dataset,
                               fused=False, cache_propagation=False, **_FAST)
        assert row["fused"] is False and row["cache_propagation"] is False


class TestSuitePayload:
    @pytest.fixture(scope="class")
    def payload(self):
        config = PerfConfig(dataset="tiny",
                            models=("mf", "lightgcn", "simgcl"),
                            losses=("sl", "bsl"),
                            eval_repeats=1, include_reference=True, **_FAST)
        return run_perf_suite(config)

    def test_schema_header(self, payload):
        assert payload["schema"] == SCHEMA == "bsl-fastpath-bench/v1"
        assert payload["dataset"] == "tiny"
        assert payload["created_unix"] > 0
        assert payload["config"]["models"] == ["mf", "lightgcn", "simgcl"]
        assert payload["config"]["losses"] == ["sl", "bsl"]

    def test_covers_required_grid(self, payload):
        """Acceptance: train rows for {mf, lightgcn, simgcl} x {sl, bsl}."""
        train = {(r["model"], r["loss"]) for r in payload["results"]
                 if r["kind"] == "train_step" and r["fused"]}
        assert train == {(m, l) for m in ("mf", "lightgcn", "simgcl")
                         for l in ("sl", "bsl")}
        evals = {r["model"] for r in payload["results"]
                 if r["kind"] == "eval" and r["chunked"]}
        assert evals == {"mf", "lightgcn", "simgcl"}

    def test_reference_rows_present(self, payload):
        assert any(r["kind"] == "train_step" and not r["fused"]
                   for r in payload["results"])
        assert any(r["kind"] == "eval" and not r["chunked"]
                   for r in payload["results"])

    def test_json_roundtrip(self, payload, tmp_path):
        out = tmp_path / "BENCH_fastpath.json"
        write_report(payload, out)
        loaded = json.loads(out.read_text())
        assert loaded == json.loads(json.dumps(payload))
        assert loaded["schema"] == SCHEMA

    def test_summarize_mentions_every_cell(self, payload):
        text = summarize(payload)
        for model in ("mf", "lightgcn", "simgcl"):
            assert model in text
        assert "ms/step" in text and "users/s" in text


class TestCLI:
    def test_perf_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "bench.json"
        rc = main(["perf", "--dataset", "tiny", "--models", "mf",
                   "--losses", "sl", "--steps", "2", "--warmup", "1",
                   "--dim", "8", "--batch-size", "64", "--negatives", "8",
                   "--eval-repeats", "1", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == SCHEMA
        captured = capsys.readouterr().out
        assert "wrote" in captured
