"""Gradchecks for the fused loss kernels against the compositional oracle.

Enforces the fused-kernel contract (see the :mod:`repro.tensor` module
docstring): every fused primitive must agree with its compositional
reference in value to numerical precision and in gradient to <= 1e-6
against central finite differences, on random shapes including
broadcast-adjacent and single-row edge cases.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, ops
from repro.tensor import functional as F

from tests.helpers import numeric_gradient


@pytest.fixture()
def rng():
    return np.random.default_rng(20260728)


def _grad_pair(fused_fn, oracle_fn, arrays):
    """Backprop both paths on copies of ``arrays``; return grad lists."""
    fused_inputs = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    oracle_inputs = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    fused_out = fused_fn(*fused_inputs)
    oracle_out = oracle_fn(*oracle_inputs)
    assert fused_out.shape == oracle_out.shape
    np.testing.assert_allclose(fused_out.data, oracle_out.data,
                               rtol=1e-10, atol=1e-12,
                               err_msg="fused forward diverged from oracle")
    fused_out.sum().backward()
    oracle_out.sum().backward()
    for f_in, o_in in zip(fused_inputs, oracle_inputs):
        np.testing.assert_allclose(f_in.grad, o_in.grad,
                                   rtol=1e-9, atol=1e-12,
                                   err_msg="fused gradient diverged from oracle")
    return fused_inputs


def _fdcheck(scalar_fused_fn, numpy_fn, arrays, atol=1e-6):
    """Finite-difference check of a scalar-output fused kernel."""
    inputs = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = scalar_fused_fn(*inputs)
    assert out.size == 1
    out.backward()
    for i, a in enumerate(arrays):
        def partial(x):
            args = [arr.copy() for arr in arrays]
            args[i] = x
            return float(numpy_fn(*args))
        expected = numeric_gradient(partial, a.copy())
        np.testing.assert_allclose(inputs[i].grad, expected, atol=atol,
                                   err_msg=f"finite-diff mismatch on arg {i}")


class TestFusedLogMeanExp:
    @pytest.mark.parametrize("shape,axis", [
        ((5, 7), 1), ((5, 7), 0), ((1, 9), 1), ((4,), 0), ((3, 1), 1),
        ((2, 3, 4), 2), ((6, 6), None),
    ])
    def test_matches_oracle(self, rng, shape, axis):
        x = rng.normal(size=shape)
        _grad_pair(lambda t: F.fused_logmeanexp(t, axis=axis),
                   lambda t: F.logmeanexp(t, axis=axis), [x])

    @pytest.mark.parametrize("keepdims", [True, False])
    def test_keepdims(self, rng, keepdims):
        x = rng.normal(size=(4, 5))
        _grad_pair(lambda t: F.fused_logmeanexp(t, axis=1, keepdims=keepdims),
                   lambda t: F.logmeanexp(t, axis=1, keepdims=keepdims), [x])

    def test_finite_difference(self, rng):
        x = rng.normal(size=(3, 6))
        _fdcheck(lambda t: F.fused_logmeanexp(t, axis=1).sum(),
                 lambda a: (np.log(np.mean(np.exp(a), axis=1))).sum(), [x])

    def test_large_logits_stable(self):
        x = Tensor(np.array([[1000.0, 999.0], [-1000.0, -1001.0]]),
                   requires_grad=True)
        out = F.fused_logmeanexp(x, axis=1)
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert np.all(np.isfinite(x.grad))


class TestFusedSoftmaxLoss:
    @pytest.mark.parametrize("shape", [(8, 16), (1, 4), (5, 1), (64, 128)])
    @pytest.mark.parametrize("include_positive", [False, True])
    @pytest.mark.parametrize("scale", [False, True])
    def test_matches_oracle(self, rng, shape, include_positive, scale):
        from repro.losses import SoftmaxLoss
        p = rng.normal(size=shape[0]) * 0.5
        n = rng.normal(size=shape) * 0.5
        fused = SoftmaxLoss(tau=0.17, include_positive=include_positive,
                            scale_by_temperature=scale, fused=True)
        oracle = SoftmaxLoss(tau=0.17, include_positive=include_positive,
                             scale_by_temperature=scale, fused=False)
        _grad_pair(lambda a, b: fused(a, b), lambda a, b: oracle(a, b),
                   [p, n])

    def test_finite_difference(self, rng):
        p = rng.normal(size=4) * 0.5
        n = rng.normal(size=(4, 6)) * 0.5
        tau = 0.3

        def np_loss(pv, nv):
            logits = nv / tau
            m = logits.max(axis=1, keepdims=True)
            lse = np.log(np.exp(logits - m).sum(axis=1)) + m[:, 0]
            return np.mean(-pv / tau + lse)

        _fdcheck(lambda a, b: F.fused_softmax_loss(a, b, tau), np_loss,
                 [p, n])

    def test_single_row_single_negative(self, rng):
        from repro.losses import SoftmaxLoss
        p = rng.normal(size=1)
        n = rng.normal(size=(1, 1))
        fused = SoftmaxLoss(tau=0.2, fused=True)
        oracle = SoftmaxLoss(tau=0.2, fused=False)
        _grad_pair(lambda a, b: fused(a, b), lambda a, b: oracle(a, b),
                   [p, n])


class TestFusedBSLLoss:
    @pytest.mark.parametrize("shape", [(8, 16), (1, 4), (5, 1), (64, 128)])
    @pytest.mark.parametrize("pooling", ["mean", "log_mean_exp"])
    def test_matches_oracle(self, rng, shape, pooling):
        from repro.losses import BSLLoss
        p = rng.normal(size=shape[0]) * 0.5
        n = rng.normal(size=shape) * 0.5
        fused = BSLLoss(tau1=0.3, tau2=0.2, pooling=pooling, fused=True)
        oracle = BSLLoss(tau1=0.3, tau2=0.2, pooling=pooling, fused=False)
        _grad_pair(lambda a, b: fused(a, b), lambda a, b: oracle(a, b),
                   [p, n])

    @pytest.mark.parametrize("pooling", ["mean", "log_mean_exp"])
    def test_finite_difference(self, rng, pooling):
        p = rng.normal(size=5) * 0.5
        n = rng.normal(size=(5, 7)) * 0.5
        t1, t2 = 0.25, 0.4

        def np_loss(pv, nv):
            lme = np.log(np.mean(np.exp(nv / t2), axis=1))
            if pooling == "mean":
                return np.mean(-pv / t1 + (t1 / t2) * lme)
            margin = (pv - t2 * lme) / t1
            return -t1 * np.log(np.mean(np.exp(margin)))

        _fdcheck(
            lambda a, b: F.fused_bsl_loss(a, b, t1, t2, pooling=pooling),
            np_loss, [p, n])

    def test_rejects_unknown_pooling(self, rng):
        p = Tensor(rng.normal(size=2))
        n = Tensor(rng.normal(size=(2, 3)))
        with pytest.raises(ValueError):
            F.fused_bsl_loss(p, n, 0.2, 0.2, pooling="median")


class TestFusedInfoNCE:
    @pytest.mark.parametrize("shape", [(6, 4), (1, 3), (12, 8)])
    def test_matches_oracle(self, rng, shape):
        from repro.losses import InfoNCELoss
        z1 = rng.normal(size=shape)
        z2 = rng.normal(size=shape)
        fused = InfoNCELoss(tau=0.2, fused=True)
        oracle = InfoNCELoss(tau=0.2, fused=False)
        _grad_pair(lambda a, b: fused(a, b), lambda a, b: oracle(a, b),
                   [z1, z2])

    def test_finite_difference(self, rng):
        z1 = rng.normal(size=(4, 3))
        z2 = rng.normal(size=(4, 3))
        tau, eps = 0.5, 1e-12

        def np_loss(a, b):
            an = a / np.sqrt((a * a).sum(axis=1, keepdims=True) + eps)
            bn = b / np.sqrt((b * b).sum(axis=1, keepdims=True) + eps)
            sims = an @ bn.T / tau
            m = sims.max(axis=1, keepdims=True)
            lse = np.log(np.exp(sims - m).sum(axis=1)) + m[:, 0]
            return np.mean(-np.diag(sims) + lse)

        _fdcheck(lambda a, b: F.fused_infonce_loss(a, b, tau), np_loss,
                 [z1, z2])

    def test_rejects_mismatched_views(self, rng):
        with pytest.raises(ValueError):
            F.fused_infonce_loss(Tensor(np.zeros((3, 2))),
                                 Tensor(np.zeros((4, 2))), 0.2)


class TestFusedGraphShape:
    def test_fused_builds_single_node(self, rng):
        """The whole point: one graph node instead of an op chain."""
        p = Tensor(rng.normal(size=4), requires_grad=True)
        n = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        out = F.fused_bsl_loss(p, n, 0.2, 0.2)
        assert out._parents == (p, n)

        from repro.losses import BSLLoss
        comp = BSLLoss(fused=False)(
            Tensor(p.data, requires_grad=True),
            Tensor(n.data, requires_grad=True))
        # The compositional path interposes intermediate nodes.
        assert len(comp._parents) > 0
        assert all(isinstance(par, Tensor) for par in comp._parents)

    def test_no_graph_recorded_under_no_grad(self, rng):
        from repro.tensor import no_grad
        p = Tensor(rng.normal(size=4), requires_grad=True)
        n = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        with no_grad():
            out = F.fused_softmax_loss(p, n, 0.2)
        assert out._parents == ()
