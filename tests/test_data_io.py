"""Interaction-file I/O (LightGCN format and plain pairs)."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.io import (load_lightgcn_format, read_adjacency_lists,
                           read_pairs, save_lightgcn_format)


class TestReadPairs:
    def test_reads_whitespace_pairs(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("0 3\n1 2\n\n2 0\n")
        pairs = read_pairs(path)
        np.testing.assert_array_equal(pairs, [[0, 3], [1, 2], [2, 0]])

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "pairs.tsv"
        path.write_text("0\t3\n1\t2\n")
        pairs = read_pairs(path, delimiter="\t")
        np.testing.assert_array_equal(pairs, [[0, 3], [1, 2]])

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n7\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            read_pairs(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        assert read_pairs(path).shape == (0, 2)


class TestAdjacencyLists:
    def test_expands_lines(self, tmp_path):
        path = tmp_path / "train.txt"
        path.write_text("0 1 2 3\n1 4\n")
        pairs = read_adjacency_lists(path)
        np.testing.assert_array_equal(
            pairs, [[0, 1], [0, 2], [0, 3], [1, 4]])

    def test_user_with_no_items_skipped(self, tmp_path):
        path = tmp_path / "train.txt"
        path.write_text("0 1\n1\n2 3\n")
        pairs = read_adjacency_lists(path)
        np.testing.assert_array_equal(pairs, [[0, 1], [2, 3]])


class TestRoundtrip:
    def test_save_then_load_preserves_dataset(self, tiny_dataset, tmp_path):
        train_path = tmp_path / "train.txt"
        test_path = tmp_path / "test.txt"
        save_lightgcn_format(tiny_dataset, train_path, test_path)
        loaded = load_lightgcn_format(train_path, test_path, name="rt")
        assert loaded.num_train == tiny_dataset.num_train
        assert loaded.num_test == tiny_dataset.num_test
        original = {(int(u), int(i)) for u, i in tiny_dataset.train_pairs}
        roundtrip = {(int(u), int(i)) for u, i in loaded.train_pairs}
        assert original == roundtrip

    def test_entity_counts_inferred(self, tmp_path):
        train = tmp_path / "train.txt"
        test = tmp_path / "test.txt"
        train.write_text("0 1\n5 2\n")
        test.write_text("0 9\n")
        ds = load_lightgcn_format(train, test)
        assert ds.num_users == 6
        assert ds.num_items == 10

    def test_empty_train_rejected(self, tmp_path):
        train = tmp_path / "train.txt"
        test = tmp_path / "test.txt"
        train.write_text("")
        test.write_text("0 1\n")
        with pytest.raises(ValueError):
            load_lightgcn_format(train, test)

    def test_loaded_dataset_trains(self, tiny_dataset, tmp_path):
        from repro.losses import get_loss
        from repro.models import MF
        from repro.train import TrainConfig, train_model
        train_path = tmp_path / "train.txt"
        test_path = tmp_path / "test.txt"
        save_lightgcn_format(tiny_dataset, train_path, test_path)
        loaded = load_lightgcn_format(train_path, test_path)
        model = MF(loaded.num_users, loaded.num_items, dim=8, rng=0)
        result = train_model(model, get_loss("sl", tau=0.3), loaded,
                             TrainConfig(epochs=2, batch_size=256,
                                         n_negatives=8, seed=0))
        assert np.isfinite(result.final_loss)
