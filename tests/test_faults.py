"""Chaos harness + resilient serving: determinism, breakers, soak.

The acceptance contract of the fault-tolerant serving path:

* the :class:`~repro.serve.faults.FaultPlan` schedule is a pure
  function of its seed — same seed, same faults, bit-for-bit, however
  threads interleave;
* under injected faults **every request resolves** — a full result, an
  explicitly degraded result, or a typed error — never a hang and
  never a silently-wrong top-k;
* a corrupted snapshot cannot be swapped in: ``refresh`` verifies,
  quarantines the damage, and keeps serving the last-good version;
* the committed ``BENCH_faults.json`` keeps showing that hedging +
  breakers hold availability at the one-slow-shard level.
"""

import json
import pathlib
import threading

import numpy as np
import pytest

from repro.losses import get_loss
from repro.models import get_model
from repro.serve import (BreakerConfig, CircuitBreaker, ExactTopKIndex,
                         FaultEvent, FaultPlan, FaultSpec, FaultyService,
                         FaultyShardIndex, InjectedFault, ManualClock,
                         PartialResultError, RecommendationService,
                         ResilienceConfig, RuntimeConfig,
                         ServingRuntime, ShardedRecommendationService,
                         ShardedTopKIndex, SnapshotIntegrityError,
                         corrupt_array_file, export_sharded_snapshot,
                         export_snapshot, load_sharded_snapshot,
                         load_snapshot)
from repro.serve.faults import _draw
from repro.serve.runtime import DeadlineExceeded, OverloadError
from repro.train import TrainConfig, train_model

REPO_ROOT = pathlib.Path(__file__).parent.parent

SHARDS = 3


@pytest.fixture(scope="module")
def sharded_cell(tiny_dataset, tmp_path_factory):
    """(dataset, unsharded snapshot, sharded snapshot) on 'tiny'."""
    model = get_model("mf", tiny_dataset, dim=8, rng=0)
    config = TrainConfig(epochs=2, batch_size=64, n_negatives=8,
                         eval_every=0, patience=0, seed=0)
    train_model(model, get_loss("bsl"), tiny_dataset, config)
    flat_dir = tmp_path_factory.mktemp("faults-flat")
    snapshot = export_snapshot(model, tiny_dataset, flat_dir,
                               model_name="mf")
    sharded_dir = tmp_path_factory.mktemp("faults-sharded")
    export_sharded_snapshot(model, tiny_dataset, sharded_dir,
                            shards=SHARDS, partition_by="item",
                            model_name="mf")
    sharded = load_sharded_snapshot(sharded_dir)
    return tiny_dataset, snapshot, sharded


def make_router(sharded, resilience, *, faulty_shard=None, plan=None,
                workers=None):
    """Resilient router with shard ``faulty_shard`` wrapped in ``plan``."""
    router = ShardedTopKIndex(sharded, kind="exact", chunk_users=64,
                              workers=workers, resilience=resilience)
    if faulty_shard is not None:
        router.shard_indexes[faulty_shard] = FaultyShardIndex(
            router.shard_indexes[faulty_shard], plan,
            f"shard:{faulty_shard}")
    return router


# ----------------------------------------------------------------------
# FaultPlan: the deterministic schedule
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_decisions_are_pure_functions_of_seed(self):
        spec = {"shard": [FaultSpec("latency", 0.3, latency_ms=0.0),
                          FaultSpec("error", 0.2)]}
        a, b = FaultPlan(7, spec), FaultPlan(7, spec)
        for key in range(200):
            for point in ("shard:0", "shard:1", "shard:2"):
                assert a.decide(point, key) == b.decide(point, key)

    def test_different_seeds_differ(self):
        spec = {"svc": FaultSpec("error", 0.5)}
        a, b = FaultPlan(1, spec), FaultPlan(2, spec)
        decisions_a = [bool(a.decide("svc", k)) for k in range(64)]
        decisions_b = [bool(b.decide("svc", k)) for k in range(64)]
        assert decisions_a != decisions_b

    def test_rate_bounds(self):
        never = FaultPlan(0, {"p": FaultSpec("error", 0.0)})
        always = FaultPlan(0, {"p": FaultSpec("error", 1.0)})
        assert all(not never.decide("p", k) for k in range(50))
        assert all(always.decide("p", k) for k in range(50))

    def test_prefix_matching_and_exact_precedence(self):
        plan = FaultPlan(0, {"shard": FaultSpec("error", 1.0),
                             "shard:1": FaultSpec("latency", 1.0,
                                                  latency_ms=0.0)})
        # Exact point wins over the prefix family.
        assert [e.kind for e in plan.decide("shard:1", 0)] == ["latency"]
        # Unlisted members of the family inherit the prefix spec.
        assert [e.kind for e in plan.decide("shard:9", 0)] == ["error"]
        assert plan.decide("other:0", 0) == []

    def test_fire_raises_injected_fault_and_records(self):
        plan = FaultPlan(0, {"p": FaultSpec("error", 1.0)})
        with pytest.raises(InjectedFault):
            plan.fire("p", 3)
        assert plan.events() == (FaultEvent("p", 3, "error", 0.0),)
        plan.reset_events()
        assert plan.events() == ()

    def test_event_log_replays_identically(self):
        spec = {"shard": [FaultSpec("latency", 0.4, latency_ms=0.0),
                          FaultSpec("error", 0.15)]}

        def run(plan):
            for key in range(120):
                for point in ("shard:0", "shard:1"):
                    try:
                        plan.fire(point, key)
                    except InjectedFault:
                        pass
            return plan.events()

        assert run(FaultPlan(42, spec)) == run(FaultPlan(42, spec))

    def test_concurrent_firing_same_event_set(self):
        spec = {"p": FaultSpec("error", 0.5)}
        serial = FaultPlan(9, spec)
        for key in range(200):
            try:
                serial.fire("p", key)
            except InjectedFault:
                pass
        threaded = FaultPlan(9, spec)

        def worker(keys):
            for key in keys:
                try:
                    threaded.fire("p", key)
                except InjectedFault:
                    pass

        threads = [threading.Thread(target=worker,
                                    args=(range(i, 200, 4),))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert threaded.events() == serial.events()

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("nope", 0.5)
        with pytest.raises(ValueError):
            FaultSpec("error", 1.5)
        with pytest.raises(ValueError):
            FaultSpec("latency", 0.5, latency_ms=-1.0)

    def test_draw_is_uniformish(self):
        draws = [_draw(0, "p", k, 0) for k in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert abs(np.mean(draws) - 0.5) < 0.05


class TestCorruptArrayFile:
    def test_damage_is_deterministic_and_past_header(self, tmp_path):
        data = np.arange(256, dtype=np.float64)
        for name in ("a.npy", "b.npy"):
            np.save(tmp_path / name, data)
        corrupt_array_file(tmp_path / "a.npy", seed=3)
        corrupt_array_file(tmp_path / "b.npy", seed=3)
        damaged_a = (tmp_path / "a.npy").read_bytes()
        assert damaged_a == (tmp_path / "b.npy").read_bytes()
        clean = np.save(tmp_path / "c.npy", data) or \
            (tmp_path / "c.npy").read_bytes()
        assert damaged_a[:128] == clean[:128]
        assert damaged_a != clean
        # Still parses as .npy — the damage is the silent kind.
        loaded = np.load(tmp_path / "a.npy")
        assert not np.array_equal(loaded, data)


# ----------------------------------------------------------------------
# Circuit breaker (fake clock, no sleeping)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, **overrides):
        clock = ManualClock()
        defaults = dict(failure_threshold=3, reset_timeout_s=10.0,
                        success_threshold=2, half_open_max=1)
        defaults.update(overrides)
        return CircuitBreaker(BreakerConfig(**defaults), name="t",
                              clock=clock), clock

    def test_closed_until_threshold(self):
        breaker, _ = self.make()
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_to_half_open_after_timeout(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half-open"

    def test_half_open_admits_limited_probes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()       # the one admitted probe
        assert not breaker.allow()   # half_open_max=1: rejected
        breaker.record_success()
        assert breaker.allow()       # slot freed for the next probe

    def test_probe_successes_close(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "half-open"  # success_threshold=2
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_probe_failure_reopens_and_restarts_timer(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.state == "open"   # timer restarted at re-open
        clock.advance(5.0)
        assert breaker.state == "half-open"

    def test_config_validation(self):
        for bad in (dict(failure_threshold=0), dict(reset_timeout_s=0.0),
                    dict(success_threshold=0), dict(half_open_max=0)):
            with pytest.raises(ValueError):
                BreakerConfig(**bad)


class TestResilienceConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(deadline_ms=0.0), dict(retries=-1), dict(backoff_ms=-1.0),
        dict(backoff_jitter=1.5), dict(hedge_ms=0.0),
    ])
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            ResilienceConfig(**bad)


# ----------------------------------------------------------------------
# Resilient routing: parity, degraded modes, hedging, breakers
# ----------------------------------------------------------------------
class TestResilientParity:
    def test_no_faults_bit_identical_to_fail_stop(self, sharded_cell):
        dataset, snapshot, sharded = sharded_cell
        users = np.arange(dataset.num_users, dtype=np.int64)
        plain = ShardedTopKIndex(sharded, kind="exact", chunk_users=64)
        resilient = make_router(sharded, ResilienceConfig(
            deadline_ms=5000.0, retries=1,
            breaker=BreakerConfig()))
        try:
            want = plain.topk(users, k=10)
            got = resilient.topk(users, k=10)
        finally:
            plain.close()
            resilient.close()
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)
        assert got.coverage == 1.0 and got.failed_shards == ()

    def test_hedged_path_still_exact(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        users = np.arange(dataset.num_users, dtype=np.int64)
        plain = ShardedTopKIndex(sharded, kind="exact", chunk_users=64)
        plan = FaultPlan(5, {"shard:1": FaultSpec("latency", 0.5,
                                                  latency_ms=30.0)})
        hedged = make_router(
            sharded,
            ResilienceConfig(deadline_ms=5000.0, retries=0, hedge_ms=2.0),
            faulty_shard=1, plan=plan)
        try:
            want = plain.topk(users, k=10)
            got = hedged.topk(users, k=10)
        finally:
            plain.close()
            hedged.close()
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)
        assert got.coverage == 1.0


class TestDegradedResults:
    def dead_router(self, sharded, **overrides):
        plan = FaultPlan(0, {"shard:1": FaultSpec("error", 1.0)})
        config = dict(deadline_ms=200.0, retries=1, backoff_ms=0.1)
        config.update(overrides)
        return make_router(sharded, ResilienceConfig(**config),
                           faulty_shard=1, plan=plan)

    def test_dead_shard_yields_explicit_partial(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        users = np.arange(dataset.num_users, dtype=np.int64)
        router = self.dead_router(sharded)
        try:
            result = router.topk(users, k=10)
        finally:
            router.close()
        assert result.failed_shards == (1,)
        lost = len(router.shard_indexes[1]._wrapped.shard)
        assert result.coverage == pytest.approx(
            1.0 - lost / sharded.manifest.num_items)
        # No item owned by the dead shard may appear in the answer.
        dead_items = set(
            np.asarray(sharded.item_shards[1].ids).tolist())
        served = set(result.items[result.items >= 0].tolist())
        assert not served & dead_items
        assert router.stats.shard_failures >= 1
        assert router.stats.degraded_chunks >= 1

    def test_strict_mode_raises_partial_result_error(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        router = self.dead_router(sharded, strict=True)
        try:
            with pytest.raises(PartialResultError) as excinfo:
                router.topk(np.arange(8, dtype=np.int64), k=5)
        finally:
            router.close()
        assert excinfo.value.failed_shards == (1,)
        assert 0.0 < excinfo.value.coverage < 1.0

    def test_slow_shard_degrades_at_deadline(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        plan = FaultPlan(0, {"shard:1": FaultSpec("latency", 1.0,
                                                  latency_ms=100.0)})
        router = make_router(
            sharded, ResilienceConfig(deadline_ms=20.0, retries=1),
            faulty_shard=1, plan=plan)
        try:
            result = router.topk(np.arange(8, dtype=np.int64), k=5)
        finally:
            router.close()
        assert result.failed_shards == (1,)
        assert result.coverage < 1.0

    def test_all_shards_dead_pads_everything(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        plan = FaultPlan(0, {"shard": FaultSpec("error", 1.0)})
        router = ShardedTopKIndex(
            sharded, kind="exact", chunk_users=64,
            resilience=ResilienceConfig(deadline_ms=200.0, retries=0))
        for s in range(SHARDS):
            router.shard_indexes[s] = FaultyShardIndex(
                router.shard_indexes[s], plan, f"shard:{s}")
        try:
            result = router.topk(np.arange(4, dtype=np.int64), k=5)
        finally:
            router.close()
        assert result.coverage == 0.0
        assert (result.items == -1).all()
        assert np.isneginf(result.scores).all()

    def test_degraded_recommendations_flagged_not_cached(self,
                                                         sharded_cell):
        dataset, _, sharded = sharded_cell
        router = self.dead_router(sharded)
        service = ShardedRecommendationService(sharded, index=router,
                                               cache_size=64)
        try:
            recs = service.recommend([0, 1, 2], k=5)
            assert all(r.degraded for r in recs)
            assert all(r.coverage < 1.0 for r in recs)
            assert len(service.cache) == 0
            assert service.stats.degraded_served == 3
            # The shard recovers: full answers flow — and cache — again.
            router.shard_indexes[1] = router.shard_indexes[1]._wrapped
            recs = service.recommend([0, 1, 2], k=5)
            assert all(not r.degraded for r in recs)
            assert all(r.coverage == 1.0 for r in recs)
            assert len(service.cache) == 3
        finally:
            router.close()


class TestHedging:
    def test_hedges_mask_stragglers(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        plan = FaultPlan(11, {"shard:1": FaultSpec("latency", 0.5,
                                                   latency_ms=50.0)})
        router = make_router(
            sharded,
            ResilienceConfig(deadline_ms=5000.0, retries=0, hedge_ms=2.0),
            faulty_shard=1, plan=plan)
        try:
            import time
            start = time.perf_counter()
            for user in range(16):
                result = router.topk(np.array([user]), k=5)
                assert result.coverage == 1.0
            elapsed = time.perf_counter() - start
        finally:
            router.close()
        assert router.stats.hedges > 0
        assert router.stats.hedge_wins > 0
        # 16 straggler-free requests must not cost 16 full stragglers.
        assert elapsed < 16 * 50e-3


class TestBreakerIntegration:
    def test_dead_shard_opens_breaker_and_skips(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        plan = FaultPlan(0, {"shard:1": FaultSpec("error", 1.0)})
        router = make_router(
            sharded,
            ResilienceConfig(deadline_ms=200.0, retries=0,
                             breaker=BreakerConfig(failure_threshold=2,
                                                   reset_timeout_s=60.0)),
            faulty_shard=1, plan=plan)
        try:
            for user in range(6):
                router.topk(np.array([user]), k=5)
        finally:
            router.close()
        assert router.breakers[1].state == "open"
        assert router.stats.breaker_open_skips >= 3
        # The wrapped shard stopped being called once the breaker opened.
        assert router.shard_indexes[1].calls <= 3
        # Healthy shards' breakers stay closed.
        assert router.breakers[0].state == "closed"


# ----------------------------------------------------------------------
# Soaks: every request resolves; same seed, same run
# ----------------------------------------------------------------------
SOAK_SPECS = {"shard:1": [FaultSpec("latency", 0.06, latency_ms=120.0),
                          FaultSpec("error", 0.10)]}


def run_sync_soak(sharded, num_users, *, seed, requests=300):
    """Sequential chaos soak; returns (outcomes, fault events)."""
    plan = FaultPlan(seed, SOAK_SPECS)
    router = make_router(
        sharded,
        ResilienceConfig(deadline_ms=25.0, retries=1, backoff_ms=0.2),
        faulty_shard=1, plan=plan)
    service = ShardedRecommendationService(sharded, index=router,
                                           cache_size=0)
    outcomes = []
    try:
        for i in range(requests):
            rec = service.recommend([i % num_users], k=5)[0]
            assert rec.degraded == (rec.coverage < 1.0)
            outcomes.append(("degraded" if rec.degraded else "ok",
                             round(rec.coverage, 12)))
    finally:
        router.close()
    return outcomes, plan.events()


class TestDeterministicSoak:
    def test_same_seed_identical_run(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        first = run_sync_soak(sharded, dataset.num_users, seed=123)
        second = run_sync_soak(sharded, dataset.num_users, seed=123)
        assert first == second
        outcomes, events = first
        assert len(outcomes) == 300          # every request resolved
        assert any(o[0] == "degraded" for o in outcomes)
        assert any(o[0] == "ok" for o in outcomes)
        assert len(events) > 0

    def test_different_seed_different_schedule(self, sharded_cell):
        dataset, _, sharded = sharded_cell
        _, events_a = run_sync_soak(sharded, dataset.num_users, seed=1,
                                    requests=120)
        _, events_b = run_sync_soak(sharded, dataset.num_users, seed=2,
                                    requests=120)
        assert events_a != events_b


class TestRuntimeChaosSoak:
    def test_async_soak_every_future_resolves(self, sharded_cell):
        dataset, snapshot, _ = sharded_cell
        plan = FaultPlan(77, {"svc": [
            FaultSpec("error", 0.15),
            FaultSpec("latency", 0.05, latency_ms=30.0)]})
        service = FaultyService(RecommendationService(snapshot),
                                plan, "svc")
        config = RuntimeConfig(slo_ms=50.0, max_queue=64, initial_batch=4,
                               max_batch=16, window=8, deadline_ms=500.0)
        handles = []
        with ServingRuntime(service, config) as runtime:
            for i in range(200):
                try:
                    handles.append(runtime.submit(i % dataset.num_users,
                                                  k=5))
                except OverloadError:
                    handles.append(None)  # shed at admission: resolved
            served = errored = 0
            for handle in handles:
                if handle is None:
                    continue
                try:
                    rec = handle.result(timeout=10.0)
                    assert rec.items is not None
                    served += 1
                except (InjectedFault, DeadlineExceeded):
                    errored += 1
            health = runtime.health()
        assert served > 0 and errored > 0
        assert served + errored == sum(1 for h in handles
                                       if h is not None)
        # Injected service errors fail futures — never the worker.
        assert health["worker_crashes"] == 0
        assert health["ok"]


# ----------------------------------------------------------------------
# Corrupt snapshot: quarantine and fall back to last-good
# ----------------------------------------------------------------------
class TestCorruptRefreshFallback:
    def test_refresh_rejects_quarantines_keeps_serving(self, tiny_dataset,
                                                       tmp_path):
        model = get_model("mf", tiny_dataset, dim=8, rng=0)
        config = TrainConfig(epochs=1, batch_size=64, n_negatives=8,
                             eval_every=0, patience=0, seed=0)
        train_model(model, get_loss("bsl"), tiny_dataset, config)
        export_snapshot(model, tiny_dataset, tmp_path / "v1",
                        model_name="mf")
        service = RecommendationService(load_snapshot(tmp_path / "v1"))
        good_version = service.snapshot.version
        baseline = service.recommend([0, 1], k=5)

        train_model(model, get_loss("bsl"), tiny_dataset, config)
        export_snapshot(model, tiny_dataset, tmp_path / "v2",
                        model_name="mf")
        corrupt_array_file(tmp_path / "v2" / "item_embeddings.npy",
                           seed=0)

        with pytest.raises(SnapshotIntegrityError) as excinfo:
            service.refresh(tmp_path / "v2")
        # Last-good version still serves, bit-identically.
        assert service.snapshot.version == good_version
        after = service.recommend([0, 1], k=5)
        for a, b in zip(baseline, after):
            np.testing.assert_array_equal(a.items, b.items)
        # The damage was moved aside, not left in the publish path.
        assert not (tmp_path / "v2").exists()
        quarantined = excinfo.value.quarantined_to
        assert quarantined is not None and quarantined.exists()
        assert service.stats.refresh_rejected == 1

        # A repaired export at the same path swaps in normally.
        export_snapshot(model, tiny_dataset, tmp_path / "v2",
                        model_name="mf")
        service.refresh(tmp_path / "v2")
        assert service.snapshot.version != good_version

    def test_sharded_refresh_rejects_corruption(self, tiny_dataset,
                                                sharded_cell, tmp_path):
        _, _, sharded = sharded_cell
        service = ShardedRecommendationService(sharded)
        good_version = service.snapshot.version

        model = get_model("mf", tiny_dataset, dim=8, rng=1)
        export_sharded_snapshot(model, tiny_dataset, tmp_path / "next",
                                shards=SHARDS, partition_by="item",
                                model_name="mf")
        shard_dir = next((tmp_path / "next").glob("item-shard-*"))
        corrupt_array_file(shard_dir / "item_embeddings.npy", seed=0)

        with pytest.raises(SnapshotIntegrityError):
            service.refresh(tmp_path / "next")
        assert service.snapshot.version == good_version
        assert not (tmp_path / "next").exists()


# ----------------------------------------------------------------------
# The committed benchmark stays honest
# ----------------------------------------------------------------------
class TestBenchFaultsPin:
    @pytest.fixture(scope="class")
    def payload(self):
        return json.loads((REPO_ROOT / "BENCH_faults.json").read_text())

    def row(self, payload, scenario, policy, rate):
        for row in payload["results"]:
            if (row["scenario"] == scenario and row["policy"] == policy
                    and row["fault_rate"] == pytest.approx(rate)):
                return row
        raise AssertionError(
            f"no ({scenario}, {policy}, rate={rate}) row committed")

    def test_schema_and_scenarios(self, payload):
        assert payload["schema"] == "bsl-faults-bench/v1"
        scenarios = {r["scenario"] for r in payload["results"]}
        assert scenarios == {"slow_shard", "dead_shard"}

    def test_headline_availability_with_hedging_and_breakers(self,
                                                             payload):
        resilient = self.row(payload, "slow_shard", "resilient", 0.1)
        assert resilient["availability"] >= 0.99
        assert resilient["hedge_wins"] > 0

    def test_resilient_beats_baseline_at_every_fault_level(self, payload):
        for rate in (0.05, 0.1, 0.2):
            baseline = self.row(payload, "slow_shard", "baseline", rate)
            resilient = self.row(payload, "slow_shard", "resilient", rate)
            assert resilient["availability"] > baseline["availability"]
            assert resilient["p99_ms"] < baseline["p99_ms"]

    def test_dead_shard_is_explicit_and_breaker_guarded(self, payload):
        for policy in ("baseline", "resilient"):
            row = self.row(payload, "dead_shard", policy, 1.0)
            assert row["degraded_rate"] == 1.0   # explicit, not silent
            assert row["error_rate"] == 0.0
        assert self.row(payload, "dead_shard", "resilient",
                        1.0)["breaker_open_skips"] > 0
