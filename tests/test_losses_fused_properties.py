"""Property tests: the fused fast path is indistinguishable from the oracle.

* fused and unfused SL/BSL produce identical losses and gradients, for
  both BSL poolings and all SL flag combinations;
* BSL with ``tau1 == tau2`` at batch size 1 reduces to SL (up to the
  documented constant shift), on the fused path as well as the oracle.
"""

import numpy as np
import pytest

from repro.losses import BSLLoss, InfoNCELoss, SoftmaxLoss
from repro.tensor import Tensor


def _pair(p, n):
    return (Tensor(np.asarray(p, dtype=float).copy(), requires_grad=True),
            Tensor(np.asarray(n, dtype=float).copy(), requires_grad=True))


def _backward_both(loss_fused, loss_oracle, p, n):
    a, b = _pair(p, n), _pair(p, n)
    lf = loss_fused(*a)
    lo = loss_oracle(*b)
    np.testing.assert_allclose(lf.item(), lo.item(), rtol=1e-12, atol=1e-14)
    lf.backward()
    lo.backward()
    np.testing.assert_allclose(a[0].grad, b[0].grad, rtol=1e-10, atol=1e-14)
    np.testing.assert_allclose(a[1].grad, b[1].grad, rtol=1e-10, atol=1e-14)
    return lf.item()


@pytest.fixture()
def scores():
    rng = np.random.default_rng(42)
    return rng.normal(size=16) * 0.6, rng.normal(size=(16, 24)) * 0.6


class TestFusedEqualsUnfused:
    @pytest.mark.parametrize("include_positive", [False, True])
    @pytest.mark.parametrize("scale", [False, True])
    def test_sl(self, scores, include_positive, scale):
        p, n = scores
        _backward_both(
            SoftmaxLoss(tau=0.23, include_positive=include_positive,
                        scale_by_temperature=scale, fused=True),
            SoftmaxLoss(tau=0.23, include_positive=include_positive,
                        scale_by_temperature=scale, fused=False),
            p, n)

    @pytest.mark.parametrize("pooling", ["mean", "log_mean_exp"])
    @pytest.mark.parametrize("taus", [(0.2, 0.2), (0.3, 0.15), (0.08, 0.4)])
    def test_bsl_both_poolings(self, scores, pooling, taus):
        p, n = scores
        t1, t2 = taus
        _backward_both(
            BSLLoss(tau1=t1, tau2=t2, pooling=pooling, fused=True),
            BSLLoss(tau1=t1, tau2=t2, pooling=pooling, fused=False),
            p, n)

    def test_infonce(self):
        rng = np.random.default_rng(7)
        z1, z2 = rng.normal(size=(10, 6)), rng.normal(size=(10, 6))
        a = (Tensor(z1.copy(), requires_grad=True),
             Tensor(z2.copy(), requires_grad=True))
        b = (Tensor(z1.copy(), requires_grad=True),
             Tensor(z2.copy(), requires_grad=True))
        lf = InfoNCELoss(tau=0.2, fused=True)(*a)
        lo = InfoNCELoss(tau=0.2, fused=False)(*b)
        np.testing.assert_allclose(lf.item(), lo.item(), rtol=1e-12)
        lf.backward()
        lo.backward()
        for fi, oi in zip(a, b):
            np.testing.assert_allclose(fi.grad, oi.grad,
                                       rtol=1e-9, atol=1e-13)

    def test_extreme_logits_agree(self):
        """Both paths share the max-shift stabilisation at huge logits."""
        p = np.array([50.0, -50.0])
        n = np.array([[60.0, -60.0, 0.0], [30.0, -30.0, 0.0]])
        for pooling in ("mean", "log_mean_exp"):
            _backward_both(BSLLoss(tau1=0.1, tau2=0.1, pooling=pooling,
                                   fused=True),
                           BSLLoss(tau1=0.1, tau2=0.1, pooling=pooling,
                                   fused=False), p, n)


class TestBSLReducesToSL:
    """BSL(τ1=τ2, B=1) is SL up to documented constant shifts.

    * ``mean`` pooling: BSL = SL − log m (logmeanexp vs logsumexp), so
      the gradients match SL's exactly.
    * ``log_mean_exp`` pooling at B=1: BSL = τ·(SL − log m), i.e. SL
      with ``scale_by_temperature=True``; gradients are τ·∇SL.
    """

    TAU = 0.21

    @pytest.fixture()
    def single_row(self):
        rng = np.random.default_rng(3)
        return rng.normal(size=1) * 0.5, rng.normal(size=(1, 12)) * 0.5

    @pytest.mark.parametrize("fused", [True, False])
    def test_mean_pooling(self, single_row, fused):
        p, n = single_row
        m = n.shape[1]
        a, b = _pair(p, n), _pair(p, n)
        bsl = BSLLoss(tau1=self.TAU, tau2=self.TAU, pooling="mean",
                      fused=fused)(*a)
        sl = SoftmaxLoss(tau=self.TAU, fused=fused)(*b)
        np.testing.assert_allclose(bsl.item(), sl.item() - np.log(m),
                                   rtol=1e-10)
        bsl.backward()
        sl.backward()
        np.testing.assert_allclose(a[0].grad, b[0].grad, rtol=1e-10)
        np.testing.assert_allclose(a[1].grad, b[1].grad, rtol=1e-10)

    @pytest.mark.parametrize("fused", [True, False])
    def test_log_mean_exp_pooling(self, single_row, fused):
        p, n = single_row
        m = n.shape[1]
        a, b = _pair(p, n), _pair(p, n)
        bsl = BSLLoss(tau1=self.TAU, tau2=self.TAU, pooling="log_mean_exp",
                      fused=fused)(*a)
        sl = SoftmaxLoss(tau=self.TAU, fused=fused)(*b)
        np.testing.assert_allclose(
            bsl.item(), self.TAU * (sl.item() - np.log(m)), rtol=1e-9)
        bsl.backward()
        sl.backward()
        np.testing.assert_allclose(a[0].grad, self.TAU * b[0].grad,
                                   rtol=1e-9)
        np.testing.assert_allclose(a[1].grad, self.TAU * b[1].grad,
                                   rtol=1e-9)

    @pytest.mark.parametrize("pooling", ["mean", "log_mean_exp"])
    def test_fused_and_oracle_reduce_identically(self, single_row, pooling):
        """The reduction itself is path-independent."""
        p, n = single_row
        a, b = _pair(p, n), _pair(p, n)
        fused_val = BSLLoss(tau1=self.TAU, tau2=self.TAU, pooling=pooling,
                            fused=True)(*a).item()
        oracle_val = BSLLoss(tau1=self.TAU, tau2=self.TAU, pooling=pooling,
                             fused=False)(*b).item()
        np.testing.assert_allclose(fused_val, oracle_val, rtol=1e-12)


class TestTrainingParityEndToEnd:
    """A short MF training run is bit-comparable fused vs oracle."""

    @pytest.mark.parametrize("loss_name", ["sl", "bsl"])
    def test_loss_histories_match(self, tiny_dataset, loss_name):
        from repro.losses import get_loss
        from repro.models.registry import get_model
        from repro.train.trainer import train_model

        histories = {}
        for fused in (True, False):
            loss = get_loss(loss_name, fused=fused)
            model = get_model("mf", tiny_dataset, dim=8, rng=1)
            result = train_model(model, loss, tiny_dataset, epochs=3,
                                 batch_size=64, n_negatives=8,
                                 eval_every=0, patience=0, seed=9)
            histories[fused] = result.loss_history
        np.testing.assert_allclose(histories[True], histories[False],
                                   rtol=1e-9, atol=1e-12)
