"""ServingRuntime: admission, shedding, adaptive batching, breakdown."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (AsyncRequest, ExactTopKIndex, OverloadError,
                         RecommendationService, RuntimeConfig, RuntimeStats,
                         ServingRuntime, ShardedRecommendationService,
                         export_sharded_snapshot)


@pytest.fixture()
def service(tiny_mf_snapshot):
    _, snapshot = tiny_mf_snapshot
    return RecommendationService(snapshot)


def fast_config(**overrides):
    """Small queue/window so tests exercise the controller quickly."""
    defaults = dict(slo_ms=50.0, max_queue=64, initial_batch=4,
                    max_batch=32, window=8)
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(slo_ms=0.0), dict(slo_ms=-1.0), dict(max_queue=0),
        dict(min_batch=0), dict(min_batch=8, max_batch=4),
        dict(initial_batch=0), dict(initial_batch=512),
        dict(window=0), dict(headroom=0.0), dict(headroom=1.5),
        dict(grow=1.0), dict(shrink=1.0), dict(shrink=0.0),
        dict(poll_ms=0.0),
    ])
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            RuntimeConfig(**bad)

    def test_defaults_valid(self):
        config = RuntimeConfig()
        assert config.min_batch <= config.initial_batch <= config.max_batch


class TestSubmitAndResults:
    def test_results_match_direct_recommend(self, tiny_mf_snapshot, service):
        _, snapshot = tiny_mf_snapshot
        users = list(range(12))
        with ServingRuntime(service, fast_config()) as runtime:
            handles = [runtime.submit(u, k=7) for u in users]
            results = [h.result(timeout=10.0) for h in handles]
        want = ExactTopKIndex(snapshot).topk(np.array(users), k=7)
        for row, rec in enumerate(results):
            assert rec.user_id == users[row]
            np.testing.assert_array_equal(rec.items, want.items[row])
            np.testing.assert_array_equal(rec.scores, want.scores[row])

    def test_mixed_request_shapes_grouped(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            a = runtime.submit(0, k=3)
            b = runtime.submit(1, k=9)
            c = runtime.submit(2, k=3, filter_seen=False)
            assert len(a.result(timeout=10.0).items) == 3
            assert len(b.result(timeout=10.0).items) == 9
            assert len(c.result(timeout=10.0).items) == 3

    def test_stats_count_admitted_and_completed(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handles = [runtime.submit(u, k=5) for u in range(20)]
            for handle in handles:
                handle.result(timeout=10.0)
        stats = runtime.stats
        assert stats.admitted == 20 and stats.completed == 20
        assert stats.rejected == 0 and stats.shed_rate == 0.0
        assert 0 < stats.batches <= 20
        assert stats.mean_batch == pytest.approx(20 / stats.batches)

    def test_request_timestamps_and_latency(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handle = runtime.submit(3, k=5)
            handle.result(timeout=10.0)
        assert handle.done
        assert handle.enqueued_at <= handle.started_at <= handle.finished_at
        assert handle.latency_ms >= handle.service_ms >= 0.0
        assert handle.latency_ms == pytest.approx(
            handle.queue_ms + handle.service_ms)

    def test_unfinished_request_reports_zero_latency(self):
        request = AsyncRequest(0, 10, True)
        assert not request.done
        assert request.queue_ms == request.service_ms == 0.0
        assert request.latency_ms == 0.0

    def test_result_timeout_raises(self, service):
        runtime = ServingRuntime(service, fast_config())  # never started
        handle = runtime.submit(0, k=5)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)

    def test_worker_error_propagates_to_waiters(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handle = runtime.submit(10 ** 9, k=5)  # out-of-range user id
            with pytest.raises(ValueError):
                handle.result(timeout=10.0)


class TestOverload:
    def test_full_queue_sheds_with_overload_error(self, service):
        runtime = ServingRuntime(service, fast_config(max_queue=4))
        for u in range(4):
            runtime.submit(u, k=5)
        with pytest.raises(OverloadError, match="shed"):
            runtime.submit(99, k=5)
        assert runtime.stats.rejected == 1
        assert runtime.stats.shed_rate == pytest.approx(0.2)
        runtime.start()
        runtime.stop()
        assert runtime.stats.completed == 4  # shed request never served

    def test_shed_rate_zero_without_traffic(self):
        assert RuntimeStats().shed_rate == 0.0
        assert RuntimeStats().mean_batch == 0.0


class TestLifecycle:
    def test_stop_drains_admitted_requests(self, service):
        runtime = ServingRuntime(service, fast_config())
        handles = [runtime.submit(u, k=5) for u in range(10)]
        runtime.start()
        runtime.stop()
        assert all(h.done for h in handles)
        assert runtime.pending == 0
        assert not runtime.running

    def test_start_stop_idempotent(self, service):
        runtime = ServingRuntime(service, fast_config())
        runtime.start()
        runtime.start()
        assert runtime.running
        runtime.stop()
        runtime.stop()
        assert not runtime.running

    def test_restart_after_stop(self, service):
        runtime = ServingRuntime(service, fast_config())
        with runtime:
            runtime.submit(0, k=5).result(timeout=10.0)
        with runtime:
            runtime.submit(1, k=5).result(timeout=10.0)
        assert runtime.stats.completed == 2

    def test_repr_mentions_state(self, service):
        runtime = ServingRuntime(service, fast_config())
        assert "running=False" in repr(runtime)
        assert "slo_ms=50.0" in repr(runtime)


class TestAdaptiveBatching:
    def test_batch_grows_under_slo_headroom(self, service):
        """A fast service leaves p99 far under the SLO: the controller
        must grow the batch multiplicatively toward max_batch."""
        config = fast_config(slo_ms=10_000.0, initial_batch=2, max_batch=32,
                             window=4)
        with ServingRuntime(service, config) as runtime:
            for u in range(40):
                runtime.submit(u % 50, k=5).result(timeout=10.0)
        assert runtime.stats.grows > 0
        assert runtime.batch_size > config.initial_batch

    def test_batch_shrinks_when_slo_violated(self, service):
        """An impossibly tight SLO forces shrink toward min_batch."""
        config = fast_config(slo_ms=1e-6, initial_batch=16, min_batch=1,
                             window=4)
        with ServingRuntime(service, config) as runtime:
            handles = [runtime.submit(u % 50, k=5) for u in range(40)]
            for handle in handles:
                handle.result(timeout=10.0)
        assert runtime.stats.shrinks > 0
        assert runtime.batch_size < 16

    def test_batch_stays_within_bounds(self, service):
        config = fast_config(slo_ms=10_000.0, initial_batch=2, max_batch=8,
                             window=2)
        with ServingRuntime(service, config) as runtime:
            handles = [runtime.submit(u % 50, k=5) for u in range(60)]
            for handle in handles:
                handle.result(timeout=10.0)
        assert config.min_batch <= runtime.batch_size <= config.max_batch

    def test_adaptation_counters_exposed(self, service):
        with ServingRuntime(service, fast_config(window=4)) as runtime:
            for u in range(12):
                runtime.submit(u, k=5).result(timeout=10.0)
        assert runtime.stats.grows + runtime.stats.shrinks >= 0
        quantiles = runtime.latency_quantiles()
        assert set(quantiles) == {"p50_ms", "p99_ms"}
        assert all(v >= 0.0 for v in quantiles.values())


class TestBreakdown:
    def test_unsharded_breakdown_terms(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handles = [runtime.submit(u, k=5) for u in range(16)]
            for handle in handles:
                handle.result(timeout=10.0)
        breakdown = runtime.breakdown()
        for term in ("queue_ms", "service_ms", "sweep_ms", "mean_batch",
                     "batch_size"):
            assert term in breakdown
        assert breakdown["queue_ms"] >= 0.0
        assert breakdown["service_ms"] > 0.0
        assert breakdown["sweep_ms"] > 0.0
        assert "gather_ms" not in breakdown  # no router underneath

    def test_sharded_breakdown_includes_router_split(self, tiny_dataset,
                                                     tiny_mf_snapshot,
                                                     tmp_path):
        model, _ = tiny_mf_snapshot
        sharded = export_sharded_snapshot(model, tiny_dataset, tmp_path,
                                          shards=3)
        service = ShardedRecommendationService(sharded, cache_size=0)
        with ServingRuntime(service, fast_config()) as runtime:
            handles = [runtime.submit(u, k=5) for u in range(16)]
            for handle in handles:
                handle.result(timeout=10.0)
        breakdown = runtime.breakdown()
        for term in ("gather_ms", "score_ms", "merge_ms"):
            assert term in breakdown
            assert breakdown[term] >= 0.0

    def test_concurrent_submitters_all_answered(self, service):
        """Multiple client threads submitting at once: every request is
        answered exactly once and counters stay consistent."""
        errors = []

        def client(runtime, base):
            try:
                handles = [runtime.submit((base + i) % 50, k=5)
                           for i in range(10)]
                for handle in handles:
                    handle.result(timeout=10.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ServingRuntime(service, fast_config()) as runtime:
            threads = [threading.Thread(target=client, args=(runtime, b))
                       for b in (0, 10, 20)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert runtime.stats.completed == 30
        assert runtime.stats.admitted == 30


class TestLatencyReservoir:
    """latency_quantiles() samples a bounded *seeded* reservoir, so the
    lifetime estimate is deterministic for a given request order and
    never grows with the soak length."""

    def test_reservoir_config_knobs_validated(self):
        with pytest.raises(ValueError, match="reservoir_size"):
            RuntimeConfig(reservoir_size=0)
        with pytest.raises(ValueError, match="reservoir_size"):
            RuntimeConfig(reservoir_size=-8)

    def test_sample_is_bounded_by_capacity(self, service):
        config = fast_config(reservoir_size=16)
        with ServingRuntime(service, config) as runtime:
            for u in range(80):
                runtime.submit(u % 50, k=5).result(timeout=10.0)
        assert len(runtime._reservoir) == 16
        assert runtime._reservoir.seen == runtime.stats.completed == 80
        quantiles = runtime.latency_quantiles()
        assert quantiles["p50_ms"] >= 0.0
        assert quantiles["p99_ms"] >= quantiles["p50_ms"]

    def test_under_capacity_keeps_every_sample(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            for u in range(10):
                runtime.submit(u, k=5).result(timeout=10.0)
        assert len(runtime._reservoir) == 10
        assert runtime._reservoir.seen == 10

    def test_selection_is_seed_deterministic(self):
        """Which *positions* of the latency stream survive is a pure
        function of (capacity, seed) — replaying the same stream through
        a twin reservoir keeps identical samples."""
        from repro.obs.metrics import Reservoir
        config = RuntimeConfig(reservoir_size=32, reservoir_seed=7)
        twin = Reservoir(capacity=config.reservoir_size,
                         seed=config.reservoir_seed)
        stream = [float(i % 97) for i in range(500)]
        mirror = Reservoir(capacity=config.reservoir_size,
                           seed=config.reservoir_seed)
        for v in stream:
            twin.add(v)
            mirror.add(v)
        assert twin.values() == mirror.values()
        assert twin.seen == 500


# ----------------------------------------------------------------------
# Robustness: deadlines, worker supervision, health (docs/robustness.md)
# ----------------------------------------------------------------------
class _SlowService:
    """Delegating wrapper whose every ``recommend`` sleeps first."""

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def recommend(self, users, k=10, filter_seen=True):
        time.sleep(self._delay_s)
        return self._inner.recommend(users, k=k, filter_seen=filter_seen)


class _PoisonService:
    """Delegating wrapper that raises for batches containing ``bad``."""

    def __init__(self, inner, bad: int):
        self._inner = inner
        self._bad = bad

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def recommend(self, users, k=10, filter_seen=True):
        if self._bad in list(users):
            raise ValueError(f"poisoned request for user {self._bad}")
        return self._inner.recommend(users, k=k, filter_seen=filter_seen)


class TestResultTimeout:
    def test_result_expires_while_pending(self, service):
        runtime = ServingRuntime(service, fast_config())
        handle = runtime.submit(0, k=5)  # no worker started yet
        with pytest.raises(TimeoutError, match="still pending"):
            handle.result(timeout=0.05)
        assert not handle.done
        runtime.start()
        runtime.stop()
        assert handle.result(timeout=5.0).user_id == 0


class TestQueueDeadlines:
    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(deadline_ms=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(max_restarts=-1)

    def test_expired_requests_fail_with_deadline_exceeded(self, service):
        from repro.serve import DeadlineExceeded
        slow = _SlowService(service, 0.05)
        config = fast_config(deadline_ms=20.0, initial_batch=2,
                             max_batch=2, window=1024)
        with ServingRuntime(slow, config) as runtime:
            handles = [runtime.submit(u, k=5) for u in range(8)]
            served = expired = 0
            for handle in handles:
                try:
                    handle.result(timeout=10.0)
                    served += 1
                except DeadlineExceeded:
                    expired += 1
        # The first batch is picked up fresh; everything queued behind
        # a 50 ms batch has blown its 20 ms deadline at pickup.
        assert served >= 1 and expired >= 1
        assert served + expired == 8
        assert runtime.stats.deadline_expired == expired

    def test_no_deadline_by_default(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handle = runtime.submit(0, k=5)
            assert handle.deadline_at is None
            handle.result(timeout=10.0)


class TestWorkerSupervision:
    def test_service_exception_fails_batch_not_worker(self, service):
        poison = _PoisonService(service, bad=3)
        config = fast_config(initial_batch=1, max_batch=1)
        with ServingRuntime(poison, config) as runtime:
            ok = runtime.submit(0, k=5)
            bad = runtime.submit(3, k=5)
            after = runtime.submit(1, k=5)
            assert ok.result(timeout=10.0).user_id == 0
            with pytest.raises(ValueError, match="poisoned"):
                bad.result(timeout=10.0)
            # The worker survived the service error and kept serving.
            assert after.result(timeout=10.0).user_id == 1
            health = runtime.health()
        assert health["ok"]
        assert health["worker_crashes"] == 0

    def test_crash_fails_backlog_with_cause_then_restarts(self, service):
        from repro.serve import WorkerCrashed
        runtime = ServingRuntime(service, fast_config())
        handles = [runtime.submit(u, k=5) for u in range(5)]
        original = runtime._collect_batch
        state = {"fired": False}

        def boom_once():
            if not state["fired"]:
                state["fired"] = True
                raise RuntimeError("dropped the batch")
            return original()

        runtime._collect_batch = boom_once
        runtime.start()
        for handle in handles:
            with pytest.raises(WorkerCrashed, match="dropped the batch"):
                handle.result(timeout=10.0)
            assert isinstance(handle._error.__cause__, RuntimeError)
        # The supervisor restarted the loop in place; new work serves.
        assert runtime.submit(7, k=5).result(timeout=10.0).user_id == 7
        runtime.stop()
        assert runtime.stats.worker_crashes == 1
        assert runtime.stats.worker_restarts == 1
        assert runtime.health()["worker_restarts"] == 1

    def test_fail_stop_refuses_work_until_restarted(self, service):
        from repro.serve import WorkerCrashed
        runtime = ServingRuntime(service,
                                 fast_config(restart_on_crash=False))

        def always_boom():
            raise RuntimeError("kaboom")

        runtime._collect_batch = always_boom
        runtime.start()
        for _ in range(400):
            if runtime._fatal is not None:
                break
            time.sleep(0.005)
        health = runtime.health()
        assert not health["ok"]
        assert "kaboom" in health["fatal"]
        with pytest.raises(WorkerCrashed, match="fail-stopped"):
            runtime.submit(0, k=5)
        # An explicit operator start() clears the fatal state.
        del runtime._collect_batch
        runtime.start()
        assert runtime.health()["ok"]
        assert runtime.submit(1, k=5).result(timeout=10.0).user_id == 1
        runtime.stop()

    def test_health_probe_reports_liveness(self, service):
        runtime = ServingRuntime(service, fast_config())
        idle = runtime.health()
        assert not idle["ok"] and not idle["running"]
        assert idle["fatal"] is None
        with runtime:
            live = runtime.health()
            assert live["ok"] and live["running"]
            assert live["snapshot_version"] == service.snapshot.version
            assert live["pending"] == 0


class TestRefreshRacesStop:
    def test_refresh_concurrent_with_stop_never_hangs(
            self, tiny_mf_snapshot, tmp_path):
        from repro.serve import LiveState, RecommendationService
        from repro.serve.delta import export_state
        _, snap_a = tiny_mf_snapshot
        state = LiveState.from_snapshot(snap_a)
        state.upsert_item(0, np.ones(state.dim))
        snap_b = export_state(state, tmp_path / "b", created_unix=1.0)
        service = RecommendationService(snap_a)
        runtime = ServingRuntime(service, fast_config())
        runtime.start()
        done = threading.Event()
        errors = []

        def do_refresh():
            try:
                runtime.refresh(snap_b, timeout=10.0)
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                errors.append(exc)
            finally:
                done.set()

        refresher = threading.Thread(target=do_refresh)
        refresher.start()
        runtime.stop()
        assert done.wait(10.0), "refresh hung across stop()"
        refresher.join()
        assert not errors
        assert service.snapshot.version == snap_b.version
