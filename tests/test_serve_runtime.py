"""ServingRuntime: admission, shedding, adaptive batching, breakdown."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (AsyncRequest, ExactTopKIndex, OverloadError,
                         RecommendationService, RuntimeConfig, RuntimeStats,
                         ServingRuntime, ShardedRecommendationService,
                         export_sharded_snapshot)


@pytest.fixture()
def service(tiny_mf_snapshot):
    _, snapshot = tiny_mf_snapshot
    return RecommendationService(snapshot)


def fast_config(**overrides):
    """Small queue/window so tests exercise the controller quickly."""
    defaults = dict(slo_ms=50.0, max_queue=64, initial_batch=4,
                    max_batch=32, window=8)
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(slo_ms=0.0), dict(slo_ms=-1.0), dict(max_queue=0),
        dict(min_batch=0), dict(min_batch=8, max_batch=4),
        dict(initial_batch=0), dict(initial_batch=512),
        dict(window=0), dict(headroom=0.0), dict(headroom=1.5),
        dict(grow=1.0), dict(shrink=1.0), dict(shrink=0.0),
        dict(poll_ms=0.0),
    ])
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            RuntimeConfig(**bad)

    def test_defaults_valid(self):
        config = RuntimeConfig()
        assert config.min_batch <= config.initial_batch <= config.max_batch


class TestSubmitAndResults:
    def test_results_match_direct_recommend(self, tiny_mf_snapshot, service):
        _, snapshot = tiny_mf_snapshot
        users = list(range(12))
        with ServingRuntime(service, fast_config()) as runtime:
            handles = [runtime.submit(u, k=7) for u in users]
            results = [h.result(timeout=10.0) for h in handles]
        want = ExactTopKIndex(snapshot).topk(np.array(users), k=7)
        for row, rec in enumerate(results):
            assert rec.user_id == users[row]
            np.testing.assert_array_equal(rec.items, want.items[row])
            np.testing.assert_array_equal(rec.scores, want.scores[row])

    def test_mixed_request_shapes_grouped(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            a = runtime.submit(0, k=3)
            b = runtime.submit(1, k=9)
            c = runtime.submit(2, k=3, filter_seen=False)
            assert len(a.result(timeout=10.0).items) == 3
            assert len(b.result(timeout=10.0).items) == 9
            assert len(c.result(timeout=10.0).items) == 3

    def test_stats_count_admitted_and_completed(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handles = [runtime.submit(u, k=5) for u in range(20)]
            for handle in handles:
                handle.result(timeout=10.0)
        stats = runtime.stats
        assert stats.admitted == 20 and stats.completed == 20
        assert stats.rejected == 0 and stats.shed_rate == 0.0
        assert 0 < stats.batches <= 20
        assert stats.mean_batch == pytest.approx(20 / stats.batches)

    def test_request_timestamps_and_latency(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handle = runtime.submit(3, k=5)
            handle.result(timeout=10.0)
        assert handle.done
        assert handle.enqueued_at <= handle.started_at <= handle.finished_at
        assert handle.latency_ms >= handle.service_ms >= 0.0
        assert handle.latency_ms == pytest.approx(
            handle.queue_ms + handle.service_ms)

    def test_unfinished_request_reports_zero_latency(self):
        request = AsyncRequest(0, 10, True)
        assert not request.done
        assert request.queue_ms == request.service_ms == 0.0
        assert request.latency_ms == 0.0

    def test_result_timeout_raises(self, service):
        runtime = ServingRuntime(service, fast_config())  # never started
        handle = runtime.submit(0, k=5)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)

    def test_worker_error_propagates_to_waiters(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handle = runtime.submit(10 ** 9, k=5)  # out-of-range user id
            with pytest.raises(ValueError):
                handle.result(timeout=10.0)


class TestOverload:
    def test_full_queue_sheds_with_overload_error(self, service):
        runtime = ServingRuntime(service, fast_config(max_queue=4))
        for u in range(4):
            runtime.submit(u, k=5)
        with pytest.raises(OverloadError, match="shed"):
            runtime.submit(99, k=5)
        assert runtime.stats.rejected == 1
        assert runtime.stats.shed_rate == pytest.approx(0.2)
        runtime.start()
        runtime.stop()
        assert runtime.stats.completed == 4  # shed request never served

    def test_shed_rate_zero_without_traffic(self):
        assert RuntimeStats().shed_rate == 0.0
        assert RuntimeStats().mean_batch == 0.0


class TestLifecycle:
    def test_stop_drains_admitted_requests(self, service):
        runtime = ServingRuntime(service, fast_config())
        handles = [runtime.submit(u, k=5) for u in range(10)]
        runtime.start()
        runtime.stop()
        assert all(h.done for h in handles)
        assert runtime.pending == 0
        assert not runtime.running

    def test_start_stop_idempotent(self, service):
        runtime = ServingRuntime(service, fast_config())
        runtime.start()
        runtime.start()
        assert runtime.running
        runtime.stop()
        runtime.stop()
        assert not runtime.running

    def test_restart_after_stop(self, service):
        runtime = ServingRuntime(service, fast_config())
        with runtime:
            runtime.submit(0, k=5).result(timeout=10.0)
        with runtime:
            runtime.submit(1, k=5).result(timeout=10.0)
        assert runtime.stats.completed == 2

    def test_repr_mentions_state(self, service):
        runtime = ServingRuntime(service, fast_config())
        assert "running=False" in repr(runtime)
        assert "slo_ms=50.0" in repr(runtime)


class TestAdaptiveBatching:
    def test_batch_grows_under_slo_headroom(self, service):
        """A fast service leaves p99 far under the SLO: the controller
        must grow the batch multiplicatively toward max_batch."""
        config = fast_config(slo_ms=10_000.0, initial_batch=2, max_batch=32,
                             window=4)
        with ServingRuntime(service, config) as runtime:
            for u in range(40):
                runtime.submit(u % 50, k=5).result(timeout=10.0)
        assert runtime.stats.grows > 0
        assert runtime.batch_size > config.initial_batch

    def test_batch_shrinks_when_slo_violated(self, service):
        """An impossibly tight SLO forces shrink toward min_batch."""
        config = fast_config(slo_ms=1e-6, initial_batch=16, min_batch=1,
                             window=4)
        with ServingRuntime(service, config) as runtime:
            handles = [runtime.submit(u % 50, k=5) for u in range(40)]
            for handle in handles:
                handle.result(timeout=10.0)
        assert runtime.stats.shrinks > 0
        assert runtime.batch_size < 16

    def test_batch_stays_within_bounds(self, service):
        config = fast_config(slo_ms=10_000.0, initial_batch=2, max_batch=8,
                             window=2)
        with ServingRuntime(service, config) as runtime:
            handles = [runtime.submit(u % 50, k=5) for u in range(60)]
            for handle in handles:
                handle.result(timeout=10.0)
        assert config.min_batch <= runtime.batch_size <= config.max_batch

    def test_adaptation_counters_exposed(self, service):
        with ServingRuntime(service, fast_config(window=4)) as runtime:
            for u in range(12):
                runtime.submit(u, k=5).result(timeout=10.0)
        assert runtime.stats.grows + runtime.stats.shrinks >= 0
        quantiles = runtime.latency_quantiles()
        assert set(quantiles) == {"p50_ms", "p99_ms"}
        assert all(v >= 0.0 for v in quantiles.values())


class TestBreakdown:
    def test_unsharded_breakdown_terms(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            handles = [runtime.submit(u, k=5) for u in range(16)]
            for handle in handles:
                handle.result(timeout=10.0)
        breakdown = runtime.breakdown()
        for term in ("queue_ms", "service_ms", "sweep_ms", "mean_batch",
                     "batch_size"):
            assert term in breakdown
        assert breakdown["queue_ms"] >= 0.0
        assert breakdown["service_ms"] > 0.0
        assert breakdown["sweep_ms"] > 0.0
        assert "gather_ms" not in breakdown  # no router underneath

    def test_sharded_breakdown_includes_router_split(self, tiny_dataset,
                                                     tiny_mf_snapshot,
                                                     tmp_path):
        model, _ = tiny_mf_snapshot
        sharded = export_sharded_snapshot(model, tiny_dataset, tmp_path,
                                          shards=3)
        service = ShardedRecommendationService(sharded, cache_size=0)
        with ServingRuntime(service, fast_config()) as runtime:
            handles = [runtime.submit(u, k=5) for u in range(16)]
            for handle in handles:
                handle.result(timeout=10.0)
        breakdown = runtime.breakdown()
        for term in ("gather_ms", "score_ms", "merge_ms"):
            assert term in breakdown
            assert breakdown[term] >= 0.0

    def test_concurrent_submitters_all_answered(self, service):
        """Multiple client threads submitting at once: every request is
        answered exactly once and counters stay consistent."""
        errors = []

        def client(runtime, base):
            try:
                handles = [runtime.submit((base + i) % 50, k=5)
                           for i in range(10)]
                for handle in handles:
                    handle.result(timeout=10.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ServingRuntime(service, fast_config()) as runtime:
            threads = [threading.Thread(target=client, args=(runtime, b))
                       for b in (0, 10, 20)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert runtime.stats.completed == 30
        assert runtime.stats.admitted == 30


class TestLatencyReservoir:
    """latency_quantiles() samples a bounded *seeded* reservoir, so the
    lifetime estimate is deterministic for a given request order and
    never grows with the soak length."""

    def test_reservoir_config_knobs_validated(self):
        with pytest.raises(ValueError, match="reservoir_size"):
            RuntimeConfig(reservoir_size=0)
        with pytest.raises(ValueError, match="reservoir_size"):
            RuntimeConfig(reservoir_size=-8)

    def test_sample_is_bounded_by_capacity(self, service):
        config = fast_config(reservoir_size=16)
        with ServingRuntime(service, config) as runtime:
            for u in range(80):
                runtime.submit(u % 50, k=5).result(timeout=10.0)
        assert len(runtime._reservoir) == 16
        assert runtime._reservoir.seen == runtime.stats.completed == 80
        quantiles = runtime.latency_quantiles()
        assert quantiles["p50_ms"] >= 0.0
        assert quantiles["p99_ms"] >= quantiles["p50_ms"]

    def test_under_capacity_keeps_every_sample(self, service):
        with ServingRuntime(service, fast_config()) as runtime:
            for u in range(10):
                runtime.submit(u, k=5).result(timeout=10.0)
        assert len(runtime._reservoir) == 10
        assert runtime._reservoir.seen == 10

    def test_selection_is_seed_deterministic(self):
        """Which *positions* of the latency stream survive is a pure
        function of (capacity, seed) — replaying the same stream through
        a twin reservoir keeps identical samples."""
        from repro.obs.metrics import Reservoir
        config = RuntimeConfig(reservoir_size=32, reservoir_seed=7)
        twin = Reservoir(capacity=config.reservoir_size,
                         seed=config.reservoir_seed)
        stream = [float(i % 97) for i in range(500)]
        mirror = Reservoir(capacity=config.reservoir_size,
                           seed=config.reservoir_seed)
        for v in stream:
            twin.add(v)
            mirror.add(v)
        assert twin.values() == mirror.values()
        assert twin.seen == 500
