"""Embedding lookups and optimizers."""

import numpy as np
import pytest

from repro.nn import Embedding, Adam, SGD, Parameter
from repro.nn.init import xavier_uniform, xavier_normal, normal
from repro.tensor import Tensor


class TestEmbedding:
    def test_lookup_values(self):
        emb = Embedding(5, 3, rng=0)
        idx = np.array([0, 4, 2])
        np.testing.assert_allclose(emb(idx).data, emb.weight.data[idx])

    def test_2d_index_lookup(self):
        emb = Embedding(5, 3, rng=0)
        idx = np.array([[0, 1], [2, 3]])
        assert emb(idx).shape == (2, 2, 3)

    def test_gradient_accumulates_for_repeats(self):
        emb = Embedding(5, 3, rng=0)
        out = emb(np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], np.full(3, 3.0))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 3)
        with pytest.raises(ValueError):
            Embedding(3, 0)

    def test_deterministic_under_seed(self):
        a = Embedding(10, 4, rng=42).weight.data
        b = Embedding(10, 4, rng=42).weight.data
        np.testing.assert_array_equal(a, b)


class TestInitializers:
    def test_xavier_uniform_bounds(self):
        w = xavier_uniform((100, 50), rng=0)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)
        assert w.std() > bound / 4  # not degenerate

    def test_xavier_normal_std(self):
        w = xavier_normal((200, 100), rng=0)
        expected = np.sqrt(2.0 / 300)
        assert abs(w.std() - expected) / expected < 0.1

    def test_plain_normal(self):
        w = normal((500, 20), std=0.3, rng=0)
        assert abs(w.std() - 0.3) < 0.02

    def test_1d_shape_supported(self):
        assert xavier_uniform((8,), rng=0).shape == (8,)


def _quadratic_param(start):
    return Parameter(np.asarray(start, dtype=np.float64))


def _loss_of(p):
    return ((p - 3.0) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param([0.0])
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            _loss_of(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = _quadratic_param([0.0])
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                _loss_of(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)
        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = _quadratic_param([1.0])
        opt = SGD([p], lr=0.1, weight_decay=10.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero data gradient
        opt.step()
        assert abs(p.data[0]) < 1.0

    def test_skips_params_without_grad(self):
        p = _quadratic_param([1.0])
        SGD([p], lr=0.1).step()  # no grad set: no crash, no change
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param([0.0, 10.0])
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            _loss_of(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, 3.0], atol=1e-2)

    def test_first_step_size_is_lr(self):
        # With bias correction the very first Adam step ~= lr * sign(grad).
        p = _quadratic_param([0.0])
        opt = Adam([p], lr=0.5)
        opt.zero_grad()
        _loss_of(p).backward()
        opt.step()
        np.testing.assert_allclose(p.data, [0.5], atol=1e-6)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([_quadratic_param([0.0])], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_independent_state_per_param(self):
        p1 = _quadratic_param([0.0])
        p2 = _quadratic_param([100.0])
        opt = Adam([p1, p2], lr=0.3)
        for _ in range(50):
            opt.zero_grad()
            (_loss_of(p1) + _loss_of(p2)).backward()
            opt.step()
        # Both should move toward 3 despite very different gradient scales.
        assert abs(p1.data[0] - 3.0) < 2.0
        assert p2.data[0] < 100.0
