"""Regression: chunked batched evaluation == per-user reference, exactly.

The chunked fast path must be observationally identical to the per-user
oracle: same ranked lists, bit-identical per-user metric values, and
train-item masking preserved — across datasets, cutoffs, metric sets
and chunk sizes (including chunks that don't divide the user count).
"""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.eval import metrics as M
from repro.eval.evaluator import Evaluator, evaluate_scores
from repro.models.registry import get_model

ALL_METRICS = ("recall", "ndcg", "precision", "hit", "map")


def _assert_identical(result_fast, result_ref):
    assert result_fast.metrics.keys() == result_ref.metrics.keys()
    np.testing.assert_array_equal(result_fast.evaluated_users,
                                  result_ref.evaluated_users)
    for key in result_ref.per_user:
        np.testing.assert_array_equal(
            result_fast.per_user[key], result_ref.per_user[key],
            err_msg=f"chunked path diverged from per-user oracle on {key}")
    for key, value in result_ref.metrics.items():
        assert result_fast.metrics[key] == value


class TestChunkedMatchesPerUser:
    @pytest.mark.parametrize("ks", [(20,), (5, 10, 20, 50), (1,)])
    def test_all_metrics_tiny(self, tiny_dataset, ks):
        model = get_model("mf", tiny_dataset, dim=8, rng=0)
        fast = Evaluator(tiny_dataset, ks=ks, metric_names=ALL_METRICS,
                         chunked=True).evaluate(model)
        ref = Evaluator(tiny_dataset, ks=ks, metric_names=ALL_METRICS,
                        chunked=False).evaluate(model)
        _assert_identical(fast, ref)

    @pytest.mark.parametrize("batch_users", [1, 7, 256, 10_000])
    def test_chunk_sizes(self, tiny_dataset, batch_users):
        """Odd chunk sizes (incl. size 1 and one-big-chunk) stay exact."""
        model = get_model("mf", tiny_dataset, dim=8, rng=1)
        fast = Evaluator(tiny_dataset, ks=(5, 20), metric_names=ALL_METRICS,
                         batch_users=batch_users, chunked=True).evaluate(model)
        ref = Evaluator(tiny_dataset, ks=(5, 20), metric_names=ALL_METRICS,
                        chunked=False).evaluate(model)
        _assert_identical(fast, ref)

    def test_realistic_dataset(self):
        dataset = load_dataset("yelp2018-small")
        model = get_model("lightgcn", dataset, dim=16, rng=2)
        fast = Evaluator(dataset, ks=(20,), metric_names=ALL_METRICS,
                         chunked=True).evaluate(model)
        ref = Evaluator(dataset, ks=(20,), metric_names=ALL_METRICS,
                        chunked=False).evaluate(model)
        _assert_identical(fast, ref)

    def test_k_larger_than_catalogue(self, tiny_dataset):
        """K > num_items clamps identically on both paths."""
        big_k = tiny_dataset.num_items + 37
        model = get_model("mf", tiny_dataset, dim=8, rng=3)
        fast = Evaluator(tiny_dataset, ks=(big_k,), metric_names=ALL_METRICS,
                         chunked=True).evaluate(model)
        ref = Evaluator(tiny_dataset, ks=(big_k,), metric_names=ALL_METRICS,
                        chunked=False).evaluate(model)
        _assert_identical(fast, ref)


class TestMaskingPreserved:
    def test_train_items_never_recommended(self, tiny_dataset):
        """The vectorized mask still removes every train interaction."""
        model = get_model("mf", tiny_dataset, dim=8, rng=4)
        evaluator = Evaluator(tiny_dataset, ks=(20,), chunked=True)
        users = evaluator._test_users
        scores = model.predict_scores(user_ids=users)
        evaluator._mask_train_items(scores, users)
        for row, u in enumerate(users):
            train_items = tiny_dataset.train_items_by_user[u]
            if len(train_items):
                assert np.all(np.isneginf(scores[row, train_items]))
        top = M.rank_items(scores, 20)
        for row, u in enumerate(users):
            banned = set(int(i) for i in tiny_dataset.train_items_by_user[u])
            assert banned.isdisjoint(int(i) for i in top[row])

    def test_arbitrary_user_order_uses_fallback(self, tiny_dataset, rng):
        """Non-contiguous user sets still mask correctly (generic path)."""
        model = get_model("mf", tiny_dataset, dim=8, rng=6)
        evaluator = Evaluator(tiny_dataset, ks=(20,), chunked=True)
        users = evaluator._test_users.copy()
        rng.shuffle(users)
        users = users[::2]
        scores = model.predict_scores(user_ids=users)
        evaluator._mask_train_items(scores, users)
        for row, u in enumerate(users):
            train_items = tiny_dataset.train_items_by_user[u]
            if len(train_items):
                assert np.all(np.isneginf(scores[row, train_items]))
            kept = np.setdiff1d(np.arange(tiny_dataset.num_items),
                                np.asarray(train_items, dtype=np.int64))
            assert np.all(np.isfinite(scores[row, kept]))

    def test_same_ranked_lists(self, tiny_dataset):
        """Masking + ranking is deterministic and path-independent."""
        model = get_model("mf", tiny_dataset, dim=8, rng=5)
        for chunked in (True, False):
            evaluator = Evaluator(tiny_dataset, ks=(20,), chunked=chunked)
            users = evaluator._test_users
            scores = model.predict_scores(user_ids=users)
            evaluator._mask_train_items(scores, users)
            top = M.rank_items(scores, 20)
            if chunked:
                top_fast = top
            else:
                np.testing.assert_array_equal(top_fast, top)


class TestEvaluateScores:
    def test_precomputed_scores_roundtrip(self, tiny_dataset, rng):
        scores = rng.normal(
            size=(tiny_dataset.num_users, tiny_dataset.num_items))
        fast = evaluate_scores(scores, tiny_dataset, ks=(10,),
                               metric_names=ALL_METRICS)
        # evaluate_scores defaults to the chunked path; rebuild the
        # reference evaluator around the same fixed-score model.
        ref_eval = Evaluator(tiny_dataset, ks=(10,),
                             metric_names=ALL_METRICS, chunked=False)

        class _Fixed:
            training = False

            def eval(self):
                return self

            def train(self):
                return self

            def predict_scores(self, user_ids=None):
                if user_ids is None:
                    return scores.copy()
                return scores[np.asarray(user_ids, dtype=np.int64)].copy()

        ref = ref_eval.evaluate(_Fixed())
        _assert_identical(fast, ref)
