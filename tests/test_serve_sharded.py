"""Sharded serving: partition/round-trip semantics and bitwise parity.

The acceptance contract of the scatter-gather router: for every shard
count × partition axis × placement scheme, the sharded exact path
returns **bit-identical** items *and* scores to the unsharded
:class:`~repro.serve.index.ExactTopKIndex` — on the paper-shaped
``yelp2018-small`` preset, not just a toy.  The quantized per-shard
path is pinned the same way against the unsharded quantized index
(per-row quantization and the fixed-shape panel kernels make it exact
too).
"""

import json

import numpy as np
import pytest

from repro.data import load_dataset
from repro.losses import get_loss
from repro.models import get_model
from repro.serve import (ExactTopKIndex, QuantizedTopKIndex,
                         RecommendationService, ShardedRecommendationService,
                         ShardedTopKIndex, ShardManifest, ShardedManifest,
                         export_sharded_snapshot, export_snapshot,
                         is_sharded_snapshot, load_sharded_snapshot,
                         partition_ids)
from repro.train import TrainConfig, train_model

SHARD_COUNTS = (1, 2, 3, 7)
PARTITION_AXES = ("user", "item", "both")
STRATEGIES = ("contiguous", "hash")


@pytest.fixture(scope="module")
def tiny_cell(tiny_dataset, tmp_path_factory):
    """(model, dataset, unsharded snapshot) briefly trained on 'tiny'."""
    model = get_model("mf", tiny_dataset, dim=8, rng=0)
    config = TrainConfig(epochs=2, batch_size=64, n_negatives=8,
                         eval_every=0, patience=0, seed=0)
    train_model(model, get_loss("bsl"), tiny_dataset, config)
    out = tmp_path_factory.mktemp("tiny-flat")
    snapshot = export_snapshot(model, tiny_dataset, out, model_name="mf")
    return model, tiny_dataset, snapshot


@pytest.fixture(scope="module")
def yelp_cell(tmp_path_factory):
    """(model, dataset, unsharded snapshot) trained on yelp2018-small."""
    dataset = load_dataset("yelp2018-small")
    model = get_model("mf", dataset, dim=64, rng=0)
    config = TrainConfig(epochs=3, batch_size=1024, n_negatives=64,
                         eval_every=0, patience=0, seed=0)
    train_model(model, get_loss("bsl"), dataset, config)
    out = tmp_path_factory.mktemp("yelp-flat")
    snapshot = export_snapshot(model, dataset, out, model_name="mf")
    return model, dataset, snapshot


class TestPartitionIds:
    def test_contiguous_covers_in_order(self):
        parts = partition_ids(10, 3, "contiguous")
        assert [p.tolist() for p in parts] == [[0, 1, 2, 3], [4, 5, 6],
                                              [7, 8, 9]]

    def test_hash_is_residue_classes(self):
        parts = partition_ids(10, 3, "hash")
        assert [p.tolist() for p in parts] == [[0, 3, 6, 9], [1, 4, 7],
                                              [2, 5, 8]]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_partition_invariants(self, num_shards, strategy):
        """Every shard ascending + non-empty; union == arange exactly."""
        parts = partition_ids(53, num_shards, strategy)
        assert len(parts) == num_shards
        for part in parts:
            assert len(part) > 0
            assert np.all(np.diff(part) > 0)
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(53))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="num_shards"):
            partition_ids(10, 0)
        with pytest.raises(ValueError, match="non-empty"):
            partition_ids(3, 5)
        with pytest.raises(ValueError, match="strategy"):
            partition_ids(10, 2, "range")


class TestExportLoadRoundTrip:
    def test_layout_and_manifests(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=3, partition_by="both",
                                          strategy="hash", model_name="mf")
        assert is_sharded_snapshot(tmp_path)
        assert (tmp_path / "shards.json").is_file()
        manifest = sharded.manifest
        assert isinstance(manifest, ShardedManifest)
        assert manifest.num_user_shards == manifest.num_item_shards == 3
        assert manifest.strategy == "hash"
        assert len(manifest.version) == 16
        for entry in manifest.user_shards + manifest.item_shards:
            shard_dir = tmp_path / entry["path"]
            assert shard_dir.is_dir()
            child = ShardManifest.from_json(
                (shard_dir / "manifest.json").read_text())
            assert child.version == entry["version"]
            assert child.count == entry["count"]

    def test_partition_by_user_keeps_one_item_shard(self, tiny_cell,
                                                    tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=4, partition_by="user")
        assert sharded.manifest.num_user_shards == 4
        assert sharded.manifest.num_item_shards == 1

    def test_load_verify_detects_tamper(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        load_sharded_snapshot(tmp_path, verify=True)  # pristine passes
        target = tmp_path / "item-shard-01" / "item_embeddings.npy"
        table = np.load(target)
        table[0, 0] += 1.0
        np.save(target, table)
        with pytest.raises(ValueError, match="content hash mismatch"):
            load_sharded_snapshot(tmp_path, verify=True)

    def test_top_level_version_pins_children(self, tiny_cell, tmp_path):
        """Editing shards.json itself is caught by the top-level hash."""
        model, dataset, _ = tiny_cell
        export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        manifest_path = tmp_path / "shards.json"
        payload = json.loads(manifest_path.read_text())
        payload["version"] = "0" * 16
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="does not match"):
            load_sharded_snapshot(tmp_path, verify=True)

    def test_unknown_manifest_fields_rejected(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        manifest_path = tmp_path / "shards.json"
        payload = json.loads(manifest_path.read_text())
        payload["replicas"] = 2
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unknown fields"):
            load_sharded_snapshot(tmp_path)

    def test_load_rejects_unsharded_dir(self, tiny_cell):
        _, _, snapshot = tiny_cell
        with pytest.raises(FileNotFoundError, match="shards.json"):
            load_sharded_snapshot(snapshot.path)

    def test_export_rejects_bad_partition_by(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        with pytest.raises(ValueError, match="partition_by"):
            export_sharded_snapshot(model, dataset, tmp_path, shards=2,
                                    partition_by="rows")

    def test_unsharded_reexport_removes_sharded_layout(self, tiny_cell,
                                                       tmp_path):
        """Overwriting a sharded dir with a flat export must not leave a
        stale shards.json that `recommend` would route to."""
        model, dataset, _ = tiny_cell
        export_sharded_snapshot(model, dataset, tmp_path, shards=3)
        assert is_sharded_snapshot(tmp_path)
        export_snapshot(model, dataset, tmp_path)
        assert not is_sharded_snapshot(tmp_path)
        assert not list(tmp_path.glob("*-shard-*"))
        from repro.serve import load_snapshot
        load_snapshot(tmp_path, verify=True)

    def test_sharded_reexport_removes_flat_layout(self, tiny_cell,
                                                  tmp_path):
        model, dataset, _ = tiny_cell
        export_snapshot(model, dataset, tmp_path)
        export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        assert is_sharded_snapshot(tmp_path)
        assert not (tmp_path / "manifest.json").exists()
        assert not (tmp_path / "user_embeddings.npy").exists()
        load_sharded_snapshot(tmp_path, verify=True)

    def test_shrinking_shard_count_leaves_no_orphans(self, tiny_cell,
                                                     tmp_path):
        model, dataset, _ = tiny_cell
        export_sharded_snapshot(model, dataset, tmp_path, shards=5)
        export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        assert sorted(p.name for p in tmp_path.glob("*-shard-*")) == [
            "item-shard-00", "item-shard-01",
            "user-shard-00", "user-shard-01"]
        load_sharded_snapshot(tmp_path, verify=True)

    def test_routing_tables(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=3, strategy="hash")
        users = np.arange(dataset.num_users, dtype=np.int64)
        owner, local = sharded.route_users(users)
        assert np.array_equal(owner, users % 3)
        for u in (0, 1, 5, dataset.num_users - 1):
            shard = sharded.user_shards[owner[u]]
            assert shard.ids[local[u]] == u
        # gathered rows match the unsharded table bit for bit
        rows = sharded.gather_user_rows(users)
        flat_users = np.load(tiny_cell[2].path / "user_embeddings.npy")
        np.testing.assert_array_equal(rows, flat_users)

    def test_gather_seen_matches_dataset(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=2, strategy="hash")
        users = np.array([3, 0, 7], dtype=np.int64)
        indptr, seen = sharded.gather_seen(users)
        for row, u in enumerate(users):
            expected = np.asarray(dataset.train_items_by_user[u],
                                  dtype=np.int64)
            np.testing.assert_array_equal(seen[indptr[row]:indptr[row + 1]],
                                          expected)


class TestShardedParityTiny:
    """Exhaustive bitwise parity on 'tiny': all combos, seen on and off."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("partition_by", PARTITION_AXES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_exact_bitwise(self, tiny_cell, tmp_path, shards, partition_by,
                           strategy):
        model, dataset, snapshot = tiny_cell
        sharded = export_sharded_snapshot(
            model, dataset, tmp_path, shards=shards,
            partition_by=partition_by, strategy=strategy)
        users = np.arange(dataset.num_users, dtype=np.int64)
        reference = ExactTopKIndex(snapshot)
        router = ShardedTopKIndex(sharded)
        for filter_seen in (True, False):
            want = reference.topk(users, k=10, filter_seen=filter_seen)
            got = router.topk(users, k=10, filter_seen=filter_seen)
            np.testing.assert_array_equal(got.items, want.items)
            np.testing.assert_array_equal(got.scores, want.scores)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_quantized_bitwise(self, tiny_cell, tmp_path, strategy):
        model, dataset, snapshot = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=3, strategy=strategy)
        users = np.arange(dataset.num_users, dtype=np.int64)
        want = QuantizedTopKIndex(snapshot).topk(users, k=10)
        got = ShardedTopKIndex(sharded, kind="quantized").topk(users, k=10)
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)

    @pytest.mark.parametrize("model_name", ["lightgcn", "simplex", "cml"])
    def test_exact_bitwise_across_scorings(self, tiny_dataset, tmp_path,
                                           model_name):
        """inner / cosine / euclidean scoring all survive sharding."""
        model = get_model(model_name, tiny_dataset, dim=8, rng=0)
        snapshot = export_snapshot(model, tiny_dataset, tmp_path / "flat")
        sharded = export_sharded_snapshot(model, tiny_dataset,
                                          tmp_path / "sharded", shards=3,
                                          strategy="hash")
        users = np.arange(tiny_dataset.num_users, dtype=np.int64)
        want = ExactTopKIndex(snapshot).topk(users, k=10)
        got = ShardedTopKIndex(sharded).topk(users, k=10)
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)

    def test_k_exceeding_shard_size(self, tiny_cell, tmp_path):
        """k larger than any single shard still merges the full ranking."""
        model, dataset, snapshot = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path, shards=7)
        users = np.arange(8, dtype=np.int64)
        k = dataset.num_items  # every shard holds far fewer items
        want = ExactTopKIndex(snapshot).topk(users, k=k, filter_seen=False)
        got = ShardedTopKIndex(sharded).topk(users, k=k, filter_seen=False)
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)


class TestShardedParityYelp:
    """Acceptance: bit-identical rankings on yelp2018-small, every
    ``--shards`` ∈ {1, 2, 3, 7} × ``--partition-by`` combination."""

    @pytest.mark.parametrize("partition_by", PARTITION_AXES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_exact_bitwise(self, yelp_cell, tmp_path, shards, partition_by):
        model, dataset, snapshot = yelp_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=shards,
                                          partition_by=partition_by)
        users = np.arange(dataset.num_users, dtype=np.int64)
        want = ExactTopKIndex(snapshot).topk(users, k=10)
        got = ShardedTopKIndex(sharded).topk(users, k=10)
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)

    def test_hash_strategy_bitwise(self, yelp_cell, tmp_path):
        model, dataset, snapshot = yelp_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=3, strategy="hash")
        users = np.arange(dataset.num_users, dtype=np.int64)
        want = ExactTopKIndex(snapshot).topk(users, k=10)
        got = ShardedTopKIndex(sharded).topk(users, k=10)
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)


class TestShardedService:
    def test_matches_unsharded_service(self, tiny_cell, tmp_path):
        model, dataset, snapshot = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path, shards=3)
        service = ShardedRecommendationService(sharded)
        flat = RecommendationService(snapshot)
        users = np.arange(dataset.num_users, dtype=np.int64)
        for mine, theirs in zip(service.recommend(users, k=10),
                                flat.recommend(users, k=10)):
            assert mine.user_id == theirs.user_id
            np.testing.assert_array_equal(mine.items, theirs.items)
            np.testing.assert_array_equal(mine.scores, theirs.scores)

    def test_cache_keyed_on_sharded_version(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        service = ShardedRecommendationService(sharded)
        first = service.recommend_one(3, k=5)
        again = service.recommend_one(3, k=5)
        assert not first.from_cache and again.from_cache
        assert again.snapshot_version == sharded.version
        np.testing.assert_array_equal(first.items, again.items)

    def test_micro_batching_inherited(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        service = ShardedRecommendationService(sharded, max_batch=64)
        handles = [service.submit(u, k=5) for u in range(6)]
        assert service.pending == 6
        results = [h.result() for h in handles]
        assert service.pending == 0
        assert [r.user_id for r in results] == list(range(6))

    def test_router_stats_accumulate(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path, shards=3)
        service = ShardedRecommendationService(sharded, cache_size=0)
        service.recommend(np.arange(20), k=5)
        stats = service.router_stats
        assert stats.sweeps >= 1 and stats.users_routed >= 20
        assert stats.score_s > 0 and stats.merge_s > 0
        assert 0.0 <= stats.merge_fraction < 1.0
        stats.reset()
        assert stats.sweeps == 0 and stats.merge_s == 0.0

    def test_input_validation(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        router = ShardedTopKIndex(sharded)
        with pytest.raises(ValueError, match="k must be positive"):
            router.topk([0], k=0)
        with pytest.raises(ValueError, match="user ids"):
            router.topk([dataset.num_users], k=5)
        with pytest.raises(ValueError, match="chunk_users"):
            ShardedTopKIndex(sharded, chunk_users=0)
        with pytest.raises(KeyError, match="unknown shard index kind"):
            ShardedTopKIndex(sharded, kind="faiss")

    def test_kind_tags(self, tiny_cell, tmp_path):
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path, shards=2)
        assert ShardedTopKIndex(sharded).kind == "sharded-exact"
        assert ShardedTopKIndex(sharded,
                                kind="quantized").kind == "sharded-quantized"
        assert all(b > 0 for b in
                   ShardedTopKIndex(sharded).per_shard_table_bytes)


class TestShardedCLI:
    def test_export_and_recommend_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "sharded-snap"
        rc = main(["export", "--dataset", "tiny", "--model", "mf",
                   "--loss", "sl", "--epochs", "1", "--dim", "8",
                   "--shards", "3", "--partition-by", "both",
                   "--partition", "hash", "--out", str(out)])
        assert rc == 0
        assert is_sharded_snapshot(out)
        assert "sharded snapshot" in capsys.readouterr().out
        rc = main(["recommend", "--snapshot", str(out), "--users", "0,1,2",
                   "--k", "5", "--verify"])
        assert rc == 0
        shown = capsys.readouterr().out
        assert "sharded-exact" in shown

    def test_recommend_quantized_on_sharded(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "sharded-snap"
        main(["export", "--dataset", "tiny", "--model", "mf", "--loss",
              "sl", "--epochs", "1", "--dim", "8", "--shards", "2",
              "--out", str(out)])
        capsys.readouterr()
        rc = main(["recommend", "--snapshot", str(out), "--users", "0",
                   "--index", "quantized"])
        assert rc == 0
        assert "sharded-quantized" in capsys.readouterr().out


class TestConcurrentFanout:
    """Thread-pool shard fan-out must stay bit-identical to sequential.

    The pool maps over the shard list in order and each shard's scores
    come from the same fixed-shape panel kernels regardless of which
    thread runs them, so the merge consumes identical partials in an
    identical order — pinned here for workers > available cores too.
    """

    @pytest.fixture(scope="class")
    def tiny_sharded(self, tiny_cell, tmp_path_factory):
        model, dataset, _ = tiny_cell
        out = tmp_path_factory.mktemp("tiny-fanout")
        return export_sharded_snapshot(model, dataset, out, shards=3)

    @pytest.mark.parametrize("workers", (2, 3, 8))
    def test_bitwise_vs_sequential(self, tiny_cell, tiny_sharded, workers):
        _, dataset, snapshot = tiny_cell
        users = np.arange(dataset.num_users, dtype=np.int64)
        sequential = ShardedTopKIndex(tiny_sharded, workers=1)
        concurrent = ShardedTopKIndex(tiny_sharded, workers=workers)
        reference = ExactTopKIndex(snapshot)
        try:
            for filter_seen in (True, False):
                want = sequential.topk(users, k=10, filter_seen=filter_seen)
                got = concurrent.topk(users, k=10, filter_seen=filter_seen)
                np.testing.assert_array_equal(got.items, want.items)
                np.testing.assert_array_equal(got.scores, want.scores)
                flat = reference.topk(users, k=10, filter_seen=filter_seen)
                np.testing.assert_array_equal(got.items, flat.items)
                np.testing.assert_array_equal(got.scores, flat.scores)
        finally:
            concurrent.close()

    def test_quantized_bitwise_concurrent(self, tiny_cell, tiny_sharded):
        _, dataset, snapshot = tiny_cell
        users = np.arange(dataset.num_users, dtype=np.int64)
        want = QuantizedTopKIndex(snapshot).topk(users, k=10)
        router = ShardedTopKIndex(tiny_sharded, kind="quantized", workers=3)
        try:
            got = router.topk(users, k=10)
        finally:
            router.close()
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)

    def test_ann_routed_bitwise_concurrent(self, tiny_cell, tiny_sharded,
                                           tmp_path):
        """Full-probe ANN candidates through the concurrent fan-out stay
        bit-identical to the sequential ANN-routed path."""
        from repro.ann import build_ann_index
        _, dataset, snapshot = tiny_cell
        built = build_ann_index(snapshot, tmp_path / "ann", nlist=4, seed=0)
        users = np.arange(dataset.num_users, dtype=np.int64)
        kwargs = dict(kind="exact", ann=built, ann_nprobe=4)
        want = ShardedTopKIndex(tiny_sharded, workers=1, **kwargs
                                ).topk(users, k=10)
        router = ShardedTopKIndex(tiny_sharded, workers=2, **kwargs)
        try:
            got = router.topk(users, k=10)
        finally:
            router.close()
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)

    def test_default_workers_bounded_by_cpus(self, tiny_sharded):
        import os
        router = ShardedTopKIndex(tiny_sharded)
        assert router.workers == min(3, os.cpu_count() or 1)

    def test_negative_workers_rejected(self, tiny_sharded):
        with pytest.raises(ValueError, match="workers"):
            ShardedTopKIndex(tiny_sharded, workers=-1)

    def test_pool_is_lazy_and_close_idempotent(self, tiny_sharded):
        router = ShardedTopKIndex(tiny_sharded, workers=2)
        assert router._pool is None  # nothing routed yet
        router.close()               # close before first use is a no-op
        router.topk(np.arange(4, dtype=np.int64), k=5)
        assert router._pool is not None
        router.close()
        assert router._pool is None
        # Router stays usable after close: next route reopens a pool.
        router.topk(np.arange(4, dtype=np.int64), k=5)
        assert router._pool is not None
        router.close()
        router.close()

    def test_sequential_router_never_opens_pool(self, tiny_sharded):
        router = ShardedTopKIndex(tiny_sharded, workers=1)
        router.topk(np.arange(8, dtype=np.int64), k=5)
        assert router._pool is None

    def test_service_threads_workers_through(self, tiny_sharded):
        service = ShardedRecommendationService(tiny_sharded, workers=2)
        assert service.index.workers == 2
        service.recommend([0, 1], k=5)
        service.index.close()

    def test_repr_shows_workers(self, tiny_sharded):
        assert "workers=2" in repr(ShardedTopKIndex(tiny_sharded, workers=2))


class TestMergeUnderflow:
    """The `_merge_partials` underflow guard and the invariant that makes
    it unreachable through contract-abiding routers."""

    def test_narrow_partial_raises_instead_of_heap_crash(self):
        from repro.serve.router import _merge_partials
        # Two shards, each (wrongly) carrying a single column for k=3:
        # 2 total candidates cannot fill 3 ranks.
        partials = [
            (np.array([[0]], dtype=np.int64), np.array([[1.0]])),
            (np.array([[5]], dtype=np.int64), np.array([[0.5]])),
        ]
        with pytest.raises(ValueError, match="underflow"):
            _merge_partials(partials, k=3)

    def test_empty_partial_raises(self):
        from repro.serve.router import _merge_partials
        partials = [
            (np.empty((1, 0), dtype=np.int64), np.empty((1, 0))),
            (np.empty((1, 0), dtype=np.int64), np.empty((1, 0))),
        ]
        with pytest.raises(ValueError, match="underflow"):
            _merge_partials(partials, k=1)

    def test_contract_widths_cannot_underflow(self, tiny_cell, tmp_path):
        """sum_s min(k, n_s) >= min(k, sum_s n_s): with k clipped to the
        catalogue upstream, contract-abiding partials always fill k."""
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=7)
        router = ShardedTopKIndex(sharded)
        sizes = [len(ix.shard) for ix in router.shard_indexes]
        for k in (1, 5, min(sizes), max(sizes) + 1, dataset.num_items):
            assert sum(min(k, n) for n in sizes) >= min(k, sum(sizes))
            result = router.topk(np.arange(4, dtype=np.int64), k=k,
                                 filter_seen=False)
            assert result.items.shape[1] == min(k, dataset.num_items)

    def test_ann_starved_shard_keeps_contract_width(self, tiny_cell,
                                                    tmp_path):
        """A shard owning fewer than k *candidates* must still pad its
        partial to min(k, shard_size) columns — the candidate restriction
        masks scores to -inf, it never narrows the partial."""
        from repro.serve.index import scoring_ready_users
        model, dataset, _ = tiny_cell
        sharded = export_sharded_snapshot(model, dataset, tmp_path,
                                          shards=3)
        router = ShardedTopKIndex(sharded)
        shard_index = router.shard_indexes[0]
        owned = shard_index.shard.ids
        assert len(owned) > 2
        vectors = scoring_ready_users(
            sharded.gather_user_rows(np.array([0], dtype=np.int64)),
            sharded.scoring)
        # Candidate CSR granting this user a single item of this shard.
        cand_indptr = np.array([0, 1], dtype=np.int64)
        cand_global = owned[:1].astype(np.int64)
        k = 5
        ids, scores = shard_index.partial_topk(vectors, k,
                                               cand_indptr=cand_indptr,
                                               cand_global=cand_global)
        assert ids.shape == (1, min(k, len(owned)))
        assert ids[0, 0] == cand_global[0]       # the one real candidate
        assert np.isfinite(scores[0, 0])
        assert np.all(np.isinf(scores[0, 1:]))   # padding, masked to -inf

    def test_ann_low_probe_routing_never_underflows(self, tiny_cell,
                                                    tmp_path):
        """End to end: minimal-probe candidate routing over many shards
        still merges full-width rankings for every user."""
        from repro.ann import build_ann_index
        model, dataset, snapshot = tiny_cell
        sharded = export_sharded_snapshot(model, dataset,
                                          tmp_path / "sharded", shards=7)
        built = build_ann_index(snapshot, tmp_path / "ann", nlist=8,
                                default_nprobe=1, seed=0)
        router = ShardedTopKIndex(sharded, ann=built, ann_nprobe=1)
        users = np.arange(dataset.num_users, dtype=np.int64)
        for filter_seen in (True, False):
            result = router.topk(users, k=10, filter_seen=filter_seen)
            assert result.items.shape == (dataset.num_users, 10)
