"""Experiment harness, presets and report printers."""

import numpy as np
import pytest

from repro.experiments import (ExperimentSpec, run_experiment,
                               build_components, collect_negative_scores)
from repro.experiments import presets, report


def _fast_spec(**overrides):
    defaults = dict(dataset="tiny", model="mf", loss="sl",
                    loss_kwargs={"tau": 0.2}, dim=8, epochs=3,
                    batch_size=256, n_negatives=16)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestHarness:
    def test_run_returns_metrics_and_model(self):
        result = run_experiment(_fast_spec())
        assert "ndcg@20" in result.metrics
        assert result.model is not None
        assert len(result.loss_history) == 3

    def test_positive_noise_trains_on_noisy_evaluates_clean(self):
        result = run_experiment(_fast_spec(positive_noise=0.3))
        assert result.train_dataset.num_train > result.dataset.num_train
        np.testing.assert_array_equal(result.train_dataset.test_pairs,
                                      result.dataset.test_pairs)

    def test_eval_ks_respected(self):
        result = run_experiment(_fast_spec(eval_ks=(5, 10)))
        assert set(result.metrics) == {"recall@5", "ndcg@5", "recall@10",
                                       "ndcg@10"}

    def test_spec_key_stable_and_distinct(self):
        a, b = _fast_spec(), _fast_spec()
        assert a.key() == b.key()
        assert a.key() != _fast_spec(seed=1).key()

    def test_extra_analysis_losses_resolvable(self):
        result = run_experiment(_fast_spec(loss="sl-novar",
                                           loss_kwargs={"tau": 0.2}))
        assert "ndcg@20" in result.metrics

    def test_build_components(self):
        clean, train_ds, model, loss = build_components(
            _fast_spec(positive_noise=0.2))
        assert clean is not train_ds
        assert model.num_users == clean.num_users

    def test_collect_negative_scores_shape(self):
        result = run_experiment(_fast_spec())
        scores = collect_negative_scores(result, n_users=10, n_negatives=20)
        assert scores.shape == (10, 20)
        assert np.all(np.isfinite(scores))


class TestPresets:
    def test_fig1_grid_shape(self):
        specs = presets.fig1_specs()
        assert len(specs) == 2 * 2 * 4
        assert all(s.loss in ("bpr", "mse", "bce", "sl")
                   for s in specs.values())

    def test_table2_contains_all_rows(self):
        specs = presets.table2_specs()
        labels = {label for _, label in specs}
        for expected in ("MF+BPR", "NGCF+SL", "LGN+BSL", "CML", "ENMF",
                         "SGL", "SimGCL", "LightGCL"):
            assert expected in labels

    def test_table3_variants(self):
        specs = presets.table3_specs()
        variants = {v for _, _, v in specs}
        assert variants == {"base", "sl", "bsl"}

    def test_fig3_sweep_axes(self):
        specs = presets.fig3_specs()
        noises = sorted({r for r, _ in specs})
        assert noises == [0.0, 0.5, 1.0, 2.0, 3.0]
        for (rnoise, tau), spec in specs.items():
            assert spec.rnoise == rnoise
            assert spec.loss_kwargs["tau"] == tau

    def test_table4_bsl_ratio_grows_with_noise(self):
        specs = presets.table4_specs()
        low = specs[("yelp2018-small", 0.1, "bsl")].loss_kwargs
        high = specs[("yelp2018-small", 0.4, "bsl")].loss_kwargs
        assert high["tau1"] / high["tau2"] > low["tau1"] / low["tau2"]

    def test_fig13_ratio_axis(self):
        specs = presets.fig13_specs()
        ratios = sorted({r for _, _, r in specs})
        assert ratios == [0.5, 0.8, 1.0, 1.2, 1.4, 2.0]

    def test_fig8_grid_cells(self):
        specs = presets.fig8_specs()
        for (_, loss, rnoise), candidates in specs.items():
            assert isinstance(candidates, list) and candidates
            for spec in candidates:
                assert spec.rnoise == rnoise
                assert spec.loss == loss
        # SL/BSL cells carry a tau grid (Corollary III.1 retuning).
        sl_cell = specs[("yelp2018-small", "sl", 10.0)]
        assert len(sl_cell) >= 2

    def test_fig9_negative_counts(self):
        specs = presets.fig9_specs()
        for (_, _, n), spec in specs.items():
            assert spec.n_negatives == n

    def test_fig12_dims(self):
        specs = presets.fig12_specs()
        dims = sorted({d for _, _, d in specs})
        assert dims == [32, 64, 128]

    def test_tuned_loss_kwargs(self):
        clean = presets.tuned_loss_kwargs("bsl", 0.0)
        noisy = presets.tuned_loss_kwargs("bsl", 0.4)
        # ratio > 1 even clean (the presets carry intrinsic noise) and
        # grows with injected noise.
        assert clean["tau1"] > clean["tau2"]
        assert noisy["tau1"] > clean["tau1"]


class TestReport:
    def test_format_table_alignment(self):
        text = report.format_table(["name", "value"],
                                   [["sl", 0.123456], ["bsl", 0.2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.1235" in text
        assert all(len(line) == len(lines[0]) for line in lines[:1])

    def test_print_series(self, capsys):
        report.print_series("SL", [0.1, 0.2], [0.5, 0.6])
        out = capsys.readouterr().out
        assert "(0.1000, 0.5000)" in out

    def test_relative_gain(self):
        assert report.relative_gain(1.15, 1.0) == pytest.approx(15.0)
        assert report.relative_gain(0.5, 0.0) == float("inf")

    def test_print_table(self, capsys):
        report.print_table("T", ["a"], [[1.0]])
        out = capsys.readouterr().out
        assert "T" in out and "1.0000" in out
