"""t-SNE and separation scores."""

import numpy as np
import pytest

from repro.analysis import (tsne, silhouette_score,
                            cluster_separation_ratio, alignment_uniformity)


def _blobs(rng, n_per=20, centers=((0, 0, 0), (8, 8, 8), (-8, 8, -8))):
    points, labels = [], []
    for c, center in enumerate(centers):
        points.append(rng.normal(size=(n_per, 3)) + np.asarray(center))
        labels.extend([c] * n_per)
    return np.concatenate(points), np.asarray(labels)


class TestTsne:
    def test_output_shape(self, rng):
        x, _ = _blobs(rng)
        y = tsne(x, n_components=2, n_iter=60, rng=0)
        assert y.shape == (len(x), 2)
        assert np.all(np.isfinite(y))

    def test_preserves_cluster_structure(self, rng):
        x, labels = _blobs(rng)
        y = tsne(x, perplexity=10, n_iter=250, rng=0)
        assert silhouette_score(y, labels) > 0.3

    def test_deterministic_under_seed(self, rng):
        x, _ = _blobs(rng, n_per=8)
        a = tsne(x, n_iter=50, rng=3)
        b = tsne(x, n_iter=50, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((3, 4)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            tsne(np.zeros(10))

    def test_centered_output(self, rng):
        x, _ = _blobs(rng, n_per=10)
        y = tsne(x, n_iter=50, rng=0)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-8)


class TestSilhouette:
    def test_separated_blobs_high(self, rng):
        x, labels = _blobs(rng)
        assert silhouette_score(x, labels) > 0.7

    def test_shuffled_labels_low(self, rng):
        x, labels = _blobs(rng)
        shuffled = labels.copy()
        rng.shuffle(shuffled)
        assert silhouette_score(x, shuffled) < 0.2

    def test_requires_two_clusters(self, rng):
        with pytest.raises(ValueError):
            silhouette_score(rng.normal(size=(5, 2)), np.zeros(5))

    def test_range(self, rng):
        x, labels = _blobs(rng)
        s = silhouette_score(x, labels)
        assert -1.0 <= s <= 1.0


class TestSeparationRatio:
    def test_separated_greater_than_overlapping(self, rng):
        x_far, labels = _blobs(rng)
        x_near, _ = _blobs(rng, centers=((0, 0, 0), (1, 0, 0), (0, 1, 0)))
        assert (cluster_separation_ratio(x_far, labels)
                > cluster_separation_ratio(x_near, labels))

    def test_requires_populated_clusters(self, rng):
        with pytest.raises(ValueError):
            cluster_separation_ratio(rng.normal(size=(3, 2)),
                                     np.array([0, 1, 2]))


class TestAlignmentUniformity:
    def test_tight_clusters_align_better(self, rng):
        x_tight, labels = _blobs(rng)
        x_loose = x_tight + rng.normal(size=x_tight.shape) * 20
        a_tight, _ = alignment_uniformity(x_tight, labels)
        a_loose, _ = alignment_uniformity(x_loose, labels)
        assert a_tight < a_loose

    def test_alignment_non_negative(self, rng):
        x, labels = _blobs(rng)
        alignment, _ = alignment_uniformity(x, labels)
        assert alignment >= 0

    def test_uniformity_negative(self, rng):
        x, labels = _blobs(rng)
        _, uniformity = alignment_uniformity(x, labels)
        assert uniformity <= 0
