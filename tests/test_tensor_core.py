"""Core Tensor behaviour: construction, backward mechanics, graph rules."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_float_dtype_coercion(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)

    def test_preserves_float32(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalars(self):
        t = as_tensor(3.5)
        assert t.item() == 3.5

    def test_item_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([1.0, 2.0]).item()

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestBackwardMechanics:
    def test_scalar_backward_seeds_ones(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_nonscalar_backward_requires_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_explicit_seed_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad_resets(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x uses x via two paths; grad = 4x
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        z = y + y
        z.sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_reused_node_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3
        z = (y * y).sum()  # z = 9x^2, dz/dx = 18x
        z.backward()
        np.testing.assert_allclose(x.grad, [36.0])

    def test_deep_chain_does_not_overflow(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_grad_without_requires_grad(self):
        x = Tensor([1.0])
        (x * 2).sum().backward()
        assert x.grad is None


class TestNoGrad:
    def test_context_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert y._parents == ()

    def test_flag_restored_after_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_flag_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        (y * 3).sum().backward()
        assert x.grad is None


class TestComparisons:
    def test_comparisons_return_numpy_bools(self):
        a = Tensor([1.0, 3.0])
        b = Tensor([2.0, 2.0])
        np.testing.assert_array_equal(a > b, [False, True])
        np.testing.assert_array_equal(a < 2.0, [True, False])
        np.testing.assert_array_equal(a >= 1.0, [True, True])
        np.testing.assert_array_equal(a <= b, [True, False])


class TestShapeHelpers:
    def test_unsqueeze_squeeze_roundtrip(self):
        x = Tensor(np.zeros((4, 5)))
        y = x.unsqueeze(1)
        assert y.shape == (4, 1, 5)
        assert y.squeeze(1).shape == (4, 5)

    def test_unsqueeze_negative_axis(self):
        assert Tensor(np.zeros(3)).unsqueeze(-1).shape == (3, 1)

    def test_squeeze_rejects_non_unit_axis(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 3))).squeeze(1)

    def test_transpose_property(self):
        assert Tensor(np.zeros((2, 5))).T.shape == (5, 2)

    def test_reshape_accepts_tuple_or_args(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).shape == (3, 2)
