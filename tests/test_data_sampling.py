"""Negative samplers: coverage, noise rates, in-batch construction."""

import numpy as np
import pytest

from repro.data import (InBatchSampler, PopularityNegativeSampler,
                        UniformNegativeSampler)


class TestUniformSampler:
    def test_epoch_covers_all_pairs(self, tiny_dataset):
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=4,
                                         batch_size=64, rng=0)
        seen = []
        for batch in sampler.epoch():
            assert batch.negatives.shape == (len(batch), 4)
            seen.extend(zip(batch.users.tolist(), batch.positives.tolist()))
        assert len(seen) == tiny_dataset.num_train
        assert set(seen) == {(int(u), int(i))
                             for u, i in tiny_dataset.train_pairs}

    def test_shuffles_between_epochs(self, tiny_dataset):
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=2,
                                         batch_size=10_000, rng=0)
        first = next(iter(sampler.epoch())).users.copy()
        second = next(iter(sampler.epoch())).users.copy()
        assert not np.array_equal(first, second)

    def test_clean_negatives_avoid_positives(self, tiny_dataset):
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=16,
                                         batch_size=10_000, rng=0)
        batch = next(iter(sampler.epoch()))
        mask = tiny_dataset.positive_mask()
        collisions = mask[batch.users[:, None], batch.negatives]
        assert collisions.mean() < 0.01

    def test_rnoise_rate_matches_definition(self, tiny_dataset):
        """Empirical false-negative rate must match the rnoise formula.

        Each positive item is rnoise times as likely as each negative
        item, so for user u the per-slot rate is
        r*deg / (r*deg + (n_items - deg)); the batch aggregates users
        proportionally to their degree.
        """
        rnoise = 3.0
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=200,
                                         batch_size=10_000, rnoise=rnoise,
                                         rng=0)
        batch = next(iter(sampler.epoch()))
        mask = tiny_dataset.positive_mask()
        actual = mask[batch.users[:, None], batch.negatives].mean()
        deg = tiny_dataset.user_degree()[batch.users].astype(float)
        expected = (rnoise * deg / (rnoise * deg
                                    + tiny_dataset.num_items - deg)).mean()
        assert actual == pytest.approx(expected, rel=0.15)

    def test_rnoise_zero_equals_clean(self, tiny_dataset):
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=8,
                                         batch_size=256, rnoise=0.0, rng=0)
        batch = next(iter(sampler.epoch()))
        mask = tiny_dataset.positive_mask()
        assert mask[batch.users[:, None], batch.negatives].mean() < 0.01

    def test_monotone_in_rnoise(self, tiny_dataset):
        rates = []
        for rnoise in (0.5, 2.0, 8.0):
            sampler = UniformNegativeSampler(
                tiny_dataset, n_negatives=100, batch_size=10_000,
                rnoise=rnoise, rng=1)
            batch = next(iter(sampler.epoch()))
            mask = tiny_dataset.positive_mask()
            rates.append(mask[batch.users[:, None], batch.negatives].mean())
        assert rates[0] < rates[1] < rates[2]

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            UniformNegativeSampler(tiny_dataset, n_negatives=0)
        with pytest.raises(ValueError):
            UniformNegativeSampler(tiny_dataset, rnoise=-1.0)
        with pytest.raises(ValueError):
            UniformNegativeSampler(tiny_dataset, batch_size=0)

    def test_deterministic_under_seed(self, tiny_dataset):
        def draw(seed):
            s = UniformNegativeSampler(tiny_dataset, n_negatives=4,
                                       batch_size=128, rng=seed)
            return next(iter(s.epoch()))
        a, b = draw(7), draw(7)
        np.testing.assert_array_equal(a.negatives, b.negatives)
        np.testing.assert_array_equal(a.users, b.users)


class TestExactRedraw:
    """The one-shot masked redraw: exact, collision-free, and uniform."""

    def test_redraw_leaves_zero_collisions(self, tiny_dataset):
        """Unlike the old bounded rejection loop, the rank-mapped redraw
        can never leave a collision (no user in tiny is full-degree)."""
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=64,
                                         batch_size=10_000, rng=0)
        mask = tiny_dataset.positive_mask()
        for _ in range(3):
            batch = next(iter(sampler.epoch()))
            assert mask[batch.users[:, None], batch.negatives].sum() == 0

    def test_distribution_uniform_over_complement(self, tiny_dataset):
        """Fixed-seed statistical pin: per-item frequencies over the
        heaviest user's complement match the uniform law (chi-square
        statistic within 3 sigma of its dof, no item starved)."""
        deg = tiny_dataset.user_degree()
        user = int(np.argmax(deg))
        complement = np.setdiff1d(np.arange(tiny_dataset.num_items),
                                  tiny_dataset.train_items_by_user[user])
        sampler = UniformNegativeSampler(tiny_dataset, n_negatives=200,
                                         batch_size=10_000, rng=5)
        draws = []
        for _ in range(30):
            batch = next(iter(sampler.epoch()))
            draws.append(batch.negatives[batch.users == user].ravel())
        draws = np.concatenate(draws)
        counts = np.bincount(draws, minlength=tiny_dataset.num_items)
        assert counts[tiny_dataset.train_items_by_user[user]].sum() == 0
        assert (counts[complement] > 0).all()
        expected = len(draws) / len(complement)
        chi2 = ((counts[complement] - expected) ** 2 / expected).sum()
        dof = len(complement) - 1
        assert abs(chi2 - dof) <= 3.0 * np.sqrt(2.0 * dof), \
            f"chi2={chi2:.1f} vs dof={dof} — not uniform over complement"

    def test_full_degree_user_slots_left_untouched(self):
        """A user whose positives cover the catalogue has no complement;
        the redraw must leave those slots alone instead of crashing."""
        from repro.data import InteractionDataset
        pairs = np.array([[0, i] for i in range(3)] + [[1, 0]])
        ds = InteractionDataset(2, 3, pairs, np.array([[1, 1]]))
        sampler = UniformNegativeSampler(ds, n_negatives=8, batch_size=16,
                                         rng=0)
        batch = next(iter(sampler.epoch()))
        assert batch.negatives.shape == (len(batch), 8)
        # user 1's slots are clean (complement {1, 2} exists)
        clean = batch.negatives[batch.users == 1]
        assert not np.isin(clean, [0]).any()

    def test_sorted_padded_positives_contract(self, tiny_dataset):
        padded, degrees = tiny_dataset.sorted_padded_positives()
        for u in range(0, tiny_dataset.num_users, 7):
            items = np.unique(tiny_dataset.train_items_by_user[u])
            np.testing.assert_array_equal(padded[u, :degrees[u]], items)
            assert (padded[u, degrees[u]:] > tiny_dataset.num_items
                    + padded.shape[1]).all()


class TestPopularitySampler:
    def test_popular_items_oversampled(self, tiny_dataset):
        sampler = PopularityNegativeSampler(tiny_dataset, n_negatives=64,
                                            batch_size=10_000, beta=1.0,
                                            rng=0)
        batch = next(iter(sampler.epoch()))
        counts = np.bincount(batch.negatives.ravel(),
                             minlength=tiny_dataset.num_items)
        pop = tiny_dataset.item_popularity
        top = np.argsort(pop)[-10:]
        bottom = np.argsort(pop)[:10]
        assert counts[top].mean() > counts[bottom].mean()


class TestInBatchSampler:
    def test_negatives_are_other_positives(self, tiny_dataset):
        sampler = InBatchSampler(tiny_dataset, batch_size=32, rng=0)
        batch = next(iter(sampler.epoch()))
        b = len(batch)
        assert batch.negatives.shape == (b, b - 1)
        for row in range(b):
            expected = np.delete(batch.positives, row)
            np.testing.assert_array_equal(np.sort(batch.negatives[row]),
                                          np.sort(expected))

    def test_own_positive_excluded(self, tiny_dataset):
        sampler = InBatchSampler(tiny_dataset, batch_size=16, rng=0)
        batch = next(iter(sampler.epoch()))
        for row in range(len(batch)):
            # the row's own positive appears only if duplicated in batch
            own = batch.positives[row]
            dup_count = (batch.positives == own).sum() - 1
            assert (batch.negatives[row] == own).sum() == dup_count

    def test_single_pair_batch_skipped(self):
        from repro.data import InteractionDataset
        ds = InteractionDataset(2, 3, np.array([[0, 0]]),
                                np.array([[0, 1]]))
        sampler = InBatchSampler(ds, batch_size=8, rng=0)
        assert list(sampler.epoch()) == []
