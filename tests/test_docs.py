"""Documentation stays executable: README commands, links, docstrings.

Three families of checks keep the docs archetype honest:

* every ``python -m repro.cli ...`` line in README/docs code fences
  must parse against the *real* argparse tree (``repro.cli.build_parser``),
  so a renamed flag or verb breaks tier-1, not a user;
* the docs-link checker (``scripts/check_docs.py``) must report zero
  dangling file references and unknown CLI verbs;
* public CLI handlers and every public ``repro.serve`` entry point must
  carry docstrings.
"""

import importlib.util
import inspect
import pathlib
import re
import shlex

import pytest

from repro import cli

REPO_ROOT = pathlib.Path(__file__).parent.parent

_FENCE = re.compile(r"```[a-zA-Z]*\n(.*?)```", re.DOTALL)


def _doc_files():
    return [REPO_ROOT / "README.md",
            *sorted((REPO_ROOT / "docs").glob("*.md"))]


def _cli_command_lines():
    """(file, command) for every repro.cli invocation in doc code fences."""
    commands = []
    for path in _doc_files():
        for fence in _FENCE.findall(path.read_text()):
            for line in fence.splitlines():
                line = line.split(" #")[0].strip()  # drop trailing comments
                if (line.startswith(("python -m repro.cli", "PYTHONPATH"))
                        and "repro.cli" in line):
                    commands.append((path.name, line))
    return commands


class TestReadmeCommandsParse:
    def test_quickstart_commands_exist(self):
        """The README quickstart advertises the full train->serve flow."""
        verbs = [shlex.split(cmd)[3] for _, cmd in _cli_command_lines()
                 if len(shlex.split(cmd)) > 3]
        for required in ("train", "export", "recommend", "bench"):
            assert required in verbs, f"README lost the `{required}` example"

    @pytest.mark.parametrize(
        "source,command", _cli_command_lines(),
        ids=[f"{f}:{c[:60]}" for f, c in _cli_command_lines()])
    def test_command_parses(self, source, command):
        """Each documented command line parses against the real tree."""
        tokens = shlex.split(command)
        # strip env assignments and the `python -m repro.cli` prefix
        while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
            tokens.pop(0)
        assert tokens[:3] == ["python", "-m", "repro.cli"], command
        argv = tokens[3:]
        parser = cli.build_parser()
        try:
            parser.parse_args(argv)
        except SystemExit as exc:  # argparse reports errors via exit
            pytest.fail(f"{source}: {command!r} does not parse "
                        f"(exit {exc.code})")


class TestDocsLinks:
    def test_checker_finds_no_problems(self):
        spec = importlib.util.spec_from_file_location(
            "check_docs", REPO_ROOT / "scripts" / "check_docs.py")
        check_docs = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_docs)
        verbs = check_docs.cli_verbs()
        assert verbs >= {"train", "export", "recommend", "perf-serve"}
        problems = []
        for path in check_docs.doc_files():
            problems.extend(check_docs.check_file(path, verbs))
        assert problems == []

    def test_required_docs_exist(self):
        for path in ("README.md", "docs/architecture.md",
                     "docs/fastpath.md", "docs/sharding.md"):
            assert (REPO_ROOT / path).is_file(), f"{path} missing"

    def test_no_orphan_docs_pages(self):
        """Strict mode's warning class stays clean in-tree."""
        spec = importlib.util.spec_from_file_location(
            "check_docs", REPO_ROOT / "scripts" / "check_docs.py")
        check_docs = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_docs)
        assert check_docs.find_warnings(check_docs.doc_files()) == []


class TestDocstrings:
    def test_cli_handlers_documented(self):
        handlers = [obj for name, obj in vars(cli).items()
                    if name.startswith("_cmd_") and callable(obj)]
        assert len(handlers) >= 7
        undocumented = [h.__name__ for h in handlers if not inspect.getdoc(h)]
        assert undocumented == []
        assert inspect.getdoc(cli.build_parser)
        assert inspect.getdoc(cli.main)

    def test_serve_public_api_documented(self):
        import repro.serve as serve

        undocumented = []
        for name in serve.__all__:
            obj = getattr(serve, name)
            if isinstance(obj, str):
                continue
            if not inspect.getdoc(obj):
                undocumented.append(name)
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_") or not callable(member):
                        continue
                    if not inspect.getdoc(member):
                        undocumented.append(f"{name}.{mname}")
        assert undocumented == []

    def test_serve_modules_documented(self):
        import repro.serve
        import repro.serve.index
        import repro.serve.router
        import repro.serve.service
        import repro.serve.shard
        import repro.serve.snapshot

        for module in (repro.serve, repro.serve.index, repro.serve.router,
                       repro.serve.service, repro.serve.shard,
                       repro.serve.snapshot):
            assert module.__doc__ and len(module.__doc__) > 80
