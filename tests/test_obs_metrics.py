"""Metrics core: instruments, registry semantics, exporters, reservoir.

Pins the contracts ``docs/observability.md`` documents:

* exact counts under concurrency (instruments are lock-protected);
* deterministic histogram quantiles — a pure function of the bucket
  counts, invariant under observation order and merge association;
* the disabled registry's identity fast path (every request returns
  the shared null singleton, and recording is a true no-op);
* well-formed Prometheus v0.0.4 / JSON expositions.
"""

import json
import math
import threading

import pytest

from repro.obs.export import json as json_export
from repro.obs.export import prom
from repro.obs.metrics import (DEFAULT_BOUNDARIES, NULL_COUNTER, NULL_GAUGE,
                               NULL_HISTOGRAM, NULL_REGISTRY, Counter, Gauge,
                               Histogram, MetricsRegistry, Reservoir,
                               get_registry, set_registry, use_registry)


class TestCounter:
    def test_inc_defaults_to_one(self):
        c = Counter("t.c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        c = Counter("t.c")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_threaded_sums_are_exact(self):
        """≥4 writer threads, exact total — no lost updates."""
        c = Counter("t.c")
        per_thread, n_threads = 10_000, 6

        def work():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == per_thread * n_threads


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("t.g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistogram:
    def test_count_sum_and_buckets(self):
        h = Histogram("t.h")
        for v in (0.5, 1.0, 2.0, 1e-9, 1e9):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(0.5 + 1.0 + 2.0 + 1e-9 + 1e9)
        # underflow lands in bucket 0, overflow in the extra last bucket
        counts = h.bucket_counts()
        assert len(counts) == len(DEFAULT_BOUNDARIES) + 1
        assert counts[-1] == 1  # the 1e9 observation
        assert sum(counts) == 5

    def test_threaded_observations_are_exact(self):
        h = Histogram("t.h")
        per_thread, n_threads = 5_000, 4

        def work():
            for i in range(per_thread):
                h.observe(1.0 + (i % 7))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == per_thread * n_threads
        assert sum(h.bucket_counts()) == per_thread * n_threads

    def test_quantile_is_deterministic_under_order(self):
        """Quantiles depend only on the counts: shuffled observation
        order yields bit-identical estimates."""
        values = [0.1 * (i % 50) + 0.01 for i in range(1000)]
        a, b = Histogram("t.a"), Histogram("t.b")
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert a.quantile(q) == b.quantile(q)

    def test_quantile_is_upper_bucket_edge(self):
        h = Histogram("t.h")
        h.observe(3.0)
        edge = h.quantile(0.5)
        # the reported edge is the smallest boundary >= the observation
        assert edge >= 3.0
        assert edge == min(b for b in DEFAULT_BOUNDARIES if b >= 3.0)

    def test_quantile_finite_on_overflow(self):
        h = Histogram("t.h")
        h.observe(1e12)  # beyond the last boundary
        assert math.isfinite(h.quantile(0.99))
        assert h.quantile(0.99) == DEFAULT_BOUNDARIES[-1]

    def test_quantile_empty_and_bad_q(self):
        h = Histogram("t.h")
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_merge_is_associative_and_lossless(self):
        streams = ([0.01 * i for i in range(100)],
                   [0.5 + 0.03 * i for i in range(80)],
                   [10.0 + i for i in range(60)])
        parts = []
        union = Histogram("t.u")
        for stream in streams:
            h = Histogram("t.p")
            for v in stream:
                h.observe(v)
                union.observe(v)
            parts.append(h)
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.bucket_counts() == right.bucket_counts()
        # merged quantiles equal those of one histogram fed everything
        for q in (0.1, 0.5, 0.9, 0.99):
            assert left.quantile(q) == union.quantile(q)
            assert right.quantile(q) == union.quantile(q)
        assert left.count == union.count
        assert left.sum == pytest.approx(union.sum)

    def test_merge_rejects_mismatched_boundaries(self):
        a = Histogram("t.a", boundaries=(1.0, 2.0))
        b = Histogram("t.b", boundaries=(1.0, 3.0))
        with pytest.raises(ValueError, match="boundaries"):
            a.merge(b)

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("t.h", boundaries=(1.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            Histogram("t.h", boundaries=(1.0, float("inf")))

    def test_snapshot_lists_nonempty_buckets_only(self):
        h = Histogram("t.h")
        h.observe(1.0)
        h.observe(1e12)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert len(snap["buckets"]) == 2
        assert snap["buckets"][-1]["le"] == "+Inf"


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x.y", "help")
        b = reg.counter("x.y")
        assert a is b

    def test_labels_split_time_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x.y", labels={"instance": "0"})
        b = reg.counter("x.y", labels={"instance": "1"})
        assert a is not b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x.y")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "Upper.case", "1leading.digit", "trailing.dot.",
                    "spa ce"):
            with pytest.raises(ValueError, match="bad instrument name"):
                reg.counter(bad)

    def test_next_instance_increments_per_prefix(self):
        reg = MetricsRegistry()
        assert reg.next_instance("a") == "0"
        assert reg.next_instance("a") == "1"
        assert reg.next_instance("b") == "0"

    def test_collect_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.last")
        reg.counter("a.first")
        assert [i.name for i in reg.collect()] == ["a.first", "z.last"]

    def test_disabled_registry_identity_noops(self):
        """Every request on a disabled registry returns the shared
        singleton, and recording through it changes nothing."""
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("x.y") is NULL_COUNTER
        assert reg.counter("other.name") is NULL_COUNTER
        assert reg.gauge("x.g") is NULL_GAUGE
        assert reg.histogram("x.h") is NULL_HISTOGRAM
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0
        assert reg.collect() == []

    def test_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.counter("a.b") is NULL_COUNTER


class TestGlobalRegistry:
    def test_use_registry_scopes_and_restores(self):
        before = get_registry()
        fresh = MetricsRegistry()
        with use_registry(fresh) as active:
            assert active is fresh
            assert get_registry() is fresh
        assert get_registry() is before

    def test_set_registry_none_restores_default(self):
        previous = set_registry(NULL_REGISTRY)
        try:
            assert not get_registry().enabled
            set_registry(None)
            assert get_registry().enabled
        finally:
            set_registry(previous)


class TestReservoir:
    def test_deterministic_for_same_seed(self):
        a, b = Reservoir(capacity=32, seed=7), Reservoir(capacity=32, seed=7)
        for i in range(1000):
            a.add(float(i))
            b.add(float(i))
        assert a.values() == b.values()
        assert a.seen == b.seen == 1000

    def test_bounded_and_uniformish(self):
        r = Reservoir(capacity=64, seed=0)
        for i in range(10_000):
            r.add(float(i))
        assert len(r) == 64
        assert r.seen == 10_000
        # retained values come from the whole stream, not just the head
        assert max(r.values()) > 5000

    def test_keeps_everything_under_capacity(self):
        r = Reservoir(capacity=100, seed=0)
        for i in range(50):
            r.add(i)
        assert sorted(r.values()) == list(range(50))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Reservoir(capacity=0)


@pytest.fixture()
def populated_registry():
    reg = MetricsRegistry()
    reg.counter("serve.test.requests", "requests served").inc(41)
    reg.counter("serve.test.requests", "requests served",
                labels={"instance": "1"}).inc(1)
    reg.gauge("ann.test.staleness", "index staleness").set(0.25)
    h = reg.histogram("serve.test.latency_ms", "request latency")
    for v in (0.5, 1.0, 2.0, 1e9):
        h.observe(v)
    return reg


class TestPromExporter:
    def test_render_validates_clean(self, populated_registry):
        text = prom.render(populated_registry)
        assert prom.validate_exposition(text) == []

    def test_families_and_suffixes(self, populated_registry):
        text = prom.render(populated_registry)
        assert "# TYPE serve_test_requests_total counter" in text
        assert 'serve_test_requests_total 41' in text
        assert 'serve_test_requests_total{instance="1"} 1' in text
        assert "# TYPE ann_test_staleness gauge" in text
        assert "# TYPE serve_test_latency_ms histogram" in text
        assert 'serve_test_latency_ms_bucket{le="+Inf"} 4' in text
        assert "serve_test_latency_ms_count 4" in text

    def test_buckets_are_cumulative(self, populated_registry):
        text = prom.render(populated_registry)
        counts = []
        for line in text.splitlines():
            if line.startswith("serve_test_latency_ms_bucket"):
                counts.append(float(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf sees every observation

    def test_help_lines_unique_per_family(self, populated_registry):
        text = prom.render(populated_registry)
        helps = [line for line in text.splitlines()
                 if line.startswith("# HELP serve_test_requests_total")]
        assert len(helps) == 1  # two label sets, one family header

    def test_validator_flags_malformed_exposition(self):
        bad = ("# TYPE my_metric counter\n"
               "# TYPE my_metric gauge\n"
               "undeclared_sample 1\n"
               "not a sample line at all\n")
        problems = prom.validate_exposition(bad)
        assert problems  # duplicate TYPE + undeclared/malformed samples


class TestJsonExporter:
    def test_schema_and_roundtrip(self, populated_registry):
        payload = json.loads(json_export.render(populated_registry))
        assert payload["schema"] == json_export.SCHEMA
        names = {m["name"] for m in payload["metrics"]}
        assert {"serve.test.requests", "ann.test.staleness",
                "serve.test.latency_ms"} <= names
        hist = next(m for m in payload["metrics"]
                    if m["name"] == "serve.test.latency_ms")
        assert hist["count"] == 4
        assert hist["buckets"][-1]["le"] == "+Inf"
