"""Live-index serving: delta chains, incremental IVF, swap-under-traffic.

The churn soak drives ~200 randomized upsert/delete ops against a
yelp2018-small snapshot and, at every commit point, pins the three
live-index contracts end to end:

* **replay parity** — the delta-chain replay of the current state is
  byte-identical (all four arrays + manifest) to a from-scratch export
  of the same state;
* **incremental IVF parity** — the incrementally maintained index, at
  full probe, returns bit-identical top-K items *and scores* to an IVF
  index freshly re-clustered over the churned catalogue (recall@10
  within 1e-12 — in fact exactly 1);
* **service swap invariants** — across refreshes the
  :class:`~repro.serve.service.ServiceStats` ledger stays reconciled
  (``hits + misses == users_served``) and the LRU never holds an entry
  keyed to a retired snapshot version.

Alongside the soak: delta-algebra property tests (composition,
delete-then-upsert, out-of-order/wrong-base rejection), the
runtime-concurrency test (refresh mid-stream under sustained submit
load — no errors, no torn reads), and the poisoned-cache regressions
for the shared panel cache and the per-index routing tables.
"""

import threading
import time

import numpy as np
import pytest

from repro.ann import build_ann_index
from repro.ann.ivf import (IVFFlatIndex, IVFIndexData, assign_lists,
                           train_coarse_quantizer)
from repro.ann.pq import encode_residuals
from repro.data import load_dataset
from repro.models import MF
from repro.serve import (ExactTopKIndex, RecommendationService,
                         ServingRuntime, export_snapshot)
from repro.serve.delta import (LiveState, apply_deltas, export_delta,
                               export_state, replay_deltas)
from repro.serve.index import scoring_ready_items

#: every on-disk artifact of an unsharded snapshot, compared byte-wise
SNAPSHOT_FILES = ("manifest.json", "user_embeddings.npy",
                  "item_embeddings.npy", "seen_indptr.npy", "seen_items.npy")


@pytest.fixture(scope="module")
def small_dataset():
    return load_dataset("yelp2018-small")


@pytest.fixture(scope="module")
def small_snapshot(small_dataset, tmp_path_factory):
    model = MF(small_dataset.num_users, small_dataset.num_items, dim=16,
               rng=0)
    out = tmp_path_factory.mktemp("live-index") / "base"
    return export_snapshot(model, small_dataset, out)


def _fresh_ivf_data(snapshot, nlist: int, seed: int = 0) -> IVFIndexData:
    """From-scratch IVF build over a snapshot's current catalogue."""
    items_ready = scoring_ready_items(np.asarray(snapshot.items),
                                      snapshot.scoring)
    centroids, _ = train_coarse_quantizer(items_ready, nlist, seed=seed)
    lists = assign_lists(items_ready, centroids)
    indptr = np.concatenate([np.zeros(1, dtype=np.int64),
                             np.cumsum([len(l) for l in lists])])
    return IVFIndexData(centroids, indptr, np.concatenate(lists),
                        snapshot.manifest.num_items, nlist)


def _random_op(state: LiveState, rng, next_ids: dict) -> None:
    """One randomized churn op; keeps the state large enough to delete."""
    item_ids = np.array(sorted(state.items))
    user_ids = np.array(sorted(state.users))
    roll = rng.random()
    if roll < 0.35:
        state.upsert_item(int(rng.choice(item_ids)),
                          rng.normal(size=state.dim))
    elif roll < 0.50:
        state.upsert_item(next_ids["item"], rng.normal(size=state.dim))
        next_ids["item"] += 1
    elif roll < 0.65:
        seen = rng.choice(item_ids, size=min(6, len(item_ids)),
                          replace=False)
        state.upsert_user(int(rng.choice(user_ids)),
                          rng.normal(size=state.dim), np.sort(seen))
    elif roll < 0.75:
        seen = rng.choice(item_ids, size=min(3, len(item_ids)),
                          replace=False)
        state.upsert_user(next_ids["user"], rng.normal(size=state.dim),
                          np.sort(seen))
        next_ids["user"] += 1
    elif roll < 0.90 and len(item_ids) > 32:
        state.delete_item(int(rng.choice(item_ids)))
    elif len(user_ids) > 32:
        state.delete_user(int(rng.choice(user_ids)))
    else:
        state.upsert_item(int(rng.choice(item_ids)),
                          rng.normal(size=state.dim))


class TestChurnSoak:
    SOAK_OPS = 200
    COMMIT_EVERY = 25
    NLIST = 10
    K = 10

    def test_soak_replay_ivf_and_service_invariants(self, small_snapshot,
                                                    tmp_path):
        base = small_snapshot
        rng = np.random.default_rng(42)
        prev = LiveState.from_snapshot(base)
        state = prev.copy()
        next_ids = {"item": base.manifest.num_items,
                    "user": base.manifest.num_users}
        chain = []
        inc_index = build_ann_index(base, tmp_path / "ann", kind="ivf",
                                    nlist=self.NLIST, default_nprobe=2,
                                    seed=0)
        service = RecommendationService(base, cache_size=128)
        for op in range(self.SOAK_OPS):
            _random_op(state, rng, next_ids)
            if (op + 1) % self.COMMIT_EVERY:
                continue
            commit = len(chain)
            chain.append(export_delta(prev, state,
                                      tmp_path / f"delta-{commit}"))
            prev = state.copy()

            # -- replay parity: chain replay == from-scratch export, bytes
            replay_dir = tmp_path / f"replay-{commit}"
            scratch_dir = tmp_path / f"scratch-{commit}"
            snap = apply_deltas(base, chain, replay_dir, created_unix=123.0)
            export_state(state, scratch_dir, created_unix=123.0)
            for fname in SNAPSHOT_FILES:
                assert (replay_dir / fname).read_bytes() \
                    == (scratch_dir / fname).read_bytes(), \
                    f"{fname} diverged at commit {commit}"

            # -- incremental IVF == fresh re-cluster at full probe
            inc_index = inc_index.refreshed(snap, staleness_threshold=0.4,
                                            recluster_lists=2)
            assert inc_index.snapshot.version == snap.version
            users = np.arange(min(48, snap.manifest.num_users))
            inc_full = IVFFlatIndex(snap, inc_index.data,
                                    nprobe=inc_index.data.nlist)
            fresh_full = IVFFlatIndex(snap,
                                      _fresh_ivf_data(snap, self.NLIST),
                                      nprobe=self.NLIST)
            got = inc_full.topk(users, k=self.K)
            want = fresh_full.topk(users, k=self.K)
            recall = np.mean([len(np.intersect1d(g, w)) / self.K
                              for g, w in zip(got.items, want.items)])
            assert recall >= 1.0 - 1e-12
            np.testing.assert_array_equal(got.items, want.items)
            np.testing.assert_array_equal(got.scores, want.scores)

            # -- service swap: stats ledger + LRU version hygiene
            service.recommend(users[:24], k=5)
            service.refresh(snap)
            stats = service.stats
            assert stats.cache_hits + stats.cache_misses \
                == stats.users_served
            assert len(service.cache) <= service.cache.capacity
            assert all(key[0] == snap.version
                       for key in service.cache._data)
            rec = service.recommend_one(0, k=5)
            assert rec.snapshot_version == snap.version
        assert service.stats.refreshes == len(chain)
        assert len(chain) == self.SOAK_OPS // self.COMMIT_EVERY


class TestDeltaAlgebra:
    @pytest.fixture()
    def base_state(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        return LiveState.from_snapshot(snapshot)

    def _churn(self, state, seed):
        rng = np.random.default_rng(seed)
        out = state.copy()
        out.upsert_item(0, rng.normal(size=out.dim))
        out.upsert_item(max(out.items) + 1, rng.normal(size=out.dim))
        out.delete_item(sorted(out.items)[3 + seed])
        out.upsert_user(1, rng.normal(size=out.dim), [0, 5])
        return out

    def test_chain_composes(self, base_state, tmp_path):
        """apply(base, [d1, d2]) == apply(apply(base, [d1]), [d2])."""
        s1 = self._churn(base_state, 1)
        s2 = self._churn(s1, 2)
        d1 = export_delta(base_state, s1, tmp_path / "d1")
        d2 = export_delta(s1, s2, tmp_path / "d2")
        chained = apply_deltas(
            snapshot_of(base_state), [d1, d2], created_unix=1.0)
        mid = apply_deltas(snapshot_of(base_state), [d1], created_unix=1.0)
        stepped = apply_deltas(mid, [d2], created_unix=1.0)
        assert chained.version == stepped.version == s2.version()
        np.testing.assert_array_equal(np.asarray(chained.items),
                                      np.asarray(stepped.items))
        np.testing.assert_array_equal(np.asarray(chained.users),
                                      np.asarray(stepped.users))

    def test_delete_then_upsert_equals_upsert(self, base_state):
        row = np.full(base_state.dim, 0.5)
        fresh_item = max(base_state.items) + 1

        a = base_state.copy()
        a.upsert_item(fresh_item, np.ones(base_state.dim))
        a.delete_item(fresh_item)
        a.upsert_item(fresh_item, row)
        b = base_state.copy()
        b.upsert_item(fresh_item, row)
        assert a.version() == b.version()

        a = base_state.copy()
        a.delete_user(2)
        a.upsert_user(2, row, [0, 1])
        b = base_state.copy()
        b.upsert_user(2, row, [0, 1])
        assert a.version() == b.version()

    def test_out_of_order_chain_rejected(self, base_state, tmp_path):
        s1 = self._churn(base_state, 1)
        s2 = self._churn(s1, 2)
        d1 = export_delta(base_state, s1, tmp_path / "d1")
        d2 = export_delta(s1, s2, tmp_path / "d2")
        with pytest.raises(ValueError, match="chain broken at position 0"):
            replay_deltas(base_state, [d2, d1])

    def test_wrong_base_rejected(self, base_state, tmp_path):
        s1 = self._churn(base_state, 1)
        s2 = self._churn(s1, 2)
        d2 = export_delta(s1, s2, tmp_path / "d2")
        with pytest.raises(ValueError, match="chain broken"):
            replay_deltas(base_state, [d2])

    def test_unchanged_user_not_reexported(self, base_state, tmp_path):
        """Item deletion alone must not re-upsert seen-list-only users."""
        changed = base_state.copy()
        changed.delete_item(0)
        delta = export_delta(base_state, changed, tmp_path / "d")
        assert delta.manifest.item_deletes == 1
        assert delta.manifest.user_upserts == 0  # scrub is implied


def snapshot_of(state: LiveState):
    """In-memory snapshot of a state (timestamp pinned for parity)."""
    from repro.serve.delta import snapshot_from_state
    return snapshot_from_state(state, created_unix=1.0)


class TestIncrementalPQ:
    def test_carry_codes_match_frozen_codebook_reencode(self,
                                                        tiny_mf_snapshot,
                                                        tmp_path):
        """Incrementally carried PQ codes == full re-encode, byte-equal.

        A from-scratch rebuild would retrain the codebooks (different
        bytes by construction), so the oracle freezes them: every
        posting of the refreshed index must carry exactly the code that
        ``encode_residuals`` assigns against the *old* codebooks and
        the refreshed owner centroids.
        """
        _, snapshot = tiny_mf_snapshot
        index = build_ann_index(snapshot, tmp_path / "pq", kind="ivfpq",
                                nlist=8, default_nprobe=8, pq_m=4, pq_ks=16,
                                seed=0)
        rng = np.random.default_rng(3)
        state = LiveState.from_snapshot(snapshot)
        state.delete_item(5)
        state.upsert_item(max(state.items) + 1, rng.normal(size=state.dim))
        for iid in (0, 7, 19):
            state.upsert_item(iid, rng.normal(size=state.dim))
        snap2 = export_state(state, tmp_path / "snap2", created_unix=1.0)

        refreshed = index.refreshed(snap2, staleness_threshold=None)
        data = refreshed.data
        items_ready = scoring_ready_items(np.asarray(snap2.items),
                                          snap2.scoring)
        owner = np.repeat(np.arange(data.nlist), data.sizes)
        full = encode_residuals(
            items_ready[data.list_items] - data.centroids[owner],
            index.pq.codebooks)
        np.testing.assert_array_equal(refreshed.pq.codes, full)


class TestRefreshUnderTraffic:
    def test_no_errors_no_torn_reads(self, tiny_dataset, tiny_mf_snapshot,
                                     tmp_path):
        """Sustained submit load across swaps: every response is whole.

        A pumper thread submits continuously while the main thread
        ping-pongs ``refresh()`` between two snapshot versions.  Every
        response must be attributable to exactly one version — its
        items must equal what a dedicated index over that version
        returns for that user — and the runtime must neither error nor
        drop a request.
        """
        _, snap_a = tiny_mf_snapshot
        rng = np.random.default_rng(0)
        state = LiveState.from_snapshot(snap_a)
        for iid in list(state.items)[:16]:
            state.upsert_item(iid, rng.normal(size=state.dim))
        snap_b = export_state(state, tmp_path / "b", created_unix=1.0)

        k = 5
        n_users = tiny_dataset.num_users
        reference = {
            snap.version: ExactTopKIndex(snap).topk(np.arange(n_users), k=k)
            for snap in (snap_a, snap_b)}
        service = RecommendationService(snap_a, cache_size=256)
        flip = {snap_a.version: snap_b, snap_b.version: snap_a}
        errors, handles = [], []
        stop = threading.Event()

        def pump():
            i = 0
            while not stop.is_set():
                try:
                    handles.append(service_runtime.submit(i % n_users, k=k))
                except Exception as exc:  # noqa: BLE001 - recorded, asserted
                    errors.append(exc)
                i += 1
                time.sleep(0.0005)

        with ServingRuntime(service) as service_runtime:
            pumper = threading.Thread(target=pump)
            pumper.start()
            time.sleep(0.03)
            for _ in range(4):
                service_runtime.refresh(flip[service.snapshot.version])
                time.sleep(0.02)
            stop.set()
            pumper.join()
            results = [h.result(timeout=10.0) for h in handles]
        assert not errors
        assert len(results) == len(handles)
        assert service_runtime.stats.refreshes == 4
        for rec in results:
            truth = reference[rec.snapshot_version]  # KeyError == torn read
            np.testing.assert_array_equal(rec.items,
                                          truth.items[rec.user_id])
        breakdown = service_runtime.breakdown()
        assert breakdown["refresh_ms"] > 0.0

    def test_breakdown_carries_refresh_ms_before_any_refresh(
            self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        runtime = ServingRuntime(RecommendationService(snapshot))
        assert runtime.breakdown()["refresh_ms"] == 0.0

    def test_stopped_runtime_refreshes_synchronously(self, tiny_mf_snapshot,
                                                     tmp_path):
        _, snap_a = tiny_mf_snapshot
        state = LiveState.from_snapshot(snap_a)
        state.upsert_item(0, np.ones(state.dim))
        snap_b = export_state(state, tmp_path / "b", created_unix=1.0)
        runtime = ServingRuntime(RecommendationService(snap_a))
        runtime.refresh(snap_b)
        assert runtime.service.snapshot.version == snap_b.version


class TestPoisonedCacheRegressions:
    """A snapshot swap must never serve content keyed to the old version."""

    def _generations(self, tiny_mf_snapshot, tmp_path):
        _, snap_a = tiny_mf_snapshot
        state = LiveState.from_snapshot(snap_a)
        for iid in list(state.items)[:24]:
            # scaling flips cosine rankings without changing shapes
            state.upsert_item(iid, np.asarray(state.items[iid]) * -2.0)
        snap_b = export_state(state, tmp_path / "gen-b", created_unix=1.0)
        return snap_a, snap_b

    def test_shared_panel_cache_keyed_by_generation(self, tiny_mf_snapshot,
                                                    tmp_path):
        """One IVFIndexData serving two snapshot generations stays correct.

        Before the ``token`` key on
        :meth:`~repro.ann.ivf.IVFIndexData.panels_for`, the panel cache
        was keyed only on (signature, width): generation B would reuse
        generation A's item rows and serve stale scores.
        """
        snap_a, snap_b = self._generations(tiny_mf_snapshot, tmp_path)
        shared = _fresh_ivf_data(snap_a, nlist=8)
        users = np.arange(snap_a.manifest.num_users)
        # warm the panel cache with generation A's rows
        IVFFlatIndex(snap_a, shared, nprobe=8).topk(users, k=5)
        got = IVFFlatIndex(snap_b, shared, nprobe=8).topk(users, k=5)
        want = ExactTopKIndex(snap_b).topk(users, k=5)
        np.testing.assert_array_equal(got.items, want.items)
        np.testing.assert_array_equal(got.scores, want.scores)
        assert shared._panels_token == snap_b.version
        assert all(key[0] == snap_b.version for key in shared._panels)

    def test_routing_tables_keyed_by_snapshot_version(self, tiny_mf_snapshot,
                                                      tmp_path):
        snap_a, snap_b = self._generations(tiny_mf_snapshot, tmp_path)
        index = IVFFlatIndex(snap_a, _fresh_ivf_data(snap_a, nlist=8),
                             nprobe=2, routed=True)
        index.topk(np.arange(16), k=5)
        assert index._routing
        assert all(key[0] == snap_a.version for key in index._routing)

    def test_service_lru_never_serves_retired_version(self,
                                                      tiny_mf_snapshot,
                                                      tmp_path):
        snap_a, snap_b = self._generations(tiny_mf_snapshot, tmp_path)
        users = list(range(12))
        service = RecommendationService(snap_a, cache_size=64)
        service.recommend(users, k=5)
        service.recommend(users, k=5)  # warm: second pass is all hits
        assert service.stats.cache_hits >= len(users)
        invalidated = service.refresh(snap_b)
        assert invalidated == len(users)
        post = service.recommend(users, k=5)
        want = RecommendationService(snap_b, cache_size=0).recommend(
            users, k=5)
        for got_rec, want_rec in zip(post, want):
            assert not got_rec.from_cache
            assert got_rec.snapshot_version == snap_b.version
            np.testing.assert_array_equal(got_rec.items, want_rec.items)
            np.testing.assert_array_equal(got_rec.scores, want_rec.scores)

    def test_refresh_rejects_mismatched_index(self, tiny_mf_snapshot,
                                              tmp_path):
        snap_a, snap_b = self._generations(tiny_mf_snapshot, tmp_path)
        service = RecommendationService(snap_a)
        with pytest.raises(ValueError, match="wraps snapshot"):
            service.refresh(snap_b, index=ExactTopKIndex(snap_a))
