"""Temperature schedules and scheduled losses."""

import numpy as np
import pytest

from repro.losses import SoftmaxLoss
from repro.losses.schedules import (ConstantSchedule, CosineSchedule,
                                    LinearSchedule, ScheduledBSLLoss,
                                    ScheduledSoftmaxLoss)
from repro.tensor import Tensor


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.3)
        assert s(0.0) == s(0.5) == s(1.0) == 0.3

    def test_linear_endpoints_and_midpoint(self):
        s = LinearSchedule(0.2, 0.6)
        assert s(0.0) == pytest.approx(0.2)
        assert s(1.0) == pytest.approx(0.6)
        assert s(0.5) == pytest.approx(0.4)

    def test_cosine_endpoints_and_monotone(self):
        s = CosineSchedule(0.5, 0.1)
        assert s(0.0) == pytest.approx(0.5)
        assert s(1.0) == pytest.approx(0.1)
        values = [s(t) for t in np.linspace(0, 1, 11)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_progress_validation(self):
        with pytest.raises(ValueError):
            LinearSchedule(0.1, 0.2)(1.5)

    def test_positive_temperature_validation(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)
        with pytest.raises(ValueError):
            CosineSchedule(0.1, -0.1)


class TestScheduledLosses:
    def _batch(self):
        rng = np.random.default_rng(0)
        return (Tensor(rng.normal(size=4) * 0.5),
                Tensor(rng.normal(size=(4, 8)) * 0.5))

    def test_set_epoch_moves_tau(self):
        loss = ScheduledSoftmaxLoss(LinearSchedule(0.2, 0.6))
        loss.set_epoch(1, 11)
        assert loss.current_tau == pytest.approx(0.2)
        loss.set_epoch(11, 11)
        assert loss.current_tau == pytest.approx(0.6)

    def test_matches_plain_sl_at_fixed_tau(self):
        pos, neg = self._batch()
        scheduled = ScheduledSoftmaxLoss(ConstantSchedule(0.25))
        scheduled.set_epoch(3, 10)
        plain = SoftmaxLoss(tau=0.25)
        assert scheduled(pos, neg).item() == pytest.approx(
            plain(pos, neg).item())

    def test_bsl_schedules_both_sides(self):
        loss = ScheduledBSLLoss(LinearSchedule(0.2, 0.4),
                                ConstantSchedule(0.2))
        loss.set_epoch(1, 2)
        assert loss.current_taus == (pytest.approx(0.2),
                                     pytest.approx(0.2))
        loss.set_epoch(2, 2)
        t1, t2 = loss.current_taus
        assert t1 == pytest.approx(0.4)
        assert t2 == pytest.approx(0.2)

    def test_trainer_invokes_schedule(self, tiny_dataset):
        from repro.models import MF
        from repro.train import TrainConfig, train_model
        loss = ScheduledSoftmaxLoss(LinearSchedule(0.2, 0.8))
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        train_model(model, loss, tiny_dataset,
                    TrainConfig(epochs=4, batch_size=256, n_negatives=8,
                                learning_rate=5e-2, seed=0))
        assert loss.current_tau == pytest.approx(0.8)

    def test_total_epochs_validation(self):
        loss = ScheduledSoftmaxLoss(ConstantSchedule(0.2))
        with pytest.raises(ValueError):
            loss.set_epoch(1, 0)
