"""Telemetry-overhead harness + the committed ≤5% frontier pin."""

import importlib.util
import json
import math
import pathlib

import pytest

from repro.experiments.perf import (OBS_MODES, OBS_SCHEMA, ObsPerfConfig,
                                    run_obs_suite, summarize_obs,
                                    write_report)

pytestmark = pytest.mark.filterwarnings("ignore")

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: The telemetry contract docs/observability.md advertises: serving with
#: the metrics registry enabled costs at most this much cold-cache
#: throughput versus telemetry off.
MAX_METRICS_OVERHEAD_PCT = 5.0

_TINY = ObsPerfConfig(dataset="tiny", epochs=1, dim=8, batch_size=16,
                      repeats=2, request_users=64, max_batch=32)


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "scripts" / "check_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tiny_payload():
    return run_obs_suite(_TINY)


class TestObsSuite:
    def test_schema_and_lane_grid(self, tiny_payload):
        assert tiny_payload["schema"] == OBS_SCHEMA
        rows = tiny_payload["results"]
        lanes = {(r["cache"], r["mode"]) for r in rows}
        assert lanes == {(c, m) for c in ("cold", "warm")
                         for m in OBS_MODES}
        assert len(rows) == len(lanes)

    def test_rows_are_finite_and_positive(self, tiny_payload):
        for row in tiny_payload["results"]:
            assert row["kind"] == "obs"
            assert row["total_s"] > 0.0
            assert row["users_per_s"] > 0.0
            assert math.isfinite(row["overhead_pct"])

    def test_off_lane_is_the_baseline(self, tiny_payload):
        for row in tiny_payload["results"]:
            if row["mode"] == "off":
                assert row["overhead_pct"] == 0.0

    def test_overhead_is_relative_to_same_cache_baseline(self,
                                                         tiny_payload):
        by_lane = {(r["cache"], r["mode"]): r
                   for r in tiny_payload["results"]}
        for cache in ("cold", "warm"):
            base = by_lane[(cache, "off")]["total_s"]
            for mode in ("metrics", "trace"):
                row = by_lane[(cache, mode)]
                expected = 100.0 * (row["total_s"] / base - 1.0)
                assert row["overhead_pct"] == pytest.approx(expected)

    def test_report_passes_schema_checker(self, tiny_payload, tmp_path,
                                          check_bench):
        out = tmp_path / "BENCH_obs.json"
        write_report(tiny_payload, out)
        assert check_bench.check_file(out) == []

    def test_summary_names_every_lane(self, tiny_payload):
        text = summarize_obs(tiny_payload)
        for token in ("cold", "warm", "off", "metrics", "trace",
                      "overhead"):
            assert token in text


class TestCommittedFrontier:
    """BENCH_obs.json is a committed artifact; these tests pin it."""

    @pytest.fixture(scope="class")
    def committed(self):
        path = REPO_ROOT / "BENCH_obs.json"
        assert path.exists(), "BENCH_obs.json must be committed"
        return json.loads(path.read_text())

    def test_registered_with_bench_checker(self, check_bench):
        assert "BENCH_obs.json" in check_bench.EXPECTED
        assert check_bench.check_file(REPO_ROOT / "BENCH_obs.json") == []

    def test_schema_and_grid(self, committed):
        assert committed["schema"] == OBS_SCHEMA
        rows = committed["results"]
        assert len(rows) == 6
        assert {(r["cache"], r["mode"]) for r in rows} \
            == {(c, m) for c in ("cold", "warm") for m in OBS_MODES}

    def test_metrics_overhead_within_contract(self, committed):
        """The headline pin: metrics-enabled serving stays within the
        documented ≤5% cold-cache overhead envelope."""
        by_lane = {(r["cache"], r["mode"]): r for r in committed["results"]}
        assert by_lane[("cold", "metrics")]["overhead_pct"] \
            <= MAX_METRICS_OVERHEAD_PCT
        assert by_lane[("warm", "metrics")]["overhead_pct"] \
            <= MAX_METRICS_OVERHEAD_PCT

    def test_committed_rows_finite(self, committed):
        for row in committed["results"]:
            assert row["users_per_s"] > 0.0
            assert math.isfinite(row["overhead_pct"])
            assert row["overhead_pct"] == 0.0 or row["mode"] != "off"


class TestCLI:
    def test_bench_obs_writes_report(self, tmp_path, capsys, check_bench):
        from repro.cli import main
        out = tmp_path / "BENCH_obs.json"
        rc = main(["bench", "obs", "--dataset", "tiny", "--epochs", "1",
                   "--dim", "8", "--batch-size", "16", "--repeats", "2",
                   "--request-users", "64", "--out", str(out)])
        assert rc == 0
        assert check_bench.check_file(out) == []
        payload = json.loads(out.read_text())
        assert payload["schema"] == OBS_SCHEMA
        assert "overhead" in capsys.readouterr().out
