"""Edge cases across modules: boundary ks, degenerate graphs, empty sets."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import InteractionDataset
from repro.eval import evaluate_scores, rank_items
from repro.graph import normalize_adjacency, spmm
from repro.losses import get_loss
from repro.tensor import Tensor
from repro.tensor import functional as F


class TestEvaluatorBoundaries:
    def test_k_exceeding_catalogue(self):
        train = np.array([[0, 0]])
        test = np.array([[0, 1]])
        ds = InteractionDataset(1, 3, train, test)
        result = evaluate_scores(np.array([[0.1, 0.9, 0.5]]), ds, ks=(10,))
        assert result["recall@10"] == 1.0

    def test_all_items_in_train_leaves_no_candidates(self):
        # user interacted with everything except the test item
        train = np.array([[0, 0], [0, 1]])
        test = np.array([[0, 2]])
        ds = InteractionDataset(1, 3, train, test)
        result = evaluate_scores(np.zeros((1, 3)), ds, ks=(1,))
        assert result["recall@1"] == 1.0  # only candidate is the answer

    def test_single_user_dataset(self):
        ds = InteractionDataset(1, 4, np.array([[0, 0]]),
                                np.array([[0, 1]]))
        result = evaluate_scores(np.random.default_rng(0).random((1, 4)),
                                 ds, ks=(2,))
        assert 0.0 <= result["recall@2"] <= 1.0

    def test_rank_items_single_column(self):
        assert rank_items(np.array([[0.5]]), 1).tolist() == [[0]]


class TestGraphBoundaries:
    def test_normalize_empty_adjacency(self):
        adj = sp.csr_matrix((4, 4))
        norm = normalize_adjacency(adj)
        assert norm.nnz == 0

    def test_spmm_zero_matrix(self):
        mat = sp.csr_matrix((3, 3))
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = spmm(mat, x)
        np.testing.assert_allclose(out.data, 0.0)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 0.0)

    def test_dataset_with_isolated_items(self):
        # item 3 never interacted with: propagation must stay finite
        from repro.models import LightGCN
        ds = InteractionDataset(2, 4, np.array([[0, 0], [1, 1]]),
                                np.array([[0, 2]]))
        model = LightGCN(ds, dim=4, num_layers=2, rng=0)
        users, items = model.propagate()
        assert np.all(np.isfinite(users.data))
        assert np.all(np.isfinite(items.data))


class TestLossBoundaries:
    def test_single_negative(self):
        pos = Tensor(np.array([0.5]), requires_grad=True)
        neg = Tensor(np.array([[0.1]]), requires_grad=True)
        for name in ("bpr", "bce", "mse", "sl", "bsl"):
            value = get_loss(name)(pos, neg)
            assert np.isfinite(value.item()), name

    def test_batch_of_one(self):
        pos = Tensor(np.array([0.3]))
        neg = Tensor(np.array([[0.1, -0.2, 0.0]]))
        assert np.isfinite(get_loss("bsl")(pos, neg).item())

    def test_extreme_temperatures_stay_finite(self):
        rng = np.random.default_rng(0)
        pos = Tensor(rng.uniform(-1, 1, 16))
        neg = Tensor(rng.uniform(-1, 1, (16, 32)))
        for tau in (1e-3, 1e3):
            assert np.isfinite(get_loss("sl", tau=tau)(pos, neg).item())
            assert np.isfinite(get_loss("bsl", tau1=tau,
                                        tau2=tau)(pos, neg).item())

    def test_identical_scores_everywhere(self):
        pos = Tensor(np.full(4, 0.5))
        neg = Tensor(np.full((4, 8), 0.5))
        for name in ("bpr", "bce", "mse", "sl", "bsl"):
            assert np.isfinite(get_loss(name)(pos, neg).item()), name


class TestFunctionalBoundaries:
    def test_logsumexp_with_neg_inf_entries(self):
        x = Tensor(np.array([[-np.inf, 0.0, 1.0]]))
        value = F.logsumexp(x, axis=1).data
        expected = np.log(np.exp(0.0) + np.exp(1.0))
        np.testing.assert_allclose(value, [expected], atol=1e-12)

    def test_logsumexp_all_neg_inf_row(self):
        x = Tensor(np.array([[-np.inf, -np.inf]]))
        assert F.logsumexp(x, axis=1).data[0] == -np.inf

    def test_softmax_one_hot_at_extreme_scale(self):
        x = Tensor(np.array([[1000.0, 0.0, 0.0]]))
        out = F.softmax(x, axis=1).data
        np.testing.assert_allclose(out, [[1.0, 0.0, 0.0]], atol=1e-12)


class TestDatasetBoundaries:
    def test_popularity_groups_more_groups_than_items(self):
        ds = InteractionDataset(1, 3, np.array([[0, 0]]),
                                np.array([[0, 1]]))
        groups = ds.popularity_groups(10)
        assert groups.shape == (3,)

    def test_density_of_empty_train(self):
        ds = InteractionDataset(2, 2, np.empty((0, 2)),
                                np.array([[0, 0]]))
        assert ds.density == 0.0
        assert ds.num_train == 0
