"""Diversity metrics: coverage, Gini, novelty."""

import numpy as np
import pytest

from repro.data import InteractionDataset
from repro.eval.diversity import (diversity_report, gini_index,
                                  item_coverage, mean_novelty,
                                  recommendation_counts)


class _FixedModel:
    """Recommends the same fixed scores to everyone."""

    training = False

    def __init__(self, scores):
        self._scores = scores

    def eval(self):
        return self

    def train(self):
        return self

    def predict_scores(self, user_ids=None):
        if user_ids is None:
            return self._scores.copy()
        return self._scores[np.asarray(user_ids)].copy()


@pytest.fixture()
def toy_dataset():
    train = np.array([[0, 0], [0, 1], [1, 0], [2, 2]])
    test = np.array([[0, 2], [1, 1], [2, 0]])
    return InteractionDataset(3, 4, train, test)


class TestRecommendationCounts:
    def test_counts_sum_to_users_times_k(self, toy_dataset, rng):
        scores = rng.random((3, 4))
        counts = recommendation_counts(_FixedModel(scores), toy_dataset,
                                       k=2)
        assert counts.sum() == 3 * 2

    def test_train_items_excluded(self, toy_dataset):
        scores = np.zeros((3, 4))
        scores[:, 0] = 10.0  # item 0 is train-positive for users 0, 1
        counts = recommendation_counts(_FixedModel(scores), toy_dataset,
                                       k=1)
        assert counts[0] == 1  # only user 2 can receive item 0


class TestGini:
    def test_uniform_exposure_zero(self):
        assert gini_index(np.full(10, 5)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_exposure_near_one(self):
        counts = np.zeros(100)
        counts[0] = 1000
        assert gini_index(counts) > 0.9

    def test_zero_counts_safe(self):
        assert gini_index(np.zeros(5)) == 0.0

    def test_monotone_in_concentration(self):
        flat = np.array([5, 5, 5, 5])
        skew = np.array([17, 1, 1, 1])
        assert gini_index(skew) > gini_index(flat)


class TestCoverageNovelty:
    def test_coverage_fraction(self):
        counts = np.array([3, 0, 1, 0])
        assert item_coverage(counts) == pytest.approx(0.5)

    def test_novelty_higher_for_tail_recs(self, toy_dataset):
        # item 0 is the most popular; recommending only it = low novelty
        popular_only = np.zeros(4)
        popular_only[0] = 6
        tail_only = np.zeros(4)
        tail_only[3] = 6  # item 3 has zero training interactions
        assert (mean_novelty(tail_only, toy_dataset)
                > mean_novelty(popular_only, toy_dataset))

    def test_report_keys(self, toy_dataset, rng):
        report = diversity_report(_FixedModel(rng.random((3, 4))),
                                  toy_dataset, k=2)
        assert set(report) == {"coverage@2", "gini@2", "novelty@2"}

    def test_report_on_trained_model(self, tiny_dataset):
        from repro.losses import get_loss
        from repro.models import MF
        from repro.train import TrainConfig, train_model
        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        train_model(model, get_loss("sl", tau=0.3), tiny_dataset,
                    TrainConfig(epochs=5, batch_size=256, n_negatives=16,
                                learning_rate=5e-2, seed=0))
        report = diversity_report(model, tiny_dataset, k=10)
        assert 0 < report["coverage@10"] <= 1
        assert 0 <= report["gini@10"] <= 1
        assert report["novelty@10"] > 0
