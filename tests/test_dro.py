"""DRO theory: Lemma 1 identity, Eq. 16, Lemma 2 expansion, ablation losses."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.dro import (worst_case_weights, kl_divergence, tilted_radius,
                       dro_objective, dro_objective_exact, optimal_tau,
                       implied_eta, eta_distribution, log_expectation_exp,
                       taylor_approximation, approximation_error,
                       variance_penalty, VarianceAblatedSoftmaxLoss,
                       MeanVarianceSoftmaxLoss)
from repro.tensor import Tensor

_scores_strategy = arrays(np.float64, st.integers(3, 12),
                          elements=st.floats(-1.0, 1.0))


class TestWorstCaseWeights:
    def test_is_distribution(self, rng):
        w = worst_case_weights(rng.normal(size=10), tau=0.2)
        assert np.all(w >= 0)
        assert w.sum() == pytest.approx(1.0)

    def test_monotone_in_score(self, rng):
        scores = np.sort(rng.normal(size=8))
        w = worst_case_weights(scores, tau=0.2)
        assert np.all(np.diff(w) >= 0)

    def test_lower_tau_more_extreme(self, rng):
        """Matches Fig. 4b: smaller τ concentrates mass on hard negatives."""
        scores = rng.normal(size=50)
        sharp = worst_case_weights(scores, tau=0.09)
        gentle = worst_case_weights(scores, tau=0.13)
        assert sharp.max() > gentle.max()

    def test_base_probs_respected(self):
        scores = np.zeros(4)
        base = np.array([0.7, 0.1, 0.1, 0.1])
        np.testing.assert_allclose(worst_case_weights(scores, 1.0, base),
                                   base, atol=1e-12)

    def test_huge_tau_recovers_base(self, rng):
        scores = rng.normal(size=6)
        w = worst_case_weights(scores, tau=1e6)
        np.testing.assert_allclose(w, np.full(6, 1 / 6), atol=1e-5)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            worst_case_weights(rng.normal(size=3), tau=0.0)
        with pytest.raises(ValueError):
            worst_case_weights(np.zeros(3), 1.0, np.ones(4) / 4)


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_positive_otherwise(self):
        assert kl_divergence(np.array([0.9, 0.1]),
                             np.array([0.5, 0.5])) > 0

    def test_infinite_off_support(self):
        assert kl_divergence(np.array([1.0, 0.0]),
                             np.array([0.0, 1.0])) == np.inf

    def test_radius_decreases_with_tau(self, rng):
        scores = rng.normal(size=30)
        radii = [tilted_radius(scores, tau) for tau in (0.05, 0.1, 0.5, 2.0)]
        assert radii == sorted(radii, reverse=True)


class TestLemma1Identity:
    """τ·log E[exp(f/τ)] must equal the exact KL-ball maximum (Lemma 1)."""

    def test_duality_identity(self, rng):
        scores = rng.normal(size=40)
        tau = 0.3
        # Radius implied by the tilt at tau:
        eta = tilted_radius(scores, tau)
        exact_value, tau_star = dro_objective_exact(scores, eta)
        # The recovered multiplier must be the tau we started from...
        assert tau_star == pytest.approx(tau, rel=1e-3)
        # ...and the DRO value must satisfy the Lagrangian identity
        # E_P*[f] = tau*log E[exp(f/tau)] + tau*KL(P*||P0).
        lhs = exact_value
        rhs = dro_objective(scores, tau) + tau * eta
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_argmax_is_exponential_tilt(self, rng):
        scores = rng.normal(size=20)
        tau = 0.25
        eta = tilted_radius(scores, tau)
        w = worst_case_weights(scores, tau)
        # No distribution inside the KL ball can beat the tilt.
        value_tilt = float(w @ scores)
        exact_value, _ = dro_objective_exact(scores, eta)
        assert value_tilt == pytest.approx(exact_value, rel=1e-5)

    def test_dro_objective_bounds(self, rng):
        """mean <= tau*logEexp <= max for any tau."""
        scores = rng.normal(size=25)
        for tau in (0.05, 0.3, 2.0):
            val = dro_objective(scores, tau)
            assert scores.mean() - 1e-9 <= val <= scores.max() + 1e-9

    def test_eta_zero_gives_expectation(self, rng):
        scores = rng.normal(size=10)
        value, _ = dro_objective_exact(scores, 0.0)
        assert value == pytest.approx(scores.mean())

    def test_huge_eta_gives_max(self, rng):
        scores = rng.normal(size=10)
        value, _ = dro_objective_exact(scores, 1e6)
        assert value == pytest.approx(scores.max())

    def test_constant_scores_degenerate(self):
        value, _ = dro_objective_exact(np.full(5, 0.7), 0.5)
        assert value == pytest.approx(0.7)


class TestCorollaryEq16:
    def test_roundtrip(self):
        tau = optimal_tau(variance=0.08, eta=1.0)
        assert implied_eta(0.08, tau) == pytest.approx(1.0)

    def test_tau_decreases_with_eta(self):
        assert optimal_tau(0.1, 2.0) < optimal_tau(0.1, 0.5)

    def test_tau_increases_with_variance(self):
        """The Fig. 3 'contradiction' resolution: noisier scores have
        larger variance, pushing the optimal τ up."""
        assert optimal_tau(0.2, 1.0) > optimal_tau(0.05, 1.0)

    def test_eta_distribution_shape(self, rng):
        neg = rng.normal(size=(16, 64))
        etas = eta_distribution(neg, tau=0.1)
        assert etas.shape == (16,)
        np.testing.assert_allclose(etas, neg.var(axis=1) / 0.02, rtol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_tau(0.1, 0.0)
        with pytest.raises(ValueError):
            implied_eta(0.1, 0.0)
        with pytest.raises(ValueError):
            eta_distribution(np.zeros(5), 0.1)


class TestLemma2Taylor:
    def test_expansion_components(self, rng):
        scores = rng.normal(size=30)
        tau = 5.0
        assert taylor_approximation(scores, tau) == pytest.approx(
            scores.mean() + variance_penalty(scores, tau))

    def test_error_vanishes_as_tau_grows(self, rng):
        scores = rng.normal(size=30)
        errors = [approximation_error(scores, tau) for tau in (1.0, 4.0, 16.0)]
        assert errors == sorted(errors, reverse=True)

    @settings(max_examples=40, deadline=None)
    @given(_scores_strategy)
    def test_remainder_is_higher_order(self, scores):
        """|exact - approx| = O(1/τ²), i.e. the remainder is o(1/τ).

        The remainder expands as ``κ₃/(6τ²) + O(1/τ³)``.  Comparing the
        remainder at two τ values by ratio is brittle: the two terms can
        cancel near the smaller τ, making that reference anomalously
        tiny so that any later value "grows".  Instead pin the decay
        order directly: remainder·τ² must stay within the third-moment
        scale that drives it (with 2× slack on the κ₃/6 envelope plus a
        1/τ allowance for the higher-order terms; scores are bounded in
        [-1, 1] so those are uniformly controlled).
        """
        if np.allclose(scores, scores[0]):
            return
        centered = scores - scores.mean()
        third_moment_scale = float(np.mean(np.abs(centered) ** 3))
        for tau in (10.0, 100.0):
            scaled_remainder = approximation_error(scores, tau) * tau ** 2
            assert scaled_remainder <= third_moment_scale / 3.0 + 1.0 / tau

    @settings(max_examples=40, deadline=None)
    @given(_scores_strategy)
    def test_log_e_exp_upper_bounds_mean(self, scores):
        assert log_expectation_exp(scores, 0.7) >= scores.mean() - 1e-9


class TestAblationLosses:
    def _batch(self, rng):
        return (Tensor(rng.normal(size=6) * 0.5, requires_grad=True),
                Tensor(rng.normal(size=(6, 12)) * 0.5, requires_grad=True))

    def test_meanvar_approximates_sl_at_high_tau(self, rng):
        from repro.losses import SoftmaxLoss
        pos_data = rng.normal(size=6) * 0.3
        neg_data = rng.normal(size=(6, 12)) * 0.3
        tau = 8.0
        sl = SoftmaxLoss(tau=tau)(Tensor(pos_data), Tensor(neg_data)).item()
        surrogate = MeanVarianceSoftmaxLoss(tau=tau)(
            Tensor(pos_data), Tensor(neg_data)).item()
        # SL's row loss is -pos/tau + logsumexp(neg/tau)
        #   = -pos/tau + log(m) + mean/tau + var/(2 tau^2) + o(1/tau^2),
        # while the surrogate is (-pos + mean + var/(2 tau)) / tau;
        # they differ by the constant log(m) at large tau.
        offset = np.log(12)
        assert surrogate == pytest.approx(sl - offset, abs=1e-3)

    def test_novar_drops_variance_term(self, rng):
        pos, neg = self._batch(rng)
        tau = 0.5
        with_var = MeanVarianceSoftmaxLoss(tau=tau)(pos, neg).item()
        without = VarianceAblatedSoftmaxLoss(tau=tau)(pos, neg).item()
        expected_gap = (neg.data.var(axis=1).mean() / (2 * tau)) / tau
        assert with_var - without == pytest.approx(expected_gap, rel=1e-9)

    def test_novar_gradient_uniform_over_negatives(self, rng):
        pos, neg = self._batch(rng)
        VarianceAblatedSoftmaxLoss(tau=0.2)(pos, neg).backward()
        row = neg.grad[0]
        np.testing.assert_allclose(row, np.full_like(row, row[0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            VarianceAblatedSoftmaxLoss(tau=0.0)
        with pytest.raises(ValueError):
            MeanVarianceSoftmaxLoss(tau=-1.0)
