"""Tracer: span nesting, record(), opt-in flag, disabled fast path."""

import json
import threading

import pytest

from repro.obs.trace import Span, Tracer, format_span_tree, get_tracer, tracing


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracing(tracer=tracer):
            with tracer.span("serve.a.outer", users=3):
                with tracer.span("serve.a.inner"):
                    pass
                with tracer.span("serve.a.inner"):
                    pass
        root = tracer.last_trace()
        assert root.name == "serve.a.outer"
        assert root.meta == {"users": 3}
        assert [c.name for c in root.children] == ["serve.a.inner"] * 2
        assert root.end_s >= root.start_s
        for child in root.children:
            assert root.start_s <= child.start_s <= child.end_s <= root.end_s

    def test_record_attaches_pretimed_child(self):
        tracer = Tracer()
        with tracing(tracer=tracer):
            with tracer.span("serve.a.outer"):
                tracer.record("serve.a.phase", 1.0, 1.5, shards=2)
        root = tracer.last_trace()
        (child,) = root.children
        assert child.name == "serve.a.phase"
        assert child.duration_ms == pytest.approx(500.0)
        assert child.meta == {"shards": 2}

    def test_record_without_open_span_is_a_root(self):
        tracer = Tracer()
        with tracing(tracer=tracer):
            tracer.record("serve.a.solo", 2.0, 3.0)
        assert tracer.last_trace().name == "serve.a.solo"

    def test_exception_unwinds_open_spans(self):
        tracer = Tracer()
        with tracing(tracer=tracer):
            with pytest.raises(RuntimeError):
                with tracer.span("serve.a.outer"):
                    with tracer.span("serve.a.inner"):
                        raise RuntimeError("boom")
            # the stack fully unwound: a new span starts a fresh root
            with tracer.span("serve.a.next"):
                pass
        assert tracer.last_trace().name == "serve.a.next"

    def test_threads_build_independent_trees(self):
        tracer = Tracer()

        def worker():
            with tracer.span("serve.a.thread"):
                pass

        with tracing(tracer=tracer):
            with tracer.span("serve.a.main"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        names = sorted(root.name for root in tracer.traces())
        # the worker's span is its own root, not a child of main's
        assert names == ["serve.a.main", "serve.a.thread"]

    def test_ring_keeps_most_recent(self):
        tracer = Tracer(keep=2)
        with tracing(tracer=tracer):
            for i in range(4):
                with tracer.span("serve.a.root", i=i):
                    pass
        roots = tracer.traces()
        assert len(roots) == 2
        assert [r.meta["i"] for r in roots] == [2, 3]

    def test_clear(self):
        tracer = Tracer()
        with tracing(tracer=tracer):
            with tracer.span("serve.a.x"):
                pass
        tracer.clear()
        assert tracer.last_trace() is None


class TestDisabledPath:
    def test_disabled_span_yields_none_and_records_nothing(self):
        tracer = Tracer()
        assert not tracer.enabled
        with tracer.span("serve.a.x") as span:
            assert span is None
        assert tracer.last_trace() is None

    def test_disabled_span_context_is_shared_singleton(self):
        tracer = Tracer()
        assert tracer.span("serve.a.x") is tracer.span("serve.a.y")

    def test_record_disabled_returns_none(self):
        tracer = Tracer()
        assert tracer.record("serve.a.x", 0.0, 1.0) is None

    def test_tracing_restores_previous_flag(self):
        tracer = Tracer()
        with tracing(tracer=tracer):
            assert tracer.enabled
            with tracing(enabled=False, tracer=tracer):
                assert not tracer.enabled
            assert tracer.enabled
        assert not tracer.enabled

    def test_global_tracer_disabled_by_default(self):
        assert isinstance(get_tracer(), Tracer)


class TestSerialization:
    def _tree(self):
        tracer = Tracer()
        with tracing(tracer=tracer):
            with tracer.span("serve.a.outer", k=10):
                with tracer.span("serve.a.inner"):
                    pass
        return tracer.last_trace()

    def test_to_dict_is_json_serializable(self):
        root = self._tree()
        payload = json.loads(json.dumps(root.to_dict()))
        assert payload["name"] == "serve.a.outer"
        assert payload["start_ms"] == 0.0  # relative to the root
        assert payload["children"][0]["name"] == "serve.a.inner"
        assert payload["children"][0]["start_ms"] >= 0.0
        assert payload["meta"] == {"k": 10}

    def test_walk_and_find(self):
        root = self._tree()
        assert [d for _s, d in root.walk()] == [0, 1]
        assert len(root.find("serve.a.inner")) == 1
        assert root.find("serve.a.outer") == [root]

    def test_format_span_tree_indents(self):
        text = format_span_tree(self._tree())
        lines = text.splitlines()
        assert lines[0].startswith("serve.a.outer")
        assert lines[1].startswith("  serve.a.inner")
        assert "ms" in lines[0]
        assert "[k=10]" in lines[0]

    def test_duration_zero_while_open(self):
        span = Span("serve.a.x", 1.0)
        assert span.duration_ms == 0.0
