"""RecommendationService: caching, micro-batching, version keying."""

import numpy as np
import pytest

from repro.serve import (ExactTopKIndex, LRUCache, QuantizedTopKIndex,
                         RecommendationService, load_snapshot)


@pytest.fixture()
def service(tiny_mf_snapshot):
    _, snapshot = tiny_mf_snapshot
    return RecommendationService(snapshot, max_batch=16)


class TestRecommend:
    def test_matches_index_topk(self, tiny_mf_snapshot, service):
        _, snapshot = tiny_mf_snapshot
        users = np.array([3, 1, 4, 1, 5])
        expected = ExactTopKIndex(snapshot).topk(users, k=7)
        results = service.recommend(users, k=7)
        assert [r.user_id for r in results] == users.tolist()
        for row, rec in enumerate(results):
            np.testing.assert_array_equal(rec.items, expected.items[row])
            np.testing.assert_array_equal(rec.scores, expected.scores[row])
            assert rec.snapshot_version == snapshot.version

    def test_duplicate_users_answered_once(self, service):
        results = service.recommend([2, 2, 2], k=5)
        assert service.stats.cache_misses == 1
        np.testing.assert_array_equal(results[0].items, results[1].items)

    def test_second_call_hits_cache(self, service):
        first = service.recommend([0, 1, 2], k=5)
        assert all(not r.from_cache for r in first)
        second = service.recommend([0, 1, 2], k=5)
        assert all(r.from_cache for r in second)
        assert service.stats.cache_hits == 3
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.items, b.items)

    def test_cache_key_includes_k_and_filtering(self, service):
        service.recommend([0], k=5)
        service.recommend([0], k=6)
        service.recommend([0], k=5, filter_seen=False)
        assert service.stats.cache_misses == 3

    def test_large_batches_swept_in_max_batch_slices(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, max_batch=10, cache_size=0)
        service.recommend(np.arange(35), k=5)
        assert service.stats.index_sweeps == 4  # ceil(35 / 10)

    def test_cache_disabled(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=0)
        service.recommend([0], k=5)
        service.recommend([0], k=5)
        assert service.stats.cache_hits == 0
        assert service.stats.index_sweeps == 2

    def test_recommend_one(self, service):
        rec = service.recommend_one(11, k=3)
        assert rec.user_id == 11 and len(rec.items) == 3

    def test_filter_seen_respected(self, tiny_dataset, service):
        rec = service.recommend_one(5, k=10)
        seen = set(tiny_dataset.train_items_by_user[5].tolist())
        assert not seen & set(rec.items.tolist())

    def test_results_cannot_poison_cache(self, service):
        """Mutating a returned result must fail, not corrupt the cache."""
        rec = service.recommend_one(0, k=5)
        with pytest.raises(ValueError):
            rec.items[0] = -1
        with pytest.raises(ValueError):
            rec.scores[:] = 0.0
        again = service.recommend_one(0, k=5)
        assert again.from_cache and again.items[0] != -1


class TestMicroBatching:
    def test_submit_defers_until_flush(self, service):
        handles = [service.submit(u, k=5) for u in range(5)]
        assert service.pending == 5
        assert not any(h.done for h in handles)
        service.flush()
        assert service.pending == 0
        assert all(h.done for h in handles)

    def test_result_forces_flush(self, service):
        handle = service.submit(3, k=5)
        rec = handle.result()
        assert rec.user_id == 3 and service.pending == 0

    def test_auto_flush_at_max_batch(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, max_batch=4, cache_size=0)
        handles = [service.submit(u, k=5) for u in range(4)]
        assert all(h.done for h in handles)  # hit the threshold
        assert service.stats.index_sweeps == 1  # one sweep for all four

    def test_burst_is_batched_not_per_user(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, max_batch=64, cache_size=0)
        handles = [service.submit(u, k=5) for u in range(10)]
        results = [h.result() for h in handles]
        assert service.stats.index_sweeps == 1
        assert [r.user_id for r in results] == list(range(10))

    def test_mixed_shapes_grouped(self, service):
        a = service.submit(0, k=3)
        b = service.submit(1, k=8)
        service.flush()
        assert len(a.result().items) == 3 and len(b.result().items) == 8

    def test_micro_batch_matches_direct(self, tiny_mf_snapshot, service):
        _, snapshot = tiny_mf_snapshot
        direct = ExactTopKIndex(snapshot).topk([6], k=5)
        via_queue = service.submit(6, k=5).result()
        np.testing.assert_array_equal(via_queue.items, direct.items[0])


class TestStatsAccounting:
    """The reconciled ServiceStats contract: ``requests`` counts client
    calls only, and every user slot lands in exactly one of
    hits/misses — so ``cache_hits + cache_misses == users_served``."""

    def test_requests_counts_client_calls_only(self, service):
        service.recommend([0, 1, 2], k=5)
        assert service.stats.requests == 1
        for u in range(3):
            service.submit(u + 10, k=5)
        assert service.stats.requests == 4
        service.flush()
        assert service.stats.requests == 4  # flush is not a client call

    def test_auto_flush_does_not_inflate_requests(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, max_batch=4)
        for u in range(8):  # triggers two internal auto-flushes
            service.submit(u, k=5)
        assert service.stats.requests == 8

    def test_mixed_shape_flush_counts_once_per_submit(self, service):
        # One flush over two (k, filter_seen) groups used to bump
        # `requests` once per group instead of zero times.
        service.submit(0, k=3)
        service.submit(1, k=8)
        service.flush()
        assert service.stats.requests == 2

    def test_in_batch_duplicates_tally_as_hits(self, service):
        service.recommend([2, 2, 2], k=5)
        stats = service.stats
        assert stats.users_served == 3
        assert stats.cache_misses == 1 and stats.cache_hits == 2
        assert stats.cache_hits + stats.cache_misses == stats.users_served

    def test_duplicate_of_in_batch_miss_reports_from_cache(self, service):
        first, dup = service.recommend([7, 7], k=5)
        assert not first.from_cache
        assert dup.from_cache
        np.testing.assert_array_equal(first.items, dup.items)
        np.testing.assert_array_equal(first.scores, dup.scores)

    def test_duplicate_of_lru_hit_stays_from_cache(self, service):
        service.recommend([4], k=5)
        a, b = service.recommend([4, 4], k=5)
        assert a.from_cache and b.from_cache

    def test_counters_reconcile_across_mixed_traffic(self, service):
        service.recommend([0], k=5)                # 1 miss
        service.recommend([0, 1, 1, 2, 0], k=5)    # hit, miss, dup, miss, dup
        stats = service.stats
        assert stats.users_served == 6
        assert stats.cache_misses == 3 and stats.cache_hits == 3
        assert stats.cache_hits + stats.cache_misses == stats.users_served
        assert stats.hit_rate == 0.5

    def test_duplicates_with_cache_disabled_still_reconcile(
            self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=0)
        results = service.recommend([3, 3], k=5)
        stats = service.stats
        # The in-batch dedup answers the second slot without a sweep
        # even with the LRU off — still a hit in the tally.
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert results[1].from_cache
        assert stats.index_sweeps == 1

    def test_sweep_clock_accumulates(self, service):
        assert service.stats.sweep_ms_per_sweep == 0.0
        service.recommend([0, 1], k=5)
        assert service.stats.index_sweeps == 1
        assert service.stats.sweep_s > 0.0
        assert service.stats.sweep_ms_per_sweep > 0.0


class TestVersionKeying:
    def test_new_snapshot_version_never_reuses_cache(self, tiny_dataset,
                                                     tmp_path):
        from repro.models import MF
        from repro.serve import export_snapshot

        model = MF(tiny_dataset.num_users, tiny_dataset.num_items, dim=8,
                   rng=0)
        snap_a = export_snapshot(model, tiny_dataset, tmp_path / "a")
        model.user_embedding.weight.data[...] += 0.5
        snap_b = export_snapshot(model, tiny_dataset, tmp_path / "b")
        assert snap_a.version != snap_b.version
        shared = LRUCache(64)
        svc_a = RecommendationService(snap_a)
        svc_b = RecommendationService(snap_b)
        svc_a.cache = svc_b.cache = shared  # worst case: shared store
        svc_a.recommend([0], k=5)
        svc_b.recommend([0], k=5)
        assert svc_b.stats.cache_hits == 0 and svc_b.stats.cache_misses == 1

    def test_mismatched_index_rejected(self, tiny_dataset, tiny_mf_snapshot,
                                       tmp_path):
        from repro.models import MF
        from repro.serve import export_snapshot

        _, snapshot = tiny_mf_snapshot
        other_model = MF(tiny_dataset.num_users, tiny_dataset.num_items,
                         dim=8, rng=42)
        other = export_snapshot(other_model, tiny_dataset, tmp_path)
        with pytest.raises(ValueError, match="wraps snapshot"):
            RecommendationService(snapshot, index=ExactTopKIndex(other))

    def test_quantized_index_cached_separately(self, tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        cache = LRUCache(64)
        exact = RecommendationService(snapshot)
        quant = RecommendationService(snapshot,
                                      index=QuantizedTopKIndex(snapshot))
        exact.cache = quant.cache = cache
        exact.recommend([0], k=5)
        quant.recommend([0], k=5)
        assert quant.stats.cache_hits == 0  # kind is part of the key

    def test_serving_from_disk_snapshot(self, tiny_mf_snapshot):
        """End-to-end: mmap-load the exported directory and serve."""
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(load_snapshot(snapshot.path))
        rec = service.recommend_one(0, k=5)
        direct = ExactTopKIndex(snapshot).topk([0], k=5)
        np.testing.assert_array_equal(rec.items, direct.items[0])


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_zero_capacity_never_stores(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_eviction_order_under_mixed_get_put(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        assert cache.get("a") == "A"      # order now b, c, a
        cache.put("b", "B2")              # refresh b -> c, a, b
        cache.put("d", "D")               # evicts c
        assert cache.get("c") is None
        assert cache.get("b") == "B2"     # refreshed value survived
        cache.put("e", "E")               # evicts a (oldest after gets)
        assert cache.get("a") is None
        assert cache.get("d") == "D" and cache.get("e") == "E"
        assert len(cache) == 3

    def test_put_refreshes_existing_key_without_growth(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1 and cache.get("a") == 2

    def test_clear_empties(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is None

    def test_zero_capacity_service_submit_flush(self, tiny_mf_snapshot):
        """cache_size=0 must not break the micro-batched path."""
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, cache_size=0, max_batch=8)
        handles = [service.submit(u, k=5) for u in range(3)]
        service.flush()
        assert all(h.done for h in handles)
        assert len(service.cache) == 0
        # A repeat of the same users sweeps again: nothing was cached.
        service.submit(0, k=5).result()
        assert service.stats.index_sweeps == 2
        assert service.stats.cache_hits == 0


class TestPendingRequestLifecycle:
    def test_result_after_unrelated_submit_flushed(self, tiny_mf_snapshot):
        """A handle executed by *someone else's* auto-flush must resolve
        from its stored result, not force another flush."""
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, max_batch=2, cache_size=0)
        first = service.submit(0, k=5)
        assert not first.done
        service.submit(1, k=5)  # hits max_batch -> flushes both
        assert first.done and service.pending == 0
        rec = first.result()
        assert rec.user_id == 0
        assert service.stats.index_sweeps == 1  # result() swept nothing

    def test_result_unaffected_by_later_pending_traffic(self,
                                                        tiny_mf_snapshot):
        _, snapshot = tiny_mf_snapshot
        service = RecommendationService(snapshot, max_batch=4, cache_size=0)
        handle = service.submit(2, k=5)
        service.flush()
        service.submit(3, k=5)  # unrelated, still pending
        rec = handle.result()
        assert rec.user_id == 2
        assert service.pending == 1  # resolving did not flush the newcomer


class TestLRUCacheThreadSafety:
    def test_concurrent_put_get_invalidate(self):
        """Hammer one cache from many threads: no corruption, bound held.

        The LRU is shared by the request path and ``refresh()``'s
        invalidation sweep, so every operation must be safe under
        concurrent mutation (an OrderedDict corrupts without the lock).
        """
        import threading

        cache = LRUCache(64)
        errors = []
        start = threading.Barrier(8)

        def hammer(worker):
            try:
                start.wait()
                for i in range(2000):
                    key = ("v", worker % 4, i % 100)
                    cache.put(key, i)
                    cache.get(("v", (worker + 1) % 4, i % 100))
                    if i % 250 == 0:
                        cache.invalidate(lambda k, w=worker: k[1] == w % 4)
                    if i % 997 == 0:
                        cache.clear()
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64
        # The cache still functions normally after the storm.
        cache.put("after", 1)
        assert cache.get("after") == 1
