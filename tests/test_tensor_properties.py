"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.tensor import Tensor
from repro.tensor import functional as F

_finite = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def small_arrays(min_dims=1, max_dims=2):
    return arrays(np.float64,
                  array_shapes(min_dims=min_dims, max_dims=max_dims,
                               min_side=1, max_side=6),
                  elements=_finite)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_add_commutes(x):
    a = Tensor(x)
    np.testing.assert_allclose((a + a).data, (2.0 * a).data)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_sum_grad_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_chain_rule_linear(x):
    """d/dx sum(a*x + b) == a for constants a, b."""
    t = Tensor(x, requires_grad=True)
    (t * 3.5 + 2.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, 3.5))


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_exp_log_roundtrip(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.exp().log().data, x, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 5)),
              elements=_finite))
def test_logsumexp_bounds(x):
    """max(x) <= logsumexp(x) <= max(x) + log(n)."""
    val = F.logsumexp(Tensor(x), axis=1).data
    assert np.all(val >= x.max(axis=1) - 1e-9)
    assert np.all(val <= x.max(axis=1) + np.log(x.shape[1]) + 1e-9)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(2, 5), st.integers(2, 5)),
              elements=_finite))
def test_logmeanexp_at_least_mean(x):
    """Jensen: log E[exp(x)] >= E[x], equality iff constant."""
    lme = F.logmeanexp(Tensor(x), axis=1).data
    assert np.all(lme >= x.mean(axis=1) - 1e-9)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
              elements=st.floats(0.1, 5.0)))
def test_l2_normalize_idempotent(x):
    once = F.l2_normalize(Tensor(x), axis=1).data
    twice = F.l2_normalize(Tensor(once), axis=1).data
    np.testing.assert_allclose(once, twice, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(small_arrays(), st.floats(0.1, 3.0))
def test_softplus_positive_and_above_relu(x, scale):
    out = F.softplus(Tensor(x * scale)).data
    assert np.all(out >= 0)
    assert np.all(out >= np.maximum(x * scale, 0) - 1e-9)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(2, 6),),
              elements=_finite))
def test_variance_non_negative(x):
    assert F.variance(Tensor(x)).item() >= -1e-12


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(2, 4), st.integers(2, 4)),
              elements=_finite),
       arrays(np.float64, st.tuples(st.integers(2, 4),), elements=_finite))
def test_matmul_linearity_in_gradient(a_val, v):
    """grad of sum(A @ x) w.r.t. x is column-sum of A."""
    if a_val.shape[1] != v.shape[0]:
        v = np.resize(v, a_val.shape[1])
    a = Tensor(a_val)
    x = Tensor(v, requires_grad=True)
    (a @ x).sum().backward()
    np.testing.assert_allclose(x.grad, a_val.sum(axis=0), atol=1e-9)
