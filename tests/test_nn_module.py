"""Module/Parameter containers: discovery, state dicts, train/eval mode."""

import numpy as np
import pytest

from repro.nn import Module, Parameter, Embedding, Linear, Dropout


class _ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.emb = Embedding(4, 3, rng=0)
        self.head = Linear(3, 2, rng=1)
        self.scale = Parameter([1.0])
        self.blocks = [Linear(2, 2, rng=2), Linear(2, 2, rng=3)]


class TestParameterDiscovery:
    def test_named_parameters_cover_tree(self):
        model = _ToyModel()
        names = {name for name, _ in model.named_parameters()}
        assert "emb.weight" in names
        assert "head.weight" in names
        assert "head.bias" in names
        assert "scale" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names

    def test_parameters_are_trainable_leaves(self):
        model = _ToyModel()
        assert all(p.requires_grad for p in model.parameters())

    def test_num_parameters(self):
        model = _ToyModel()
        expected = 4 * 3 + (3 * 2 + 2) + 1 + 2 * (2 * 2 + 2)
        assert model.num_parameters() == expected

    def test_zero_grad_clears_all(self):
        model = _ToyModel()
        for p in model.parameters():
            p.grad = np.ones_like(p.data)
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        model = _ToyModel()
        state = model.state_dict()
        for p in model.parameters():
            p.data += 1.0
        model.load_state_dict(state)
        for name, p in model.named_parameters():
            np.testing.assert_allclose(p.data, state[name])

    def test_state_dict_is_a_copy(self):
        model = _ToyModel()
        state = model.state_dict()
        model.emb.weight.data += 5.0
        assert not np.allclose(state["emb.weight"], model.emb.weight.data)

    def test_missing_key_rejected(self):
        model = _ToyModel()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        model = _ToyModel()
        state = model.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        model = _ToyModel()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestTrainEvalMode:
    def test_mode_propagates_to_children(self):
        model = _ToyModel()
        assert model.training
        model.eval()
        assert not model.training
        assert not model.head.training
        model.train()
        assert model.blocks[0].training

    def test_dropout_respects_mode(self):
        drop = Dropout(0.5, rng=0)
        x = np.ones((100, 10))
        from repro.tensor import Tensor
        train_out = drop(Tensor(x)).data
        assert (train_out == 0).any()
        drop.eval()
        eval_out = drop(Tensor(x)).data
        np.testing.assert_allclose(eval_out, x)

    def test_dropout_inverted_scaling(self):
        drop = Dropout(0.4, rng=0)
        from repro.tensor import Tensor
        out = drop(Tensor(np.ones((2000, 50)))).data
        # E[out] == 1 under inverted dropout
        assert abs(out.mean() - 1.0) < 0.02

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(3, 2, rng=0)
        from repro.tensor import Tensor
        x = np.ones((5, 3))
        out = layer(Tensor(x))
        assert out.shape == (5, 2)
        np.testing.assert_allclose(
            out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias_option(self):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow(self):
        layer = Linear(2, 2, rng=0)
        from repro.tensor import Tensor
        out = layer(Tensor(np.ones((3, 2))))
        (out * out).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
