"""SL and BSL: closed-form values, identities, gradient structure."""

import numpy as np
import pytest
from scipy.special import logsumexp as lse, softmax as np_softmax

from repro.losses import SoftmaxLoss, BSLLoss, InfoNCELoss
from repro.tensor import Tensor


def _scores(pos, neg):
    return (Tensor(np.asarray(pos, dtype=float), requires_grad=True),
            Tensor(np.asarray(neg, dtype=float), requires_grad=True))


class TestSoftmaxLoss:
    def test_closed_form_value(self):
        p = np.array([0.8, 0.2])
        n = np.array([[0.1, -0.3], [0.5, 0.0]])
        tau = 0.2
        pos, neg = _scores(p, n)
        got = SoftmaxLoss(tau=tau)(pos, neg).item()
        expected = np.mean(-p / tau + lse(n / tau, axis=1))
        assert got == pytest.approx(expected, rel=1e-10)

    def test_include_positive_in_denominator(self):
        p, n = np.array([0.8]), np.array([[0.1, -0.3]])
        tau = 0.2
        pos, neg = _scores(p, n)
        got = SoftmaxLoss(tau=tau, include_positive=True)(pos, neg).item()
        logits = np.concatenate([p[:, None], n], axis=1) / tau
        expected = float(np.mean(-p / tau + lse(logits, axis=1)))
        assert got == pytest.approx(expected, rel=1e-10)

    def test_include_positive_increases_loss(self):
        pos1, neg1 = _scores([0.8], [[0.1, -0.3]])
        pos2, neg2 = _scores([0.8], [[0.1, -0.3]])
        without = SoftmaxLoss(tau=0.2)(pos1, neg1).item()
        with_pos = SoftmaxLoss(tau=0.2, include_positive=True)(pos2, neg2).item()
        assert with_pos > without  # denominator only grows

    def test_scale_by_temperature(self):
        pos1, neg1 = _scores([0.8], [[0.1]])
        pos2, neg2 = _scores([0.8], [[0.1]])
        base = SoftmaxLoss(tau=0.2)(pos1, neg1).item()
        scaled = SoftmaxLoss(tau=0.2, scale_by_temperature=True)(pos2, neg2)
        assert scaled.item() == pytest.approx(0.2 * base, rel=1e-10)

    def test_negative_gradient_is_softmax_weighted(self):
        """The DRO worst-case weights ARE SL's negative gradients (Lemma 1)."""
        tau = 0.15
        n = np.array([[0.4, 0.1, -0.2]])
        pos, neg = _scores([0.5], n)
        SoftmaxLoss(tau=tau)(pos, neg).backward()
        weights = np_softmax(n[0] / tau)
        np.testing.assert_allclose(neg.grad[0], weights / tau, rtol=1e-9)

    def test_hard_negatives_dominate_at_low_tau(self):
        n = np.array([[0.9, 0.0, -0.9]])
        pos, neg = _scores([0.5], n)
        SoftmaxLoss(tau=0.05)(pos, neg).backward()
        assert neg.grad[0, 0] > 100 * neg.grad[0, 1]

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            SoftmaxLoss(tau=0.0)
        with pytest.raises(ValueError):
            SoftmaxLoss(tau=-1.0)

    def test_invariant_to_duplicating_negative_set(self):
        """logsumexp shifts by log2 when duplicating: loss shifts equally
        across rows, so gradients on scores are preserved."""
        pos1, neg1 = _scores([0.5], [[0.2, -0.1]])
        pos2, neg2 = _scores([0.5], [[0.2, -0.1, 0.2, -0.1]])
        l1 = SoftmaxLoss(tau=0.2)(pos1, neg1)
        l2 = SoftmaxLoss(tau=0.2)(pos2, neg2)
        assert l2.item() == pytest.approx(l1.item() + 0.2 / 0.2 * 0.0
                                          + np.log(2), rel=1e-9)


class TestBSLLoss:
    def test_equals_sl_when_taus_match_mean_pooling(self):
        rng = np.random.default_rng(0)
        p, n = rng.normal(size=8) * 0.5, rng.normal(size=(8, 16)) * 0.5
        tau = 0.2
        pos1, neg1 = _scores(p, n)
        pos2, neg2 = _scores(p, n)
        sl = SoftmaxLoss(tau=tau)(pos1, neg1).item()
        bsl = BSLLoss(tau1=tau, tau2=tau, pooling="mean")(pos2, neg2).item()
        # Both are mean over rows of (-pos + tau*lse)/tau up to the
        # logmeanexp-vs-logsumexp constant log(m)/1.
        assert bsl == pytest.approx(sl - np.log(16), rel=1e-9)

    def test_equals_sl_gradients_when_taus_match(self):
        rng = np.random.default_rng(1)
        p, n = rng.normal(size=4) * 0.5, rng.normal(size=(4, 8)) * 0.5
        tau = 0.25
        pos1, neg1 = _scores(p, n)
        pos2, neg2 = _scores(p, n)
        SoftmaxLoss(tau=tau)(pos1, neg1).backward()
        BSLLoss(tau1=tau, tau2=tau, pooling="mean")(pos2, neg2).backward()
        np.testing.assert_allclose(pos1.grad, pos2.grad, rtol=1e-9)
        np.testing.assert_allclose(neg1.grad, neg2.grad, rtol=1e-9)

    def test_pseudocode_closed_form(self):
        """Matches Algorithm 1: -log(exp(pos/t1) / (sum exp(neg/t2))^(t1/t2))."""
        p = np.array([0.6])
        n = np.array([[0.2, -0.4, 0.1]])
        t1, t2 = 0.3, 0.2
        pos, neg = _scores(p, n)
        got = BSLLoss(tau1=t1, tau2=t2, pooling="mean")(pos, neg).item()
        # our negative part uses logmeanexp; the pseudocode uses sum.
        expected = float(-p[0] / t1
                         + (t1 / t2) * (lse(n[0] / t2) - np.log(3)))
        assert got == pytest.approx(expected, rel=1e-9)

    def test_log_mean_exp_reduces_to_sl_single_row(self):
        p, n = np.array([0.6]), np.array([[0.2, -0.4]])
        tau = 0.2
        pos1, neg1 = _scores(p, n)
        pos2, neg2 = _scores(p, n)
        sl_row = (-p[0] / tau + lse(n[0] / tau) - np.log(2))
        bsl = BSLLoss(tau1=tau, tau2=tau, pooling="log_mean_exp")(
            pos2, neg2).item()
        assert bsl == pytest.approx(tau * sl_row, rel=1e-8)

    def test_log_mean_exp_downweights_low_margin_rows(self):
        """Gradient magnitude on a low-score (noisy) positive must be
        smaller than on a high-score positive under strict pooling."""
        p = np.array([0.9, -0.5])   # row 1 looks like a false positive
        n = np.zeros((2, 4))
        pos, neg = _scores(p, n)
        BSLLoss(tau1=0.2, tau2=0.2, pooling="log_mean_exp")(pos, neg).backward()
        assert abs(pos.grad[1]) < abs(pos.grad[0])

    def test_mean_pooling_weights_rows_equally(self):
        p = np.array([0.9, -0.5])
        n = np.zeros((2, 4))
        pos, neg = _scores(p, n)
        BSLLoss(tau1=0.2, tau2=0.2, pooling="mean")(pos, neg).backward()
        assert pos.grad[0] == pytest.approx(pos.grad[1])

    def test_ratio_property(self):
        assert BSLLoss(tau1=0.3, tau2=0.2).ratio == pytest.approx(1.5)

    def test_ratio_scales_negative_part(self):
        p, n = np.array([0.0]), np.array([[0.5, -0.5]])
        pos1, neg1 = _scores(p, n)
        pos2, neg2 = _scores(p, n)
        BSLLoss(tau1=0.2, tau2=0.2, pooling="mean")(pos1, neg1).backward()
        BSLLoss(tau1=0.4, tau2=0.2, pooling="mean")(pos2, neg2).backward()
        # positive pull halves when tau1 doubles
        assert pos2.grad[0] == pytest.approx(pos1.grad[0] / 2, rel=1e-9)
        # negative push doubles relative weight (tau1/tau2 factor)
        assert neg2.grad[0, 0] == pytest.approx(2 * neg1.grad[0, 0], rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            BSLLoss(tau1=0.0, tau2=0.1)
        with pytest.raises(ValueError):
            BSLLoss(tau1=0.1, tau2=-0.1)
        with pytest.raises(ValueError):
            BSLLoss(pooling="median")


class TestInfoNCE:
    def test_identical_views_minimize(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(6, 4))
        same = InfoNCELoss(tau=0.2)(Tensor(z), Tensor(z)).item()
        other = InfoNCELoss(tau=0.2)(Tensor(z),
                                     Tensor(rng.normal(size=(6, 4)))).item()
        assert same < other

    def test_rejects_mismatched_views(self):
        with pytest.raises(ValueError):
            InfoNCELoss()(Tensor(np.zeros((3, 2))), Tensor(np.zeros((4, 2))))

    def test_loss_positive(self):
        rng = np.random.default_rng(0)
        z1, z2 = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        assert InfoNCELoss()(Tensor(z1), Tensor(z2)).item() > 0

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            InfoNCELoss(tau=0.0)
