# Developer entry points.  The test tiers mirror the root conftest.py:
# tier-1 must stay fast; everything slow hides behind --runslow.
#
#   make verify        tier-1 tests + docs/bench checkers (what CI gates on)
#   make verify-slow   everything, incl. paper-figure benches
#   make ci            strict verify, exactly what .github/workflows/ci.yml runs
#   make bench         regenerate BENCH_fastpath.json + BENCH_serve.json
#   make bench-train   regenerate the training frontier (BENCH_train.json)
#   make bench-ann     regenerate the ANN frontier (BENCH_ann.json)
#   make bench-latency regenerate the tail-latency frontier (BENCH_latency.json)
#   make bench-refresh regenerate the live-refresh churn sweep (BENCH_refresh.json)
#   make docs-check    just the README/docs reference checker
#   make bench-check   just the benchmark JSON schema validator

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify verify-slow test ci docs-check bench-check bench bench-train bench-ann bench-latency bench-refresh

verify: docs-check bench-check
	$(PYTHON) -m pytest -x -q

verify-slow: docs-check bench-check
	$(PYTHON) -m pytest -x -q --runslow

test: verify

ci:
	sh scripts/verify.sh --strict

docs-check:
	$(PYTHON) scripts/check_docs.py

bench-check:
	$(PYTHON) scripts/check_bench.py

bench:
	$(PYTHON) -m repro.cli perf --out BENCH_fastpath.json
	$(PYTHON) -m repro.cli perf-serve --out BENCH_serve.json

bench-train:
	$(PYTHON) -m repro.cli perf-train --out BENCH_train.json

bench-ann:
	$(PYTHON) -m repro.cli perf-serve --ann-only --ann-out BENCH_ann.json

bench-latency:
	$(PYTHON) -m repro.cli perf-latency --out BENCH_latency.json

bench-refresh:
	$(PYTHON) -m repro.cli perf-refresh --out BENCH_refresh.json
