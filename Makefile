# Developer entry points.  The test tiers mirror the root conftest.py:
# tier-1 must stay fast; everything slow hides behind --runslow.
#
#   make verify          tier-1 tests + docs/bench checkers (what CI gates on)
#   make verify-slow     everything, incl. paper-figure benches
#   make ci              strict verify, exactly what .github/workflows/ci.yml runs
#   make bench           regenerate BENCH_fastpath.json + BENCH_serve.json
#   make bench-<suite>   regenerate one registry suite (fastpath, train,
#                        serve, ann, latency, refresh, obs, scale) via
#                        `repro bench <suite>`; see repro.experiments.bench
#   make docs-check      just the README/docs reference checker
#   make bench-check     just the benchmark JSON schema validator

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify verify-slow test ci docs-check bench-check bench bench-fastpath bench-train bench-serve bench-ann bench-latency bench-refresh bench-obs bench-faults bench-scale

verify: docs-check bench-check
	$(PYTHON) -m pytest -x -q

verify-slow: docs-check bench-check
	$(PYTHON) -m pytest -x -q --runslow

test: verify

ci:
	sh scripts/verify.sh --strict

docs-check:
	$(PYTHON) scripts/check_docs.py

bench-check:
	$(PYTHON) scripts/check_bench.py

bench: bench-fastpath bench-serve

bench-fastpath:
	$(PYTHON) -m repro.cli bench fastpath --out BENCH_fastpath.json

bench-train:
	$(PYTHON) -m repro.cli bench train --out BENCH_train.json

bench-serve:
	$(PYTHON) -m repro.cli bench serve --out BENCH_serve.json

bench-ann:
	$(PYTHON) -m repro.cli bench ann --out BENCH_ann.json

bench-latency:
	$(PYTHON) -m repro.cli bench latency --out BENCH_latency.json

bench-refresh:
	$(PYTHON) -m repro.cli bench refresh --out BENCH_refresh.json

bench-obs:
	$(PYTHON) -m repro.cli bench obs --out BENCH_obs.json

bench-scale:
	$(PYTHON) -m repro.cli bench scale --out BENCH_scale.json

bench-faults:
	$(PYTHON) -m repro.cli bench faults --out BENCH_faults.json
