# Developer entry points.  The test tiers mirror the root conftest.py:
# tier-1 must stay fast; everything slow hides behind --runslow.
#
#   make verify        tier-1 tests + docs-link checker (CI gate)
#   make verify-slow   everything, incl. paper-figure benches
#   make bench         regenerate BENCH_fastpath.json + BENCH_serve.json
#   make docs-check    just the README/docs reference checker

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify verify-slow test docs-check bench

verify: docs-check
	$(PYTHON) -m pytest -x -q

verify-slow: docs-check
	$(PYTHON) -m pytest -x -q --runslow

test: verify

docs-check:
	$(PYTHON) scripts/check_docs.py

bench:
	$(PYTHON) -m repro.cli perf --out BENCH_fastpath.json
	$(PYTHON) -m repro.cli perf-serve --out BENCH_serve.json
