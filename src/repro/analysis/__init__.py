"""Analysis tools: t-SNE projection and embedding separation scores."""

from repro.analysis.tsne import tsne
from repro.analysis.kmeans import kmeans
from repro.analysis.separation import (silhouette_score,
                                       cluster_separation_ratio,
                                       alignment_uniformity)

__all__ = ["tsne", "kmeans", "silhouette_score",
           "cluster_separation_ratio", "alignment_uniformity"]
