"""Analysis tools: t-SNE projection and embedding separation scores."""

from repro.analysis.tsne import tsne
from repro.analysis.kmeans import kmeans, sq_dists
from repro.analysis.separation import (silhouette_score,
                                       cluster_separation_ratio,
                                       alignment_uniformity)

__all__ = ["tsne", "kmeans", "sq_dists", "silhouette_score",
           "cluster_separation_ratio", "alignment_uniformity"]
