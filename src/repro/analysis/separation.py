"""Quantitative embedding-quality scores.

The paper's Figs. 10-11 argue visually that BSL keeps item clusters
separated under positive noise while SL's embeddings entangle.  Our
synthetic datasets expose ground-truth item clusters, so separation can
be *scored* instead of eyeballed:

* :func:`silhouette_score` — classic cluster-separation measure;
* :func:`cluster_separation_ratio` — between/within centroid distances;
* :func:`alignment_uniformity` — the alignment/uniformity pair from
  Wang & Isola, standard diagnostics for contrastive embeddings.
"""

from __future__ import annotations

import numpy as np

__all__ = ["silhouette_score", "cluster_separation_ratio",
           "alignment_uniformity"]


def _normalize_rows(x: np.ndarray) -> np.ndarray:
    return x / (np.linalg.norm(x, axis=1, keepdims=True) + 1e-12)


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (Euclidean).

    s(i) = (b(i) - a(i)) / max(a(i), b(i)) where ``a`` is the mean
    intra-cluster distance and ``b`` the smallest mean distance to
    another cluster.  Exact O(n^2) computation.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    sq = (x ** 2).sum(axis=1)
    dists = np.sqrt(np.maximum(sq[:, None] + sq[None, :] - 2 * x @ x.T, 0.0))
    scores = np.zeros(len(x))
    masks = {c: labels == c for c in unique}
    for i in range(len(x)):
        own = masks[labels[i]].copy()
        own[i] = False
        if own.sum() == 0:
            scores[i] = 0.0
            continue
        a = dists[i, own].mean()
        b = min(dists[i, masks[c]].mean() for c in unique if c != labels[i])
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def cluster_separation_ratio(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean between-centroid distance over mean within-cluster spread.

    Larger = better separated.  Robust to a few tiny clusters.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    centroids, spreads = [], []
    for c in unique:
        members = x[labels == c]
        if len(members) < 2:
            continue
        centroid = members.mean(axis=0)
        centroids.append(centroid)
        spreads.append(np.linalg.norm(members - centroid, axis=1).mean())
    if len(centroids) < 2:
        raise ValueError("need at least 2 populated clusters")
    centroids = np.asarray(centroids)
    diffs = centroids[:, None, :] - centroids[None, :, :]
    between = np.linalg.norm(diffs, axis=-1)
    n = len(centroids)
    mean_between = between[np.triu_indices(n, k=1)].mean()
    mean_within = float(np.mean(spreads))
    return float(mean_between / max(mean_within, 1e-12))


def alignment_uniformity(x: np.ndarray, labels: np.ndarray,
                         t: float = 2.0) -> tuple[float, float]:
    """(alignment, uniformity) on the unit sphere.

    Alignment: mean squared distance between normalized embeddings of
    same-cluster pairs (lower is better).  Uniformity:
    ``log E[exp(-t ||zi - zj||^2)]`` over all pairs (lower is better).
    """
    z = _normalize_rows(np.asarray(x, dtype=np.float64))
    labels = np.asarray(labels)
    sq = (z ** 2).sum(axis=1)
    d2 = np.maximum(sq[:, None] + sq[None, :] - 2 * z @ z.T, 0.0)
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    alignment = float(d2[same].mean()) if same.any() else 0.0
    off_diag = ~np.eye(len(z), dtype=bool)
    uniformity = float(np.log(np.exp(-t * d2[off_diag]).mean()))
    return alignment, uniformity
