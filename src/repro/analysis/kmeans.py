"""Plain k-means (Lloyd's algorithm) on numpy.

Used by the NCL backbone for its prototype-contrastive branch
(semantic neighbours) and available as a general analysis utility.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.random import ensure_rng

__all__ = ["kmeans", "sq_dists"]


def kmeans(x: np.ndarray, n_clusters: int, n_iter: int = 20,
           rng=None) -> tuple[np.ndarray, np.ndarray]:
    """Cluster rows of ``x`` into ``n_clusters`` groups.

    Returns ``(centroids, labels)``.  Initialization is k-means++-style
    (distance-weighted seeding); empty clusters are reseeded to the
    farthest point.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if not 1 <= n_clusters <= len(x):
        raise ValueError(f"need 1 <= n_clusters <= {len(x)}, "
                         f"got {n_clusters}")
    rng = ensure_rng(rng)

    centroids = _plus_plus_init(x, n_clusters, rng)
    labels = np.zeros(len(x), dtype=np.int64)
    for _ in range(n_iter):
        dists = _sq_dists(x, centroids)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
        for c in range(n_clusters):
            members = x[labels == c]
            if len(members) == 0:
                farthest = dists.min(axis=1).argmax()
                centroids[c] = x[farthest]
            else:
                centroids[c] = members.mean(axis=0)
    return centroids, labels


def _plus_plus_init(x: np.ndarray, k: int, rng) -> np.ndarray:
    centroids = [x[rng.integers(len(x))]]
    for _ in range(k - 1):
        dists = _sq_dists(x, np.asarray(centroids)).min(axis=1)
        total = dists.sum()
        if total <= 0:
            centroids.append(x[rng.integers(len(x))])
            continue
        probs = dists / total
        centroids.append(x[rng.choice(len(x), p=probs)])
    return np.asarray(centroids)


def sq_dists(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise squared euclidean distances, ``(len(x), len(centroids))``.

    Uses the expanded form with a clamp at zero (cancellation can push
    tiny distances negative).  Shared by k-means and the ANN tier's
    list assignment / PQ encoding, so the numerics live in one place.
    """
    x_sq = (x ** 2).sum(axis=1, keepdims=True)
    c_sq = (centroids ** 2).sum(axis=1)
    return np.maximum(x_sq + c_sq - 2.0 * x @ centroids.T, 0.0)


#: module-internal alias kept for the call sites above
_sq_dists = sq_dists
