"""Exact t-SNE (van der Maaten & Hinton, 2008) in numpy.

Used for the Figs. 10-11 embedding-visualization study: the paper
projects item embeddings to 2-D and inspects cluster separation under
positive noise.  scikit-learn is unavailable offline, so this is a
self-contained exact implementation: binary-search perplexity
calibration, early exaggeration, and momentum gradient descent.
Exact (O(n^2)) is fine at our item-catalogue scales (< 1k points).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.random import ensure_rng

__all__ = ["tsne"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = (x ** 2).sum(axis=1)
    d = sq[:, None] + sq[None, :] - 2.0 * x @ x.T
    np.fill_diagonal(d, 0.0)
    return np.maximum(d, 0.0)


def _row_p_given_perplexity(dists_row: np.ndarray, target_entropy: float,
                            tol: float = 1e-5, max_iter: int = 50
                            ) -> np.ndarray:
    """Binary search the Gaussian precision matching the perplexity."""
    lo, hi = 0.0, np.inf
    beta = 1.0
    for _ in range(max_iter):
        logits = -dists_row * beta
        logits -= logits.max()
        p = np.exp(logits)
        p_sum = p.sum()
        p /= p_sum
        # Shannon entropy in nats.
        nonzero = p > 0
        entropy = -np.sum(p[nonzero] * np.log(p[nonzero]))
        diff = entropy - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:  # entropy too high -> sharpen
            lo = beta
            beta = beta * 2.0 if hi == np.inf else (beta + hi) / 2.0
        else:
            hi = beta
            beta = (beta + lo) / 2.0
    return p


def _joint_probabilities(x: np.ndarray, perplexity: float) -> np.ndarray:
    n = len(x)
    dists = _pairwise_sq_dists(x)
    target_entropy = np.log(perplexity)
    p_cond = np.zeros((n, n))
    idx = np.arange(n)
    for i in range(n):
        mask = idx != i
        p_cond[i, mask] = _row_p_given_perplexity(dists[i, mask],
                                                  target_entropy)
    p = (p_cond + p_cond.T) / (2.0 * n)
    return np.maximum(p, 1e-12)


def tsne(x, n_components: int = 2, perplexity: float = 30.0,
         n_iter: int = 300, learning_rate: float = 100.0,
         early_exaggeration: float = 4.0, rng=None) -> np.ndarray:
    """Project ``x`` (n, d) to ``(n, n_components)`` with exact t-SNE.

    Parameters mirror the common sklearn defaults (scaled down for our
    point counts).  Deterministic for a fixed ``rng``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    n = len(x)
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = ensure_rng(rng)

    p = _joint_probabilities(x, perplexity)
    y = rng.normal(0.0, 1e-4, size=(n, n_components))
    velocity = np.zeros_like(y)
    exaggeration_until = min(100, n_iter // 4)

    for it in range(n_iter):
        p_eff = p * early_exaggeration if it < exaggeration_until else p
        # Student-t affinities in the embedding.
        dists = _pairwise_sq_dists(y)
        inv = 1.0 / (1.0 + dists)
        np.fill_diagonal(inv, 0.0)
        q = inv / inv.sum()
        q = np.maximum(q, 1e-12)
        # Gradient of KL(P||Q).
        coeff = (p_eff - q) * inv
        grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)
        momentum = 0.5 if it < exaggeration_until else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y += velocity
        y -= y.mean(axis=0)
    return y
