"""Command-line interface: ``python -m repro.cli``.

Subcommands:

* ``train`` — train one (dataset, model, loss) cell and print metrics.
  Scale presets (``scale-1m`` etc.) train **out-of-core**: interaction
  shards stream through the sparse-grad path into mmap-backed tables.
* ``datasets`` — list the built-in synthetic presets with statistics,
  plus the out-of-core scale presets (never materialized densely).
* ``sweep-tau`` — quick SL temperature sweep on one dataset.
* ``bench`` — run one registered benchmark suite
  (:mod:`repro.experiments.bench`): ``bench fastpath`` / ``bench
  train`` / ``bench serve`` / ``bench ann`` / ``bench latency`` /
  ``bench refresh`` / ``bench scale``, each writing its registry
  ``BENCH_*.json`` file.  The historical ``perf`` / ``perf-train`` /
  ``perf-serve`` / ``perf-latency`` / ``perf-refresh`` verbs remain as
  deprecated aliases; ``perf-scale`` is a supported shorthand for
  ``bench scale``.
* ``export`` — train (or load a checkpoint) and freeze the model into a
  serving snapshot directory (:mod:`repro.serve`); ``--shards N``
  writes a horizontally partitioned snapshot instead.  Scale presets
  export straight from the mmap'd tables and interaction shards — no
  dense intermediates.
* ``build-ann`` — train an approximate-retrieval IVF index
  (:mod:`repro.ann`) from an exported snapshot into an index
  directory with a content-hashed manifest.
* ``recommend`` — answer top-K requests from an exported snapshot
  (sharded directories are detected and scatter-gather-routed
  automatically; ``--ann DIR`` serves through an IVF candidate
  index built by ``build-ann``).
* ``delta-export`` — diff two exported snapshots into a
  content-hash-chained delta directory (:mod:`repro.serve.delta`).
* ``apply-deltas`` — replay a delta chain onto a base snapshot and
  write the resulting snapshot (bit-identical to a fresh export of
  the final state; see ``docs/live_index.md``).
* ``refresh`` — demo the live swap: serve a paced request stream from
  a base snapshot and atomically refresh to the delta-applied version
  mid-stream, printing the swap pause and version accounting.
* ``metrics`` — export the process metrics registry
  (:mod:`repro.obs`) as Prometheus text or JSON; ``--demo`` drives a
  tiny train + serve workload first so every family has samples.
  ``recommend --trace`` prints the request's span tree.
"""

from __future__ import annotations

import argparse

from repro.data import (SCALE_PRESETS, dataset_names, load_dataset,
                        scale_preset_names)
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.bench import (ALIAS_VERBS, add_bench_subparsers,
                                     add_legacy_verbs, get_suite, run_legacy)
from repro.experiments.report import print_series, print_table
from repro.losses import loss_names
from repro.models import model_names

#: Default request-side knobs shared by ``recommend`` and the docs.
DEFAULT_TOP_K = 10


def _cmd_datasets(_args) -> int:
    """List every built-in synthetic preset with its Table-I statistics."""
    rows = []
    for name in dataset_names():
        ds = load_dataset(name)
        rows.append([name, ds.num_users, ds.num_items, ds.num_train,
                     ds.num_test, f"{ds.density:.3%}"])
    print_table("Built-in synthetic presets (Table I shaped)",
                ["name", "users", "items", "train", "test", "density"],
                rows, precision=0)
    scale_rows = []
    for name in scale_preset_names():
        cfg = SCALE_PRESETS[name]
        scale_rows.append([name, cfg.num_users, cfg.num_items,
                           int(cfg.mean_interactions * cfg.num_users),
                           cfg.num_clusters])
    print_table("Out-of-core scale presets (sharded on first use; "
                "`train`/`export` stream them)",
                ["name", "users", "items", "~train", "clusters"],
                scale_rows, precision=0)
    return 0


def _loss_kwargs(args) -> dict:
    if args.loss == "sl":
        return {"tau": args.tau}
    if args.loss == "bsl":
        return {"tau1": args.tau1 or args.tau, "tau2": args.tau}
    return {}


def _train_spec(args) -> ExperimentSpec:
    """Translate parsed ``train``/``export`` flags into an ExperimentSpec."""
    return ExperimentSpec(
        dataset=args.dataset, model=args.model, loss=args.loss,
        loss_kwargs=_loss_kwargs(args), dim=args.dim, epochs=args.epochs,
        learning_rate=args.lr, n_negatives=args.negatives,
        positive_noise=getattr(args, "positive_noise", 0.0),
        rnoise=getattr(args, "rnoise", 0.0), seed=args.seed)


def _scale_table_dir(name: str, dim: int, seed: int):
    """Where a scale preset's trained mmap tables live."""
    from repro.data import scale_cache_root
    return scale_cache_root() / name / f"tables-dim{dim}-seed{seed}"


def _train_scale(args) -> int:
    """Out-of-core training for a scale preset (the ``train`` verb path).

    Streams the preset's interaction shards through the sparse-grad
    trainer into freshly initialized mmap-backed MF tables — peak RSS
    follows the touched rows, never the catalogue.  The tables stay in
    the scale cache for ``repro export`` to freeze.
    """
    from repro.data import load_scale_source
    from repro.losses.registry import get_loss
    from repro.train import (TrainConfig, Trainer, flush_model,
                             init_mmap_mf_tables, open_mmap_mf)
    if args.model != "mf":
        raise SystemExit(
            f"scale presets train out-of-core and support only "
            f"--model mf (got {args.model!r})")
    if getattr(args, "positive_noise", 0.0):
        raise SystemExit(
            "--positive-noise rewrites the dense dataset and is not "
            "supported with scale presets")
    source = load_scale_source(args.dataset)
    table_dir = _scale_table_dir(args.dataset, args.dim, args.seed)
    init_mmap_mf_tables(table_dir, source.num_users, source.num_items,
                        args.dim, rng=args.seed)
    model = open_mmap_mf(table_dir)
    loss = get_loss(args.loss, **_loss_kwargs(args))
    config = TrainConfig(
        epochs=args.epochs, learning_rate=args.lr,
        n_negatives=args.negatives, grad_mode="sparse", seed=args.seed,
        rnoise=getattr(args, "rnoise", 0.0),
        verbose=getattr(args, "verbose", False))
    result = Trainer(model, loss, source, config).fit()
    flush_model(model)
    print_table(
        f"{args.model}+{args.loss} on {args.dataset} (out-of-core)",
        ["field", "value"],
        [["users", source.num_users], ["items", source.num_items],
         ["train pairs", source.num_train], ["epochs", args.epochs],
         ["final loss", f"{result.final_loss:.4f}"],
         ["tables", str(table_dir)]], precision=0)
    return 0


def _cmd_train(args) -> int:
    """Train one experiment cell and print its evaluation metrics."""
    if args.dataset in SCALE_PRESETS:
        return _train_scale(args)
    spec = _train_spec(args)
    result = run_experiment(spec, verbose=args.verbose)
    print_table(f"{args.model}+{args.loss} on {args.dataset}",
                ["metric", "value"],
                [[k, v] for k, v in sorted(result.metrics.items())])
    return 0


def _cmd_sweep_tau(args) -> int:
    """Sweep the SL temperature on one dataset and report the best tau."""
    taus = [float(t) for t in args.taus.split(",")]
    values = []
    for tau in taus:
        spec = ExperimentSpec(dataset=args.dataset, model=args.model,
                              loss="sl", loss_kwargs={"tau": tau},
                              epochs=args.epochs, seed=args.seed)
        values.append(run_experiment(spec).metric("ndcg@20"))
    print_series(f"NDCG@20 vs tau on {args.dataset}", taus, values)
    best = taus[values.index(max(values))]
    print(f"best tau: {best}")
    return 0


def _cmd_bench(args) -> int:
    """Dispatch ``repro bench <suite>`` through the registry."""
    return get_suite(args.suite).run(args)


def _export_scale(args) -> int:
    """Out-of-core export for a scale preset (the ``export`` verb path).

    Trains the preset's tables in place (same as ``repro train``) and
    freezes them with
    :func:`repro.serve.export_sharded_source_snapshot`: table rows are
    copied shard by shard from the memmaps and the seen-item CSR comes
    straight from the interaction shards, so no dense per-catalogue
    intermediate is ever built.  Scale exports are always sharded
    (``--shards`` defaults to 4 here).
    """
    import numpy as np

    from repro.data import load_scale_source
    from repro.serve import export_sharded_source_snapshot
    from repro.train.outofcore import ITEM_TABLE, USER_TABLE
    if args.checkpoint:
        raise SystemExit(
            "--checkpoint is not supported with scale presets; tables "
            "are trained in place under the scale cache")
    _train_scale(args)
    source = load_scale_source(args.dataset)
    table_dir = _scale_table_dir(args.dataset, args.dim, args.seed)
    users = np.load(table_dir / USER_TABLE, mmap_mode="r")
    items = np.load(table_dir / ITEM_TABLE, mmap_mode="r")
    shards = args.shards or 4
    snapshot = export_sharded_source_snapshot(
        users, items, source, args.out, shards=shards,
        partition_by=args.partition_by, strategy=args.partition,
        model_name=args.model,
        extra={"loss": args.loss, "epochs": args.epochs,
               "scale_preset": args.dataset})
    manifest = snapshot.manifest
    print_table(
        f"sharded snapshot {args.out}", ["field", "value"],
        [["version", manifest.version], ["model", manifest.model],
         ["user shards", manifest.num_user_shards],
         ["item shards", manifest.num_item_shards],
         ["partition", f"{manifest.strategy} by {manifest.partition_by}"],
         ["users", manifest.num_users], ["items", manifest.num_items],
         ["scoring", manifest.scoring]], precision=0)
    return 0


def _cmd_export(args) -> int:
    """Freeze a trained backbone into a serving snapshot directory.

    Either trains the requested cell from scratch (the default) or, with
    ``--checkpoint``, rebuilds the model and loads previously saved
    parameters before exporting.  With ``--shards N`` the snapshot is
    written horizontally partitioned (``--partition-by`` picks the
    sharded axes, ``--partition`` the placement scheme).  Scale presets
    take the out-of-core path: mmap tables + interaction shards, always
    sharded.
    """
    from repro.serve import export_sharded_snapshot, export_snapshot

    if args.dataset in SCALE_PRESETS:
        return _export_scale(args)
    if args.checkpoint:
        from repro.models import get_model
        from repro.train.checkpoint import load_checkpoint
        dataset = load_dataset(args.dataset)
        model = get_model(args.model, dataset, dim=args.dim, rng=args.seed)
        load_checkpoint(model, args.checkpoint)
    else:
        result = run_experiment(_train_spec(args))
        model, dataset = result.model, result.dataset
        print_table(f"trained {args.model}+{args.loss} on {args.dataset}",
                    ["metric", "value"],
                    [[k, v] for k, v in sorted(result.metrics.items())])
    extra = {"loss": args.loss, "epochs": args.epochs,
             "checkpoint": args.checkpoint or ""}
    if args.shards:
        snapshot = export_sharded_snapshot(
            model, dataset, args.out, shards=args.shards,
            partition_by=args.partition_by, strategy=args.partition,
            model_name=args.model, extra=extra)
        manifest = snapshot.manifest
        print_table(
            f"sharded snapshot {args.out}", ["field", "value"],
            [["version", manifest.version], ["model", manifest.model],
             ["user shards", manifest.num_user_shards],
             ["item shards", manifest.num_item_shards],
             ["partition", f"{manifest.strategy} by "
                           f"{manifest.partition_by}"],
             ["users", manifest.num_users], ["items", manifest.num_items],
             ["scoring", manifest.scoring]], precision=0)
        return 0
    snapshot = export_snapshot(model, dataset, args.out,
                               model_name=args.model, extra=extra)
    manifest = snapshot.manifest
    print_table(f"snapshot {args.out}", ["field", "value"],
                [["version", manifest.version], ["model", manifest.model],
                 ["dim", manifest.dim], ["users", manifest.num_users],
                 ["items", manifest.num_items],
                 ["scoring", manifest.scoring]], precision=0)
    return 0


def _cmd_build_ann(args) -> int:
    """Train an IVF(-PQ) candidate index from an exported snapshot.

    Reads the snapshot, clusters the item table with the repo's
    k-means, writes the inverted lists (and PQ codes for
    ``--kind ivfpq``) plus a content-hashed ``manifest.json`` into
    ``--out``.  Builds are deterministic: the same snapshot, parameters
    and ``--seed`` produce a byte-identical directory.
    """
    from repro.ann import build_ann_index
    from repro.serve import load_snapshot

    snapshot = load_snapshot(args.snapshot, verify=args.verify)
    index = build_ann_index(
        snapshot, args.out, kind=args.kind, nlist=args.nlist,
        spill=args.spill, default_nprobe=args.nprobe, seed=args.seed,
        train_iters=args.train_iters, pq_m=args.pq_m, pq_ks=args.pq_ks)
    data = index.data
    rows = [["kind", index.kind], ["nlist", data.nlist],
            ["spill", data.max_spill], ["nprobe", data.default_nprobe],
            ["postings", len(data.list_items)],
            ["items", data.num_items],
            ["index KiB", f"{index.table_bytes / 1024:.0f}"],
            ["snapshot", snapshot.version]]
    print_table(f"ANN index {args.out}", ["field", "value"], rows,
                precision=0)
    return 0


def _cmd_recommend(args) -> int:
    """Serve top-K recommendations for a list of users from a snapshot.

    Sharded snapshot directories (written by ``repro export --shards``)
    are detected automatically and served through the scatter-gather
    :class:`~repro.serve.router.ShardedRecommendationService`.  With
    ``--ann DIR`` candidates come from an IVF index built by
    ``repro build-ann`` — over-fetched per user and re-scored exactly,
    so scores remain comparable to the exact index.
    """
    from repro.serve import (RecommendationService,
                             ShardedRecommendationService, ShardedTopKIndex,
                             build_index, is_sharded_snapshot,
                             load_sharded_snapshot, load_snapshot)

    if is_sharded_snapshot(args.snapshot):
        snapshot = load_sharded_snapshot(args.snapshot, verify=args.verify)
        if args.ann:
            from repro.ann import load_ann_generator
            router = ShardedTopKIndex(
                snapshot, kind=args.index,
                ann=load_ann_generator(args.ann, snapshot=snapshot,
                                       verify=args.verify))
            service = ShardedRecommendationService(snapshot, index=router)
        else:
            service = ShardedRecommendationService(snapshot, kind=args.index)
        index = service.index
    else:
        snapshot = load_snapshot(args.snapshot, verify=args.verify)
        if args.ann:
            if args.index != "exact":
                # On a sharded snapshot --index picks the per-shard
                # scorer under the ANN prefilter; unsharded ANN serving
                # replaces the index outright, so an explicit non-exact
                # choice would be silently ignored — refuse instead.
                raise SystemExit(
                    "recommend: --ann replaces the index on an unsharded "
                    "snapshot; drop --index or use a sharded snapshot to "
                    "combine an ANN prefilter with per-shard "
                    f"{args.index!r} scoring")
            from repro.ann import load_ann_index
            index = load_ann_index(args.ann, snapshot, verify=args.verify)
        else:
            index = build_index(snapshot, args.index)
        service = RecommendationService(snapshot, index=index)
    users = [int(u) for u in args.users.split(",")]
    if args.trace:
        from repro.obs import format_span_tree, get_tracer, tracing
        tracer = get_tracer()
        tracer.clear()
        with tracing():
            recs = list(service.recommend(
                users, k=args.k, filter_seen=not args.no_filter_seen))
    else:
        recs = list(service.recommend(users, k=args.k,
                                      filter_seen=not args.no_filter_seen))
    rows = [[rec.user_id,
             " ".join(str(i) for i in rec.items.tolist()),
             " ".join(f"{s:.4f}" for s in rec.scores.tolist())]
            for rec in recs]
    print_table(
        f"top-{args.k} from {args.snapshot} "
        f"({index.kind}, snapshot {snapshot.version})",
        ["user", "items", "scores"], rows, precision=0)
    if args.trace:
        # Sharded routing records its phase spans from fan-out worker
        # threads, which finish as separate roots — print every root
        # collected during the call, not just the last.
        print()
        for root in tracer.traces():
            print(format_span_tree(root))
    return 0


def _cmd_delta_export(args) -> int:
    """Diff two exported snapshots into a delta directory.

    The delta's manifest chains ``base -> new`` by content version, so
    ``apply-deltas`` can refuse out-of-order or re-based replays.
    """
    from repro.serve import load_snapshot
    from repro.serve.delta import LiveState, export_delta

    base = load_snapshot(args.base, verify=args.verify)
    new = load_snapshot(args.new, verify=args.verify)
    delta = export_delta(LiveState.from_snapshot(base),
                         LiveState.from_snapshot(new), args.out)
    manifest = delta.manifest
    print_table(
        f"delta {args.out}", ["field", "value"],
        [["version", manifest.version],
         ["base", manifest.base_version], ["new", manifest.new_version],
         ["user upserts", manifest.user_upserts],
         ["user deletes", manifest.user_deletes],
         ["item upserts", manifest.item_upserts],
         ["item deletes", manifest.item_deletes]], precision=0)
    return 0


def _cmd_apply_deltas(args) -> int:
    """Replay a delta chain onto a base snapshot, write the result.

    The written snapshot is byte-identical to a fresh export of the
    final state (modulo the export timestamp), and each link's content
    hash and base version are checked before any array is touched.
    """
    from repro.serve import load_snapshot
    from repro.serve.delta import apply_deltas, load_delta

    base = load_snapshot(args.base, verify=args.verify)
    deltas = [load_delta(path) for path in args.deltas.split(",")]
    snapshot = apply_deltas(base, deltas, args.out)
    manifest = snapshot.manifest
    print_table(
        f"snapshot {args.out}", ["field", "value"],
        [["version", manifest.version], ["base", base.version],
         ["deltas applied", len(deltas)],
         ["users", manifest.num_users], ["items", manifest.num_items],
         ["scoring", manifest.scoring]], precision=0)
    return 0


def _cmd_refresh(args) -> int:
    """Demo the atomic live swap under a paced request stream.

    Serves ``--requests`` paced lookups from ``--snapshot`` through the
    async runtime, applies ``--deltas`` mid-stream via
    :meth:`~repro.serve.runtime.ServingRuntime.refresh`, and prints the
    swap accounting: every response is attributable to exactly one
    snapshot version and none are dropped.
    """
    import time as _time

    import numpy as np

    from repro.serve import (RecommendationService, ServingRuntime,
                             load_snapshot)
    from repro.serve.delta import apply_deltas, load_delta

    base = load_snapshot(args.snapshot, verify=args.verify)
    deltas = [load_delta(path) for path in args.deltas.split(",")]
    new = apply_deltas(base, deltas)
    service = RecommendationService(base)
    rng = np.random.default_rng(args.seed)
    users = rng.integers(0, base.manifest.num_users, size=args.requests)
    handles = []
    with ServingRuntime(service) as runtime:
        start = _time.perf_counter()
        for i, user in enumerate(users.tolist()):
            delay = start + i / args.qps - _time.perf_counter()
            if delay > 0:
                _time.sleep(delay)
            if i == args.requests // 2:
                invalidated = runtime.refresh(new)
            handles.append(runtime.submit(int(user), k=args.k))
        results = [h.result(timeout=30.0) for h in handles]
    served = {}
    for rec in results:
        served[rec.snapshot_version] = served.get(rec.snapshot_version,
                                                  0) + 1
    rows = [["base version", base.version], ["new version", new.version],
            ["requests", len(results)],
            ["cache entries invalidated", invalidated],
            ["swap pause ms",
             f"{1e3 * runtime.stats.refresh_s:.3f}"]]
    rows += [[f"served by {version}", count]
             for version, count in sorted(served.items())]
    print_table(f"live refresh of {args.snapshot}", ["field", "value"],
                rows, precision=0)
    return 0


def _demo_metrics_workload() -> None:
    """Drive a tiny train + serve pass so every instrument family of
    the registry has samples (training, sampler, cache, serving)."""
    import tempfile

    from repro.serve import (RecommendationService, ServingRuntime,
                             export_snapshot, load_snapshot)

    spec = ExperimentSpec(dataset="yelp2018-small", model="mf", loss="bsl",
                          dim=16, epochs=2, seed=0)
    result = run_experiment(spec)
    with tempfile.TemporaryDirectory() as tmp:
        export_snapshot(result.model, result.dataset, tmp)
        service = RecommendationService(load_snapshot(tmp), cache_size=64)
        with ServingRuntime(service) as runtime:
            handles = [runtime.submit(u % result.dataset.num_users, k=5)
                       for u in range(32)]
            for handle in handles:
                handle.result(timeout=30.0)


def _cmd_metrics(args) -> int:
    """Export the process-global metrics registry.

    By default renders whatever this process has recorded so far (the
    library path: scripts call :func:`repro.obs.get_registry` and dump
    at exit).  ``--demo`` first drives a tiny train + serve workload so
    every family has samples — ``scripts/verify.sh`` uses this to
    smoke-test the exposition format — and ``--validate`` re-parses the
    Prometheus output, failing on malformed or duplicate families.
    """
    from repro.obs import get_registry
    from repro.obs.export import json as json_export
    from repro.obs.export import prom

    if args.validate and args.format != "prom":
        raise SystemExit("metrics: --validate applies to --format prom")
    if args.demo:
        _demo_metrics_workload()
    registry = get_registry()
    if args.format == "json":
        text = json_export.render(registry) + "\n"
    else:
        text = prom.render(registry)
    if args.validate:
        problems = prom.validate_exposition(text)
        if problems:
            for problem in problems:
                print(f"metrics: {problem}")
            return 1
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.format} exposition to {args.out}")
    else:
        print(text, end="")
    return 0


def _add_train_cell_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every verb that trains one (model, loss) cell."""
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names() + scale_preset_names(),
                        help="built-in preset, or a scale preset for the "
                             "out-of-core path")
    parser.add_argument("--model", default="mf", choices=model_names())
    parser.add_argument("--loss", default="bsl", choices=loss_names())
    parser.add_argument("--tau", type=float, default=0.4,
                        help="SL temperature / BSL tau2")
    parser.add_argument("--tau1", type=float, default=None,
                        help="BSL positive temperature (default: tau)")
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--lr", type=float, default=5e-2)
    parser.add_argument("--negatives", type=int, default=128)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """Construct the full ``repro`` argparse tree (used by the CLI and
    by ``tests/test_docs.py`` to validate README command examples)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="BSL reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list built-in dataset and scale presets")

    train = sub.add_parser("train", help="train one experiment cell "
                                         "(scale presets run out-of-core)")
    _add_train_cell_args(train)
    train.add_argument("--positive-noise", type=float, default=0.0)
    train.add_argument("--rnoise", type=float, default=0.0)
    train.add_argument("--verbose", action="store_true")

    sweep = sub.add_parser("sweep-tau", help="SL temperature sweep")
    sweep.add_argument("--dataset", default="yelp2018-small",
                       choices=dataset_names())
    sweep.add_argument("--model", default="mf", choices=model_names())
    sweep.add_argument("--taus", default="0.2,0.3,0.4,0.6")
    sweep.add_argument("--epochs", type=int, default=18)
    sweep.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench",
        help="run a registered benchmark suite "
             "(fastpath/train/serve/ann/latency/refresh/scale)")
    bench_sub = bench.add_subparsers(dest="suite", required=True)
    add_bench_subparsers(bench_sub)

    export = sub.add_parser(
        "export", help="train (or load) a model and export a serving "
                       "snapshot (scale presets export out-of-core)")
    _add_train_cell_args(export)
    export.add_argument("--checkpoint", default=None,
                        help="load parameters from a .npz checkpoint "
                             "instead of training")
    export.add_argument("--out", default="snapshot",
                        help="snapshot output directory")
    export.add_argument("--shards", type=int, default=0,
                        help="write a sharded snapshot with this many "
                             "partitions per sharded axis (0 = unsharded; "
                             "scale presets always shard, default 4)")
    export.add_argument("--partition-by", default="both",
                        choices=("user", "item", "both"),
                        help="which axes to shard (with --shards)")
    export.add_argument("--partition", default="contiguous",
                        choices=("contiguous", "hash"),
                        help="id placement scheme (with --shards)")

    build_ann = sub.add_parser(
        "build-ann",
        help="train an IVF candidate index from an exported snapshot")
    build_ann.add_argument("--snapshot", required=True,
                           help="snapshot directory written by `repro export`")
    build_ann.add_argument("--out", required=True,
                           help="ANN index output directory")
    build_ann.add_argument("--kind", default="ivf",
                           choices=("ivf", "ivfpq"))
    build_ann.add_argument("--nlist", type=int, default=16,
                           help="number of inverted lists (k-means clusters)")
    build_ann.add_argument("--spill", type=int, default=1,
                           help="lists each item is stored in (1 = plain IVF)")
    build_ann.add_argument("--nprobe", type=int, default=2,
                           help="default lists probed per request")
    build_ann.add_argument("--train-iters", type=int, default=25,
                           help="k-means iterations for quantizer training")
    build_ann.add_argument("--seed", type=int, default=0,
                           help="training seed; same snapshot + params + "
                                "seed gives a byte-identical index")
    build_ann.add_argument("--pq-m", type=int, default=8,
                           help="PQ subquantizers (with --kind ivfpq)")
    build_ann.add_argument("--pq-ks", type=int, default=32,
                           help="PQ codewords per subspace (with ivfpq)")
    build_ann.add_argument("--verify", action="store_true",
                           help="check the snapshot content hash first")

    recommend = sub.add_parser(
        "recommend", help="top-K recommendations from an exported snapshot")
    recommend.add_argument("--snapshot", required=True,
                           help="snapshot directory written by `repro export`")
    recommend.add_argument("--users", default="0,1,2",
                           help="comma-separated user ids")
    recommend.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    recommend.add_argument("--index", default="exact",
                           choices=("exact", "quantized"))
    recommend.add_argument("--ann", default=None,
                           help="serve through an IVF candidate index "
                                "directory built by `repro build-ann`")
    recommend.add_argument("--no-filter-seen", action="store_true",
                           help="keep already-interacted items in the lists")
    recommend.add_argument("--verify", action="store_true",
                           help="check the snapshot content hash before serving")
    recommend.add_argument("--trace", action="store_true",
                           help="print the request's span tree "
                                "(docs/observability.md)")

    delta_export = sub.add_parser(
        "delta-export",
        help="diff two snapshots into a content-hash-chained delta")
    delta_export.add_argument("--base", required=True,
                              help="base snapshot directory")
    delta_export.add_argument("--new", required=True,
                              help="snapshot directory to diff against base")
    delta_export.add_argument("--out", required=True,
                              help="delta output directory")
    delta_export.add_argument("--verify", action="store_true",
                              help="check both snapshot content hashes first")

    apply_deltas = sub.add_parser(
        "apply-deltas",
        help="replay a delta chain onto a base snapshot")
    apply_deltas.add_argument("--base", required=True,
                              help="base snapshot directory")
    apply_deltas.add_argument("--deltas", required=True,
                              help="comma-separated delta directories, "
                                   "in chain order")
    apply_deltas.add_argument("--out", required=True,
                              help="snapshot output directory")
    apply_deltas.add_argument("--verify", action="store_true",
                              help="check the base snapshot content hash "
                                   "first (delta hashes are always checked)")

    refresh = sub.add_parser(
        "refresh",
        help="demo the atomic live swap under a paced request stream")
    refresh.add_argument("--snapshot", required=True,
                         help="base snapshot directory to serve from")
    refresh.add_argument("--deltas", required=True,
                         help="comma-separated delta directories to apply "
                              "mid-stream, in chain order")
    refresh.add_argument("--requests", type=int, default=64,
                         help="paced lookups driven through the runtime")
    refresh.add_argument("--qps", type=float, default=500.0,
                         help="request pacing rate")
    refresh.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    refresh.add_argument("--seed", type=int, default=0)
    refresh.add_argument("--verify", action="store_true",
                         help="check the snapshot content hash first")

    metrics = sub.add_parser(
        "metrics",
        help="export the process metrics registry (repro.obs)")
    metrics.add_argument("--format", default="prom",
                         choices=("prom", "json"),
                         help="Prometheus text exposition or JSON snapshot")
    metrics.add_argument("--demo", action="store_true",
                         help="drive a tiny train + serve workload first "
                              "so every instrument family has samples")
    metrics.add_argument("--validate", action="store_true",
                         help="re-parse the Prometheus output and fail on "
                              "malformed or duplicate families")
    metrics.add_argument("--out", default=None,
                         help="write the exposition to a file instead of "
                              "stdout")

    add_legacy_verbs(sub)
    return parser


def main(argv=None) -> int:
    """Parse ``argv`` (default: ``sys.argv``) and dispatch a subcommand."""
    args = build_parser().parse_args(argv)
    handlers = {"datasets": _cmd_datasets, "train": _cmd_train,
                "sweep-tau": _cmd_sweep_tau, "bench": _cmd_bench,
                "export": _cmd_export,
                "build-ann": _cmd_build_ann, "recommend": _cmd_recommend,
                "delta-export": _cmd_delta_export,
                "apply-deltas": _cmd_apply_deltas,
                "refresh": _cmd_refresh, "metrics": _cmd_metrics}
    for verb in ALIAS_VERBS:
        handlers[verb] = lambda a, v=verb: run_legacy(v, a)
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
