"""Command-line interface: ``python -m repro.cli``.

Subcommands:

* ``train`` — train one (dataset, model, loss) cell and print metrics.
* ``datasets`` — list the built-in synthetic presets with statistics.
* ``sweep-tau`` — quick SL temperature sweep on one dataset.
* ``perf`` — time train-step / eval throughput and write
  ``BENCH_fastpath.json`` (the fast-path perf trajectory).
* ``perf-train`` — sweep catalogue size × loss × grad mode (dense
  full-catalogue vs row-sparse training) and write ``BENCH_train.json``
  (the training-throughput frontier; see ``docs/training.md``).
* ``export`` — train (or load a checkpoint) and freeze the model into a
  serving snapshot directory (:mod:`repro.serve`); ``--shards N``
  writes a horizontally partitioned snapshot instead.
* ``build-ann`` — train an approximate-retrieval IVF index
  (:mod:`repro.ann`) from an exported snapshot into an index
  directory with a content-hashed manifest.
* ``recommend`` — answer top-K requests from an exported snapshot
  (sharded directories are detected and scatter-gather-routed
  automatically; ``--ann DIR`` serves through an IVF candidate
  index built by ``build-ann``).
* ``perf-serve`` — time snapshot serving throughput, unsharded and
  across shard counts, and write ``BENCH_serve.json`` (the serving
  perf trajectory); ``--ann`` also sweeps the IVF recall/throughput
  frontier into ``BENCH_ann.json`` (``--ann-only`` skips the serve
  grid).
* ``perf-latency`` — drive the async serving runtime with a paced
  load generator, sweeping offered QPS until saturation, and write
  ``BENCH_latency.json`` (the p50/p99 tail-latency frontier; see
  ``docs/serving.md``).
* ``delta-export`` — diff two exported snapshots into a
  content-hash-chained delta directory (:mod:`repro.serve.delta`).
* ``apply-deltas`` — replay a delta chain onto a base snapshot and
  write the resulting snapshot (bit-identical to a fresh export of
  the final state; see ``docs/live_index.md``).
* ``refresh`` — demo the live swap: serve a paced request stream from
  a base snapshot and atomically refresh to the delta-applied version
  mid-stream, printing the swap pause and version accounting.
* ``perf-refresh`` — sweep catalogue churn fractions and write
  ``BENCH_refresh.json`` (delta replay / incremental-IVF vs rebuild /
  swap-under-traffic costs).
"""

from __future__ import annotations

import argparse

from repro.data import dataset_names, load_dataset
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.report import print_series, print_table
from repro.losses import loss_names
from repro.models import model_names

#: Default request-side knobs shared by ``recommend`` and the docs.
DEFAULT_TOP_K = 10


def _cmd_datasets(_args) -> int:
    """List every built-in synthetic preset with its Table-I statistics."""
    rows = []
    for name in dataset_names():
        ds = load_dataset(name)
        rows.append([name, ds.num_users, ds.num_items, ds.num_train,
                     ds.num_test, f"{ds.density:.3%}"])
    print_table("Built-in synthetic presets (Table I shaped)",
                ["name", "users", "items", "train", "test", "density"],
                rows, precision=0)
    return 0


def _train_spec(args) -> ExperimentSpec:
    """Translate parsed ``train``/``export`` flags into an ExperimentSpec."""
    loss_kwargs = {}
    if args.loss == "sl":
        loss_kwargs = {"tau": args.tau}
    elif args.loss == "bsl":
        loss_kwargs = {"tau1": args.tau1 or args.tau, "tau2": args.tau}
    return ExperimentSpec(
        dataset=args.dataset, model=args.model, loss=args.loss,
        loss_kwargs=loss_kwargs, dim=args.dim, epochs=args.epochs,
        learning_rate=args.lr, n_negatives=args.negatives,
        positive_noise=getattr(args, "positive_noise", 0.0),
        rnoise=getattr(args, "rnoise", 0.0), seed=args.seed)


def _cmd_train(args) -> int:
    """Train one experiment cell and print its evaluation metrics."""
    spec = _train_spec(args)
    result = run_experiment(spec, verbose=args.verbose)
    print_table(f"{args.model}+{args.loss} on {args.dataset}",
                ["metric", "value"],
                [[k, v] for k, v in sorted(result.metrics.items())])
    return 0


def _cmd_sweep_tau(args) -> int:
    """Sweep the SL temperature on one dataset and report the best tau."""
    taus = [float(t) for t in args.taus.split(",")]
    values = []
    for tau in taus:
        spec = ExperimentSpec(dataset=args.dataset, model=args.model,
                              loss="sl", loss_kwargs={"tau": tau},
                              epochs=args.epochs, seed=args.seed)
        values.append(run_experiment(spec).metric("ndcg@20"))
    print_series(f"NDCG@20 vs tau on {args.dataset}", taus, values)
    best = taus[values.index(max(values))]
    print(f"best tau: {best}")
    return 0


def _cmd_perf(args) -> int:
    """Run the fast-path perf suite and write ``BENCH_fastpath.json``."""
    from repro.experiments.perf import (PerfConfig, run_perf_suite,
                                        summarize, write_report)
    config = PerfConfig(
        dataset=args.dataset,
        models=tuple(args.models.split(",")),
        losses=tuple(args.losses.split(",")),
        dim=args.dim, steps=args.steps, warmup=args.warmup,
        batch_size=args.batch_size, n_negatives=args.negatives,
        eval_repeats=args.eval_repeats,
        include_reference=not args.no_reference, seed=args.seed)
    payload = run_perf_suite(config)
    write_report(payload, args.out)
    print(summarize(payload))
    print(f"wrote {args.out}")
    return 0


def _cmd_perf_train(args) -> int:
    """Run the training-throughput suite and write ``BENCH_train.json``.

    Sweeps ``--scales`` catalogue inflations of ``--dataset`` and times
    each (loss, grad mode) cell; unless ``--no-quality`` an end-to-end
    run per grad mode records final NDCG@20 on the base dataset.
    """
    from repro.experiments.perf import (TrainPerfConfig, run_train_suite,
                                        summarize_train, write_report)
    config = TrainPerfConfig(
        dataset=args.dataset, model=args.model,
        losses=tuple(args.losses.split(",")),
        catalogue_scales=tuple(int(s) for s in args.scales.split(",")),
        dim=args.dim, steps=args.steps, warmup=args.warmup,
        batch_size=args.batch_size, n_negatives=args.negatives,
        sparse_mode=args.sparse_mode,
        quality_epochs=0 if args.no_quality else args.quality_epochs,
        seed=args.seed)
    payload = run_train_suite(config)
    write_report(payload, args.out)
    print(summarize_train(payload))
    print(f"wrote {args.out}")
    return 0


def _cmd_export(args) -> int:
    """Freeze a trained backbone into a serving snapshot directory.

    Either trains the requested cell from scratch (the default) or, with
    ``--checkpoint``, rebuilds the model and loads previously saved
    parameters before exporting.  With ``--shards N`` the snapshot is
    written horizontally partitioned (``--partition-by`` picks the
    sharded axes, ``--partition`` the placement scheme).
    """
    from repro.serve import export_sharded_snapshot, export_snapshot

    if args.checkpoint:
        from repro.models import get_model
        from repro.train.checkpoint import load_checkpoint
        dataset = load_dataset(args.dataset)
        model = get_model(args.model, dataset, dim=args.dim, rng=args.seed)
        load_checkpoint(model, args.checkpoint)
    else:
        result = run_experiment(_train_spec(args))
        model, dataset = result.model, result.dataset
        print_table(f"trained {args.model}+{args.loss} on {args.dataset}",
                    ["metric", "value"],
                    [[k, v] for k, v in sorted(result.metrics.items())])
    extra = {"loss": args.loss, "epochs": args.epochs,
             "checkpoint": args.checkpoint or ""}
    if args.shards:
        snapshot = export_sharded_snapshot(
            model, dataset, args.out, shards=args.shards,
            partition_by=args.partition_by, strategy=args.partition,
            model_name=args.model, extra=extra)
        manifest = snapshot.manifest
        print_table(
            f"sharded snapshot {args.out}", ["field", "value"],
            [["version", manifest.version], ["model", manifest.model],
             ["user shards", manifest.num_user_shards],
             ["item shards", manifest.num_item_shards],
             ["partition", f"{manifest.strategy} by "
                           f"{manifest.partition_by}"],
             ["users", manifest.num_users], ["items", manifest.num_items],
             ["scoring", manifest.scoring]], precision=0)
        return 0
    snapshot = export_snapshot(model, dataset, args.out,
                               model_name=args.model, extra=extra)
    manifest = snapshot.manifest
    print_table(f"snapshot {args.out}", ["field", "value"],
                [["version", manifest.version], ["model", manifest.model],
                 ["dim", manifest.dim], ["users", manifest.num_users],
                 ["items", manifest.num_items],
                 ["scoring", manifest.scoring]], precision=0)
    return 0


def _cmd_build_ann(args) -> int:
    """Train an IVF(-PQ) candidate index from an exported snapshot.

    Reads the snapshot, clusters the item table with the repo's
    k-means, writes the inverted lists (and PQ codes for
    ``--kind ivfpq``) plus a content-hashed ``manifest.json`` into
    ``--out``.  Builds are deterministic: the same snapshot, parameters
    and ``--seed`` produce a byte-identical directory.
    """
    from repro.ann import build_ann_index
    from repro.serve import load_snapshot

    snapshot = load_snapshot(args.snapshot, verify=args.verify)
    index = build_ann_index(
        snapshot, args.out, kind=args.kind, nlist=args.nlist,
        spill=args.spill, default_nprobe=args.nprobe, seed=args.seed,
        train_iters=args.train_iters, pq_m=args.pq_m, pq_ks=args.pq_ks)
    data = index.data
    rows = [["kind", index.kind], ["nlist", data.nlist],
            ["spill", data.max_spill], ["nprobe", data.default_nprobe],
            ["postings", len(data.list_items)],
            ["items", data.num_items],
            ["index KiB", f"{index.table_bytes / 1024:.0f}"],
            ["snapshot", snapshot.version]]
    print_table(f"ANN index {args.out}", ["field", "value"], rows,
                precision=0)
    return 0


def _cmd_recommend(args) -> int:
    """Serve top-K recommendations for a list of users from a snapshot.

    Sharded snapshot directories (written by ``repro export --shards``)
    are detected automatically and served through the scatter-gather
    :class:`~repro.serve.router.ShardedRecommendationService`.  With
    ``--ann DIR`` candidates come from an IVF index built by
    ``repro build-ann`` — over-fetched per user and re-scored exactly,
    so scores remain comparable to the exact index.
    """
    from repro.serve import (RecommendationService,
                             ShardedRecommendationService, ShardedTopKIndex,
                             build_index, is_sharded_snapshot,
                             load_sharded_snapshot, load_snapshot)

    if is_sharded_snapshot(args.snapshot):
        snapshot = load_sharded_snapshot(args.snapshot, verify=args.verify)
        if args.ann:
            from repro.ann import load_ann_generator
            router = ShardedTopKIndex(
                snapshot, kind=args.index,
                ann=load_ann_generator(args.ann, snapshot=snapshot,
                                       verify=args.verify))
            service = ShardedRecommendationService(snapshot, index=router)
        else:
            service = ShardedRecommendationService(snapshot, kind=args.index)
        index = service.index
    else:
        snapshot = load_snapshot(args.snapshot, verify=args.verify)
        if args.ann:
            if args.index != "exact":
                # On a sharded snapshot --index picks the per-shard
                # scorer under the ANN prefilter; unsharded ANN serving
                # replaces the index outright, so an explicit non-exact
                # choice would be silently ignored — refuse instead.
                raise SystemExit(
                    "recommend: --ann replaces the index on an unsharded "
                    "snapshot; drop --index or use a sharded snapshot to "
                    "combine an ANN prefilter with per-shard "
                    f"{args.index!r} scoring")
            from repro.ann import load_ann_index
            index = load_ann_index(args.ann, snapshot, verify=args.verify)
        else:
            index = build_index(snapshot, args.index)
        service = RecommendationService(snapshot, index=index)
    users = [int(u) for u in args.users.split(",")]
    rows = []
    for rec in service.recommend(users, k=args.k,
                                 filter_seen=not args.no_filter_seen):
        rows.append([rec.user_id,
                     " ".join(str(i) for i in rec.items.tolist()),
                     " ".join(f"{s:.4f}" for s in rec.scores.tolist())])
    print_table(
        f"top-{args.k} from {args.snapshot} "
        f"({index.kind}, snapshot {snapshot.version})",
        ["user", "items", "scores"], rows, precision=0)
    return 0


def _cmd_perf_serve(args) -> int:
    """Run the serving perf suite and write ``BENCH_serve.json``.

    With ``--ann`` the IVF recall/throughput frontier is also swept and
    written to ``--ann-out`` (``BENCH_ann.json``); ``--ann-only`` skips
    the serve grid and runs just the frontier (what ``make bench-ann``
    does).
    """
    from repro.experiments.perf import (AnnPerfConfig, ServePerfConfig,
                                        run_ann_suite, run_serve_suite,
                                        summarize_ann, summarize_serve,
                                        write_report)
    if not args.ann_only:
        shards = tuple(int(s) for s in args.shards.split(",")) \
            if args.shards else ()
        config = ServePerfConfig(
            dataset=args.dataset, model=args.model, loss=args.loss,
            epochs=args.epochs, dim=args.dim, k=args.k,
            batch_sizes=tuple(int(b) for b in args.batch_sizes.split(",")),
            repeats=args.repeats, request_users=args.request_users,
            shards=shards, partition_by=args.partition_by,
            include_quantized=not args.no_quantized, seed=args.seed)
        payload = run_serve_suite(config)
        write_report(payload, args.out)
        print(summarize_serve(payload))
        print(f"wrote {args.out}")
    if args.ann or args.ann_only:
        ann_config = AnnPerfConfig(
            dataset=args.dataset, k=args.k,
            nlists=tuple(int(n) for n in args.ann_nlists.split(",")),
            nprobes=tuple(int(p) for p in args.ann_nprobes.split(",")),
            loss=args.ann_loss, epochs=args.ann_epochs, seed=args.seed)
        ann_payload = run_ann_suite(ann_config)
        write_report(ann_payload, args.ann_out)
        print(summarize_ann(ann_payload))
        print(f"wrote {args.ann_out}")
    return 0


def _cmd_perf_latency(args) -> int:
    """Run the latency-frontier suite and write ``BENCH_latency.json``."""
    from repro.experiments.perf import (LatencyPerfConfig, run_latency_suite,
                                        summarize_latency, write_report)
    config = LatencyPerfConfig(
        dataset=args.dataset, model=args.model, loss=args.loss,
        epochs=args.epochs, dim=args.dim, k=args.k,
        start_qps=args.start_qps, qps_step=args.qps_step,
        max_levels=args.max_levels,
        requests_per_level=args.requests_per_level,
        saturation_ratio=args.saturation_ratio, slo_ms=args.slo_ms,
        max_queue=args.max_queue, initial_batch=args.initial_batch,
        max_batch=args.max_batch, window=args.window, seed=args.seed)
    payload = run_latency_suite(config)
    write_report(payload, args.out)
    print(summarize_latency(payload))
    print(f"wrote {args.out}")
    return 0


def _cmd_delta_export(args) -> int:
    """Diff two exported snapshots into a delta directory.

    The delta's manifest chains ``base -> new`` by content version, so
    ``apply-deltas`` can refuse out-of-order or re-based replays.
    """
    from repro.serve import load_snapshot
    from repro.serve.delta import LiveState, export_delta

    base = load_snapshot(args.base, verify=args.verify)
    new = load_snapshot(args.new, verify=args.verify)
    delta = export_delta(LiveState.from_snapshot(base),
                         LiveState.from_snapshot(new), args.out)
    manifest = delta.manifest
    print_table(
        f"delta {args.out}", ["field", "value"],
        [["version", manifest.version],
         ["base", manifest.base_version], ["new", manifest.new_version],
         ["user upserts", manifest.user_upserts],
         ["user deletes", manifest.user_deletes],
         ["item upserts", manifest.item_upserts],
         ["item deletes", manifest.item_deletes]], precision=0)
    return 0


def _cmd_apply_deltas(args) -> int:
    """Replay a delta chain onto a base snapshot, write the result.

    The written snapshot is byte-identical to a fresh export of the
    final state (modulo the export timestamp), and each link's content
    hash and base version are checked before any array is touched.
    """
    from repro.serve import load_snapshot
    from repro.serve.delta import apply_deltas, load_delta

    base = load_snapshot(args.base, verify=args.verify)
    deltas = [load_delta(path) for path in args.deltas.split(",")]
    snapshot = apply_deltas(base, deltas, args.out)
    manifest = snapshot.manifest
    print_table(
        f"snapshot {args.out}", ["field", "value"],
        [["version", manifest.version], ["base", base.version],
         ["deltas applied", len(deltas)],
         ["users", manifest.num_users], ["items", manifest.num_items],
         ["scoring", manifest.scoring]], precision=0)
    return 0


def _cmd_refresh(args) -> int:
    """Demo the atomic live swap under a paced request stream.

    Serves ``--requests`` paced lookups from ``--snapshot`` through the
    async runtime, applies ``--deltas`` mid-stream via
    :meth:`~repro.serve.runtime.ServingRuntime.refresh`, and prints the
    swap accounting: every response is attributable to exactly one
    snapshot version and none are dropped.
    """
    import time as _time

    import numpy as np

    from repro.serve import (RecommendationService, ServingRuntime,
                             load_snapshot)
    from repro.serve.delta import apply_deltas, load_delta

    base = load_snapshot(args.snapshot, verify=args.verify)
    deltas = [load_delta(path) for path in args.deltas.split(",")]
    new = apply_deltas(base, deltas)
    service = RecommendationService(base)
    rng = np.random.default_rng(args.seed)
    users = rng.integers(0, base.manifest.num_users, size=args.requests)
    handles = []
    with ServingRuntime(service) as runtime:
        start = _time.perf_counter()
        for i, user in enumerate(users.tolist()):
            delay = start + i / args.qps - _time.perf_counter()
            if delay > 0:
                _time.sleep(delay)
            if i == args.requests // 2:
                invalidated = runtime.refresh(new)
            handles.append(runtime.submit(int(user), k=args.k))
        results = [h.result(timeout=30.0) for h in handles]
    served = {}
    for rec in results:
        served[rec.snapshot_version] = served.get(rec.snapshot_version,
                                                  0) + 1
    rows = [["base version", base.version], ["new version", new.version],
            ["requests", len(results)],
            ["cache entries invalidated", invalidated],
            ["swap pause ms",
             f"{1e3 * runtime.stats.refresh_s:.3f}"]]
    rows += [[f"served by {version}", count]
             for version, count in sorted(served.items())]
    print_table(f"live refresh of {args.snapshot}", ["field", "value"],
                rows, precision=0)
    return 0


def _cmd_perf_refresh(args) -> int:
    """Run the live-refresh churn suite and write ``BENCH_refresh.json``."""
    from repro.experiments.perf import (RefreshPerfConfig, run_refresh_suite,
                                        summarize_refresh, write_report)
    config = RefreshPerfConfig(
        dataset=args.dataset, model=args.model, loss=args.loss,
        epochs=args.epochs, dim=args.dim, k=args.k, nlist=args.nlist,
        nprobe=args.nprobe,
        churn_fractions=tuple(float(f) for f in args.churn.split(",")),
        repeats=args.repeats, requests=args.requests, qps=args.qps,
        seed=args.seed)
    payload = run_refresh_suite(config)
    write_report(payload, args.out)
    print(summarize_refresh(payload))
    print(f"wrote {args.out}")
    return 0


def _add_train_cell_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every verb that trains one (model, loss) cell."""
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--model", default="mf", choices=model_names())
    parser.add_argument("--loss", default="bsl", choices=loss_names())
    parser.add_argument("--tau", type=float, default=0.4,
                        help="SL temperature / BSL tau2")
    parser.add_argument("--tau1", type=float, default=None,
                        help="BSL positive temperature (default: tau)")
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--lr", type=float, default=5e-2)
    parser.add_argument("--negatives", type=int, default=128)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """Construct the full ``repro`` argparse tree (used by the CLI and
    by ``tests/test_docs.py`` to validate README command examples)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="BSL reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list built-in dataset presets")

    train = sub.add_parser("train", help="train one experiment cell")
    _add_train_cell_args(train)
    train.add_argument("--positive-noise", type=float, default=0.0)
    train.add_argument("--rnoise", type=float, default=0.0)
    train.add_argument("--verbose", action="store_true")

    sweep = sub.add_parser("sweep-tau", help="SL temperature sweep")
    sweep.add_argument("--dataset", default="yelp2018-small",
                       choices=dataset_names())
    sweep.add_argument("--model", default="mf", choices=model_names())
    sweep.add_argument("--taus", default="0.2,0.3,0.4,0.6")
    sweep.add_argument("--epochs", type=int, default=18)
    sweep.add_argument("--seed", type=int, default=0)

    perf = sub.add_parser(
        "perf", help="time train/eval throughput, write BENCH_fastpath.json")
    perf.add_argument("--dataset", default="yelp2018-small",
                      choices=dataset_names())
    perf.add_argument("--models", default="mf,lightgcn,simgcl",
                      help="comma-separated model registry names")
    perf.add_argument("--losses", default="sl,bsl",
                      help="comma-separated loss registry names")
    perf.add_argument("--dim", type=int, default=64)
    perf.add_argument("--steps", type=int, default=15,
                      help="timed optimizer steps per cell")
    perf.add_argument("--warmup", type=int, default=3)
    perf.add_argument("--batch-size", type=int, default=1024)
    perf.add_argument("--negatives", type=int, default=128)
    perf.add_argument("--eval-repeats", type=int, default=3)
    perf.add_argument("--no-reference", action="store_true",
                      help="skip the compositional/uncached baseline rows")
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument("--out", default="BENCH_fastpath.json")

    perf_train = sub.add_parser(
        "perf-train",
        help="time dense-vs-sparse training throughput, "
             "write BENCH_train.json")
    perf_train.add_argument("--dataset", default="yelp2018-small",
                            choices=dataset_names())
    perf_train.add_argument("--model", default="mf", choices=model_names())
    perf_train.add_argument("--losses", default="bpr,bsl",
                            help="comma-separated loss registry names")
    perf_train.add_argument("--scales", default="1,8,64",
                            help="comma-separated catalogue inflation "
                                 "factors")
    perf_train.add_argument("--dim", type=int, default=64)
    perf_train.add_argument("--steps", type=int, default=15,
                            help="timed optimizer steps per cell")
    perf_train.add_argument("--warmup", type=int, default=3)
    perf_train.add_argument("--batch-size", type=int, default=1024)
    perf_train.add_argument("--negatives", type=int, default=128)
    perf_train.add_argument("--sparse-mode", default="lazy",
                            choices=("lazy", "exact"),
                            help="sparse-optimizer mode for the sparse rows")
    perf_train.add_argument("--quality-epochs", type=int, default=16,
                            help="epochs of the end-to-end NDCG comparison")
    perf_train.add_argument("--no-quality", action="store_true",
                            help="skip the end-to-end quality rows")
    perf_train.add_argument("--seed", type=int, default=0)
    perf_train.add_argument("--out", default="BENCH_train.json")

    export = sub.add_parser(
        "export", help="train (or load) a model and export a serving snapshot")
    _add_train_cell_args(export)
    export.add_argument("--checkpoint", default=None,
                        help="load parameters from a .npz checkpoint "
                             "instead of training")
    export.add_argument("--out", default="snapshot",
                        help="snapshot output directory")
    export.add_argument("--shards", type=int, default=0,
                        help="write a sharded snapshot with this many "
                             "partitions per sharded axis (0 = unsharded)")
    export.add_argument("--partition-by", default="both",
                        choices=("user", "item", "both"),
                        help="which axes to shard (with --shards)")
    export.add_argument("--partition", default="contiguous",
                        choices=("contiguous", "hash"),
                        help="id placement scheme (with --shards)")

    build_ann = sub.add_parser(
        "build-ann",
        help="train an IVF candidate index from an exported snapshot")
    build_ann.add_argument("--snapshot", required=True,
                           help="snapshot directory written by `repro export`")
    build_ann.add_argument("--out", required=True,
                           help="ANN index output directory")
    build_ann.add_argument("--kind", default="ivf",
                           choices=("ivf", "ivfpq"))
    build_ann.add_argument("--nlist", type=int, default=16,
                           help="number of inverted lists (k-means clusters)")
    build_ann.add_argument("--spill", type=int, default=1,
                           help="lists each item is stored in (1 = plain IVF)")
    build_ann.add_argument("--nprobe", type=int, default=2,
                           help="default lists probed per request")
    build_ann.add_argument("--train-iters", type=int, default=25,
                           help="k-means iterations for quantizer training")
    build_ann.add_argument("--seed", type=int, default=0,
                           help="training seed; same snapshot + params + "
                                "seed gives a byte-identical index")
    build_ann.add_argument("--pq-m", type=int, default=8,
                           help="PQ subquantizers (with --kind ivfpq)")
    build_ann.add_argument("--pq-ks", type=int, default=32,
                           help="PQ codewords per subspace (with ivfpq)")
    build_ann.add_argument("--verify", action="store_true",
                           help="check the snapshot content hash first")

    recommend = sub.add_parser(
        "recommend", help="top-K recommendations from an exported snapshot")
    recommend.add_argument("--snapshot", required=True,
                           help="snapshot directory written by `repro export`")
    recommend.add_argument("--users", default="0,1,2",
                           help="comma-separated user ids")
    recommend.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    recommend.add_argument("--index", default="exact",
                           choices=("exact", "quantized"))
    recommend.add_argument("--ann", default=None,
                           help="serve through an IVF candidate index "
                                "directory built by `repro build-ann`")
    recommend.add_argument("--no-filter-seen", action="store_true",
                           help="keep already-interacted items in the lists")
    recommend.add_argument("--verify", action="store_true",
                           help="check the snapshot content hash before serving")

    perf_serve = sub.add_parser(
        "perf-serve",
        help="time snapshot serving throughput, write BENCH_serve.json")
    perf_serve.add_argument("--dataset", default="yelp2018-small",
                            choices=dataset_names())
    perf_serve.add_argument("--model", default="mf", choices=model_names())
    perf_serve.add_argument("--loss", default="bsl", choices=loss_names())
    perf_serve.add_argument("--epochs", type=int, default=8)
    perf_serve.add_argument("--dim", type=int, default=64)
    perf_serve.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    perf_serve.add_argument("--batch-sizes", default="1,16,256",
                            help="comma-separated request batch sizes")
    perf_serve.add_argument("--repeats", type=int, default=3)
    perf_serve.add_argument("--request-users", type=int, default=1024,
                            help="request stream length per timing pass")
    perf_serve.add_argument("--shards", default="2,4",
                            help="comma-separated shard counts for the "
                                 "sharded sweep ('' to skip)")
    perf_serve.add_argument("--partition-by", default="both",
                            choices=("user", "item", "both"),
                            help="sharded-sweep partition axes")
    perf_serve.add_argument("--no-quantized", action="store_true",
                            help="skip the int8 index rows")
    perf_serve.add_argument("--seed", type=int, default=0)
    perf_serve.add_argument("--out", default="BENCH_serve.json")
    perf_serve.add_argument("--ann", action="store_true",
                            help="also sweep the IVF recall/throughput "
                                 "frontier into --ann-out")
    perf_serve.add_argument("--ann-only", action="store_true",
                            help="run only the ANN frontier (implies --ann)")
    perf_serve.add_argument("--ann-out", default="BENCH_ann.json")
    perf_serve.add_argument("--ann-nlists", default="8,16,32",
                            help="comma-separated IVF list counts")
    perf_serve.add_argument("--ann-nprobes", default="1,2,4",
                            help="comma-separated probe counts")
    perf_serve.add_argument("--ann-loss", default="bpr", choices=loss_names(),
                            help="loss of the ANN suite's trained cell "
                                 "(pairwise losses cluster best; see "
                                 "docs/ann.md)")
    perf_serve.add_argument("--ann-epochs", type=int, default=25)

    perf_latency = sub.add_parser(
        "perf-latency",
        help="sweep offered load through the async serving runtime, "
             "write BENCH_latency.json")
    perf_latency.add_argument("--dataset", default="yelp2018-small",
                              choices=dataset_names())
    perf_latency.add_argument("--model", default="mf",
                              choices=model_names())
    perf_latency.add_argument("--loss", default="bsl",
                              choices=loss_names())
    perf_latency.add_argument("--epochs", type=int, default=8)
    perf_latency.add_argument("--dim", type=int, default=64)
    perf_latency.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    perf_latency.add_argument("--start-qps", type=float, default=200.0,
                              help="offered load of the first sweep level")
    perf_latency.add_argument("--qps-step", type=float, default=2.0,
                              help="multiplicative step between levels")
    perf_latency.add_argument("--max-levels", type=int, default=8)
    perf_latency.add_argument("--requests-per-level", type=int, default=512)
    perf_latency.add_argument("--saturation-ratio", type=float, default=0.9,
                              help="stop once achieved/offered drops below")
    perf_latency.add_argument("--slo-ms", type=float, default=50.0,
                              help="runtime p99 latency target")
    perf_latency.add_argument("--max-queue", type=int, default=256,
                              help="admission-queue bound (sheds past it)")
    perf_latency.add_argument("--initial-batch", type=int, default=8)
    perf_latency.add_argument("--max-batch", type=int, default=256)
    perf_latency.add_argument("--window", type=int, default=64,
                              help="completions between batch adaptations")
    perf_latency.add_argument("--seed", type=int, default=0)
    perf_latency.add_argument("--out", default="BENCH_latency.json")

    delta_export = sub.add_parser(
        "delta-export",
        help="diff two snapshots into a content-hash-chained delta")
    delta_export.add_argument("--base", required=True,
                              help="base snapshot directory")
    delta_export.add_argument("--new", required=True,
                              help="snapshot directory to diff against base")
    delta_export.add_argument("--out", required=True,
                              help="delta output directory")
    delta_export.add_argument("--verify", action="store_true",
                              help="check both snapshot content hashes first")

    apply_deltas = sub.add_parser(
        "apply-deltas",
        help="replay a delta chain onto a base snapshot")
    apply_deltas.add_argument("--base", required=True,
                              help="base snapshot directory")
    apply_deltas.add_argument("--deltas", required=True,
                              help="comma-separated delta directories, "
                                   "in chain order")
    apply_deltas.add_argument("--out", required=True,
                              help="snapshot output directory")
    apply_deltas.add_argument("--verify", action="store_true",
                              help="check the base snapshot content hash "
                                   "first (delta hashes are always checked)")

    refresh = sub.add_parser(
        "refresh",
        help="demo the atomic live swap under a paced request stream")
    refresh.add_argument("--snapshot", required=True,
                         help="base snapshot directory to serve from")
    refresh.add_argument("--deltas", required=True,
                         help="comma-separated delta directories to apply "
                              "mid-stream, in chain order")
    refresh.add_argument("--requests", type=int, default=64,
                         help="paced lookups driven through the runtime")
    refresh.add_argument("--qps", type=float, default=500.0,
                         help="request pacing rate")
    refresh.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    refresh.add_argument("--seed", type=int, default=0)
    refresh.add_argument("--verify", action="store_true",
                         help="check the snapshot content hash first")

    perf_refresh = sub.add_parser(
        "perf-refresh",
        help="sweep catalogue churn through the live-refresh path, "
             "write BENCH_refresh.json")
    perf_refresh.add_argument("--dataset", default="yelp2018-small",
                              choices=dataset_names())
    perf_refresh.add_argument("--model", default="mf",
                              choices=model_names())
    perf_refresh.add_argument("--loss", default="bsl",
                              choices=loss_names())
    perf_refresh.add_argument("--epochs", type=int, default=8)
    perf_refresh.add_argument("--dim", type=int, default=64)
    perf_refresh.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    perf_refresh.add_argument("--nlist", type=int, default=16,
                              help="inverted lists of the maintained index")
    perf_refresh.add_argument("--nprobe", type=int, default=2)
    perf_refresh.add_argument("--churn", default="0.01,0.05,0.2",
                              help="comma-separated catalogue churn "
                                   "fractions")
    perf_refresh.add_argument("--repeats", type=int, default=3,
                              help="best-of timing repeats per clock")
    perf_refresh.add_argument("--requests", type=int, default=256,
                              help="paced lookups around each swap")
    perf_refresh.add_argument("--qps", type=float, default=2000.0)
    perf_refresh.add_argument("--seed", type=int, default=0)
    perf_refresh.add_argument("--out", default="BENCH_refresh.json")
    return parser


def main(argv=None) -> int:
    """Parse ``argv`` (default: ``sys.argv``) and dispatch a subcommand."""
    args = build_parser().parse_args(argv)
    handlers = {"datasets": _cmd_datasets, "train": _cmd_train,
                "sweep-tau": _cmd_sweep_tau, "perf": _cmd_perf,
                "perf-train": _cmd_perf_train, "export": _cmd_export,
                "build-ann": _cmd_build_ann, "recommend": _cmd_recommend,
                "perf-serve": _cmd_perf_serve,
                "perf-latency": _cmd_perf_latency,
                "delta-export": _cmd_delta_export,
                "apply-deltas": _cmd_apply_deltas,
                "refresh": _cmd_refresh,
                "perf-refresh": _cmd_perf_refresh}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
