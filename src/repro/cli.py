"""Command-line interface: ``python -m repro.cli``.

Subcommands:

* ``train`` — train one (dataset, model, loss) cell and print metrics.
* ``datasets`` — list the built-in synthetic presets with statistics.
* ``sweep-tau`` — quick SL temperature sweep on one dataset.
* ``perf`` — time train-step / eval throughput and write
  ``BENCH_fastpath.json`` (the fast-path perf trajectory).
"""

from __future__ import annotations

import argparse

from repro.data import dataset_names, load_dataset
from repro.experiments import ExperimentSpec, run_experiment
from repro.experiments.report import print_series, print_table
from repro.losses import loss_names
from repro.models import model_names


def _cmd_datasets(_args) -> int:
    rows = []
    for name in dataset_names():
        ds = load_dataset(name)
        rows.append([name, ds.num_users, ds.num_items, ds.num_train,
                     ds.num_test, f"{ds.density:.3%}"])
    print_table("Built-in synthetic presets (Table I shaped)",
                ["name", "users", "items", "train", "test", "density"],
                rows, precision=0)
    return 0


def _cmd_train(args) -> int:
    loss_kwargs = {}
    if args.loss == "sl":
        loss_kwargs = {"tau": args.tau}
    elif args.loss == "bsl":
        loss_kwargs = {"tau1": args.tau1 or args.tau, "tau2": args.tau}
    spec = ExperimentSpec(
        dataset=args.dataset, model=args.model, loss=args.loss,
        loss_kwargs=loss_kwargs, dim=args.dim, epochs=args.epochs,
        learning_rate=args.lr, n_negatives=args.negatives,
        positive_noise=args.positive_noise, rnoise=args.rnoise,
        seed=args.seed)
    result = run_experiment(spec, verbose=args.verbose)
    print_table(f"{args.model}+{args.loss} on {args.dataset}",
                ["metric", "value"],
                [[k, v] for k, v in sorted(result.metrics.items())])
    return 0


def _cmd_sweep_tau(args) -> int:
    taus = [float(t) for t in args.taus.split(",")]
    values = []
    for tau in taus:
        spec = ExperimentSpec(dataset=args.dataset, model=args.model,
                              loss="sl", loss_kwargs={"tau": tau},
                              epochs=args.epochs, seed=args.seed)
        values.append(run_experiment(spec).metric("ndcg@20"))
    print_series(f"NDCG@20 vs tau on {args.dataset}", taus, values)
    best = taus[values.index(max(values))]
    print(f"best tau: {best}")
    return 0


def _cmd_perf(args) -> int:
    from repro.experiments.perf import (PerfConfig, run_perf_suite,
                                        summarize, write_report)
    config = PerfConfig(
        dataset=args.dataset,
        models=tuple(args.models.split(",")),
        losses=tuple(args.losses.split(",")),
        dim=args.dim, steps=args.steps, warmup=args.warmup,
        batch_size=args.batch_size, n_negatives=args.negatives,
        eval_repeats=args.eval_repeats,
        include_reference=not args.no_reference, seed=args.seed)
    payload = run_perf_suite(config)
    write_report(payload, args.out)
    print(summarize(payload))
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BSL reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list built-in dataset presets")

    train = sub.add_parser("train", help="train one experiment cell")
    train.add_argument("--dataset", default="yelp2018-small",
                       choices=dataset_names())
    train.add_argument("--model", default="mf", choices=model_names())
    train.add_argument("--loss", default="bsl", choices=loss_names())
    train.add_argument("--tau", type=float, default=0.4,
                       help="SL temperature / BSL tau2")
    train.add_argument("--tau1", type=float, default=None,
                       help="BSL positive temperature (default: tau)")
    train.add_argument("--dim", type=int, default=64)
    train.add_argument("--epochs", type=int, default=25)
    train.add_argument("--lr", type=float, default=5e-2)
    train.add_argument("--negatives", type=int, default=128)
    train.add_argument("--positive-noise", type=float, default=0.0)
    train.add_argument("--rnoise", type=float, default=0.0)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--verbose", action="store_true")

    sweep = sub.add_parser("sweep-tau", help="SL temperature sweep")
    sweep.add_argument("--dataset", default="yelp2018-small",
                       choices=dataset_names())
    sweep.add_argument("--model", default="mf", choices=model_names())
    sweep.add_argument("--taus", default="0.2,0.3,0.4,0.6")
    sweep.add_argument("--epochs", type=int, default=18)
    sweep.add_argument("--seed", type=int, default=0)

    perf = sub.add_parser(
        "perf", help="time train/eval throughput, write BENCH_fastpath.json")
    perf.add_argument("--dataset", default="yelp2018-small",
                      choices=dataset_names())
    perf.add_argument("--models", default="mf,lightgcn,simgcl",
                      help="comma-separated model registry names")
    perf.add_argument("--losses", default="sl,bsl",
                      help="comma-separated loss registry names")
    perf.add_argument("--dim", type=int, default=64)
    perf.add_argument("--steps", type=int, default=15,
                      help="timed optimizer steps per cell")
    perf.add_argument("--warmup", type=int, default=3)
    perf.add_argument("--batch-size", type=int, default=1024)
    perf.add_argument("--negatives", type=int, default=128)
    perf.add_argument("--eval-repeats", type=int, default=3)
    perf.add_argument("--no-reference", action="store_true",
                      help="skip the compositional/uncached baseline rows")
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument("--out", default="BENCH_fastpath.json")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"datasets": _cmd_datasets, "train": _cmd_train,
                "sweep-tau": _cmd_sweep_tau, "perf": _cmd_perf}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
