"""Graph perturbations used by the contrastive backbones.

* **Edge dropout** — SGL builds contrastive views by dropping a fraction
  of interaction edges and re-normalizing the adjacency.
* **SVD reconstruction** — LightGCL replaces the stochastic augmentation
  with a low-rank SVD view of the interaction matrix.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.graph.adjacency import adjacency_from_pairs, normalize_adjacency
from repro.tensor.random import ensure_rng

__all__ = ["edge_dropout_adjacency", "svd_view"]


def edge_dropout_adjacency(dataset: InteractionDataset, drop_ratio: float,
                           rng=None) -> sp.csr_matrix:
    """Drop a fraction of interactions and return the normalized adjacency.

    Matches SGL's ED (edge-dropout) augmentation: each kept view is an
    independently subsampled graph.
    """
    if not 0.0 <= drop_ratio < 1.0:
        raise ValueError(f"drop_ratio must lie in [0, 1), got {drop_ratio}")
    rng = ensure_rng(rng)
    pairs = dataset.train_pairs
    keep = rng.random(len(pairs)) >= drop_ratio
    if not keep.any():  # degenerate tiny-graph edge case
        keep[rng.integers(0, len(pairs))] = True
    adj = adjacency_from_pairs(pairs[keep], dataset.num_users,
                               dataset.num_items)
    return normalize_adjacency(adj)


def svd_view(dataset: InteractionDataset, rank: int = 8
             ) -> tuple[np.ndarray, np.ndarray]:
    """Rank-``rank`` SVD factors of the normalized interaction matrix.

    Returns ``(U_s, V_s)`` with shapes ``(num_users, rank)`` and
    ``(num_items, rank)`` such that ``U_s @ V_s.T`` approximates the
    degree-normalized ``R``.  LightGCL propagates embeddings through this
    reconstruction to obtain its second (global) view.
    """
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    mat = dataset.train_matrix().astype(np.float64)
    # Degree-normalize like the adjacency to keep spectra comparable.
    du = np.asarray(mat.sum(axis=1)).ravel()
    di = np.asarray(mat.sum(axis=0)).ravel()
    with np.errstate(divide="ignore"):
        du_inv = np.power(du, -0.5)
        di_inv = np.power(di, -0.5)
    du_inv[~np.isfinite(du_inv)] = 0.0
    di_inv[~np.isfinite(di_inv)] = 0.0
    norm = sp.diags(du_inv) @ mat @ sp.diags(di_inv)
    rank = min(rank, min(norm.shape) - 1)
    u, s, vt = sp.linalg.svds(norm.tocsc(), k=rank)
    order = np.argsort(s)[::-1]
    u, s, vt = u[:, order], s[order], vt[order]
    sqrt_s = np.sqrt(s)
    return u * sqrt_s, (vt.T * sqrt_s)
