"""Graph substrate: adjacency building, sparse propagation, perturbation."""

from repro.graph.adjacency import (bipartite_adjacency, normalize_adjacency,
                                   adjacency_from_pairs)
from repro.graph.propagation import spmm
from repro.graph.perturb import edge_dropout_adjacency, svd_view

__all__ = [
    "bipartite_adjacency", "normalize_adjacency", "adjacency_from_pairs",
    "spmm", "edge_dropout_adjacency", "svd_view",
]
