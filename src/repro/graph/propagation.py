"""Differentiable sparse propagation.

GCN layers multiply a constant sparse adjacency by the dense embedding
tensor; the vector-Jacobian product is simply the transposed adjacency
applied to the upstream gradient.  Registered here as a custom autograd
op so propagation composes with the rest of the graph.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.tensor import Tensor, as_tensor, ops

__all__ = ["spmm"]


def spmm(matrix: sp.spmatrix, x) -> Tensor:
    """Sparse-dense product ``matrix @ x`` with gradient ``matrix.T @ g``.

    Parameters
    ----------
    matrix:
        A constant scipy sparse matrix (no gradient flows into it).
    x:
        A dense :class:`Tensor` of shape ``(matrix.shape[1], d)``.
    """
    x = as_tensor(x)
    if matrix.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch: {matrix.shape} @ {x.shape}")
    csr = matrix.tocsr()
    data = csr @ x.data
    transposed = csr.T.tocsr()

    def backward(g):
        return (transposed @ g,)

    return ops._node(data, (x,), backward)
