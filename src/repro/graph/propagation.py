"""Differentiable sparse propagation, with a per-graph-version cache.

GCN layers multiply a constant sparse adjacency by the dense embedding
tensor; the vector-Jacobian product is simply the transposed adjacency
applied to the upstream gradient.  Registered here as a custom autograd
op so propagation composes with the rest of the graph.

Because LightGCN-family models re-run the *same* spmv chain several
times per training step (the scoring forward plus one or two SSL-view
forwards), :class:`PropagationCache` memoizes each ``adjacency @ x``
product per graph version.  An entry is valid only while

* the adjacency object is the same object (``graph/perturb.py`` builds
  a fresh matrix for every resampled view, so edits invalidate by
  identity),
* no parameter buffer has been mutated in place since the product was
  computed (tracked via :func:`repro.tensor.tensor.data_version`), and
* the autograd-recording mode is unchanged (a no-grad product must not
  be reused inside a training forward).

Reusing a cached node means the scoring loss and the SSL losses share
one subgraph; reverse-mode accumulation through shared parents is
exactly gradient summation, so a single ``backward()`` on the summed
loss is unchanged semantically — only the redundant forward work
disappears.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.obs.metrics import get_registry
from repro.tensor import Tensor, as_tensor, ops
from repro.tensor.tensor import data_version, is_grad_enabled

__all__ = ["spmm", "PropagationCache"]

# Attribute under which a matrix memoizes its own CSR transpose.  Tying
# the memo to the matrix object (rather than a module-level cache) means
# its lifetime exactly matches the adjacency's: discarded graph views
# free their transposes with them, and the permanent base adjacency
# keeps its transpose for every backward pass.
_TRANSPOSE_ATTR = "_repro_cached_transpose"


def _transposed_csr(matrix) -> sp.csr_matrix:
    """``matrix.T.tocsr()``, memoized on the (constant) matrix itself.

    The backward pass of every spmm node on the same adjacency shares
    one transpose instead of re-materializing an O(nnz) copy per node.
    """
    cached = getattr(matrix, _TRANSPOSE_ATTR, None)
    if cached is None:
        cached = matrix.T.tocsr()
        try:
            setattr(matrix, _TRANSPOSE_ATTR, cached)
        except AttributeError:  # exotic matrix types without __dict__
            pass
    return cached


def spmm(matrix: sp.spmatrix, x) -> Tensor:
    """Sparse-dense product ``matrix @ x`` with gradient ``matrix.T @ g``.

    Parameters
    ----------
    matrix:
        A constant scipy sparse matrix (no gradient flows into it).
    x:
        A dense :class:`Tensor` of shape ``(matrix.shape[1], d)``.
    """
    x = as_tensor(x)
    if matrix.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch: {matrix.shape} @ {x.shape}")
    csr = matrix.tocsr()
    data = csr @ x.data

    def backward(g):
        return (_transposed_csr(csr) @ g,)

    return ops._node(data, (x,), backward)


class PropagationCache:
    """Memoize ``adjacency @ x`` autograd nodes per graph version.

    Owned by one model instance.  Keys are ``(id(adjacency), id(x))``
    with strong references kept for identity verification; every entry
    also records the global data-version token and grad mode at
    creation.  On any miss with a changed token the whole cache is
    dropped, so stale entries never outlive an optimizer step, a
    checkpoint restore, or a graph-view resample.
    """

    def __init__(self, max_entries: int = 32):
        self.max_entries = max_entries
        self._entries: dict[tuple[int, int], tuple] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # The instance attributes above stay the per-model source of
        # truth (tests pin exact counts on them); the same events also
        # feed these process-wide aggregate counters so the training
        # path's cache behaviour shows up in `repro metrics`.
        registry = get_registry()
        self._ctr_hits = registry.counter(
            "graph.propagation.hits", "propagation-cache hits")
        self._ctr_misses = registry.counter(
            "graph.propagation.misses", "propagation-cache misses")
        self._ctr_invalidated = registry.counter(
            "graph.propagation.invalidations",
            "cached propagation entries dropped (staleness or clear())")

    def _token(self) -> tuple[int, bool]:
        return (data_version(), is_grad_enabled())

    def _purge_if_stale(self, token) -> None:
        """Enforce the invariant that all live entries share one token.

        Entries are only ever inserted under the current token, so a
        single mismatching entry means *every* entry is stale — drop
        them all so dead autograd subgraphs aren't pinned.  Also caps
        the entry count (clearing wholesale is fine: one forward pass
        repopulates the handful of hot products).
        """
        if self._entries and (
                len(self._entries) >= self.max_entries
                or next(iter(self._entries.values()))[2] != token):
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            self._ctr_invalidated.inc(dropped)

    def spmm(self, matrix: sp.spmatrix, x) -> Tensor:
        """Cached :func:`spmm`; falls through on any staleness signal."""
        x = as_tensor(x)
        token = self._token()
        key = (id(matrix), id(x))
        entry = self._entries.get(key)
        if (entry is not None and entry[0] is matrix and entry[1] is x
                and entry[2] == token):
            self.hits += 1
            self._ctr_hits.inc()
            return entry[3]
        self.misses += 1
        self._ctr_misses.inc()
        self._purge_if_stale(token)
        out = spmm(matrix, x)
        self._entries[key] = (matrix, x, token, out)
        return out

    def get(self, kind: str, matrix) -> Tensor | None:
        """Look up a non-spmm memo (e.g. a model's final propagate())."""
        token = self._token()
        key = (kind, id(matrix))
        entry = self._entries.get(key)
        if (entry is not None and entry[0] is matrix and entry[2] == token):
            self.hits += 1
            self._ctr_hits.inc()
            return entry[3]
        self._purge_if_stale(token)
        return None

    def put(self, kind: str, matrix, value) -> None:
        token = self._token()
        self._purge_if_stale(token)
        self._entries[(kind, id(matrix))] = (matrix, None, token, value)

    def clear(self) -> None:
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += dropped
        self._ctr_invalidated.inc(dropped)
