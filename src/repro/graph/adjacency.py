"""Normalized bipartite adjacency construction (LightGCN/NGCF substrate).

The GCN backbones propagate embeddings over the user-item bipartite
graph ``A = [[0, R], [R^T, 0]]`` using the symmetric normalization
``Ã = D^{-1/2} A D^{-1/2}`` introduced by NGCF/LightGCN.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset

__all__ = ["bipartite_adjacency", "normalize_adjacency",
           "adjacency_from_pairs"]


def adjacency_from_pairs(pairs: np.ndarray, num_users: int,
                         num_items: int) -> sp.csr_matrix:
    """Build the (users+items) x (users+items) bipartite adjacency."""
    n = num_users + num_items
    rows = np.concatenate([pairs[:, 0], pairs[:, 1] + num_users])
    cols = np.concatenate([pairs[:, 1] + num_users, pairs[:, 0]])
    data = np.ones(len(rows), dtype=np.float64)
    adj = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    adj.data[:] = 1.0  # collapse duplicate interactions
    return adj


def normalize_adjacency(adj: sp.csr_matrix) -> sp.csr_matrix:
    """Symmetric normalization ``D^{-1/2} A D^{-1/2}`` (zero-degree safe)."""
    degree = np.asarray(adj.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = np.power(degree, -0.5)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d = sp.diags(inv_sqrt)
    return (d @ adj @ d).tocsr()


def bipartite_adjacency(dataset: InteractionDataset) -> sp.csr_matrix:
    """Normalized bipartite adjacency of a dataset's training graph."""
    adj = adjacency_from_pairs(dataset.train_pairs, dataset.num_users,
                               dataset.num_items)
    return normalize_adjacency(adj)
