"""Recommender interface shared by every backbone.

A backbone produces *final* user/item embedding tables (possibly via
graph propagation); scoring and the train/test conventions follow the
paper's Appendix (Table V): training scores are cosine similarities of
L2-normalized embeddings, test scores are inner products (cosine for
MF).  Losses are decoupled from backbones — any loss from
:mod:`repro.losses` can drive any backbone.
"""

from __future__ import annotations

import numpy as np

from repro.data.sampling import TrainingBatch
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad, ops
from repro.tensor import functional as F

__all__ = ["Recommender"]


class Recommender(Module):
    """Base class: embedding propagation + batch/full scoring.

    Parameters
    ----------
    num_users, num_items:
        Entity counts of the dataset.
    dim:
        Embedding dimensionality (64 in the paper's main experiments).
    train_scoring, test_scoring:
        ``"cosine"`` or ``"inner"``; defaults follow Table V
        (train: cosine everywhere; test: model-specific).
    """

    def __init__(self, num_users: int, num_items: int, dim: int = 64,
                 train_scoring: str = "cosine", test_scoring: str = "inner"):
        super().__init__()
        for label, value in (("train_scoring", train_scoring),
                             ("test_scoring", test_scoring)):
            if value not in ("cosine", "inner", "euclidean"):
                raise ValueError(f"{label} must be cosine/inner/euclidean, "
                                 f"got {value!r}")
        self.num_users = num_users
        self.num_items = num_items
        self.dim = dim
        self.train_scoring = train_scoring
        self.test_scoring = test_scoring

    # ------------------------------------------------------------------
    # To be provided by backbones
    # ------------------------------------------------------------------
    def propagate(self) -> tuple[Tensor, Tensor]:
        """Return the final (user_table, item_table) embedding tensors."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def batch_scores(self, batch: TrainingBatch) -> tuple[Tensor, Tensor]:
        """Score one training batch.

        Returns ``(pos_scores, neg_scores)`` of shapes ``(B,)`` and
        ``(B, m)`` on the training scoring function.

        Implementation note: for inner/cosine scoring we normalize the
        *tables* once and score the batch users against the full
        catalogue with one BLAS matmul, then gather the positive and
        negative entries.  At recommendation-catalogue scales this is
        far cheaper than materializing per-pair ``(B, m, d)`` tensors,
        and the gradient (scatter-add through the gathers) is identical.
        """
        users_t, items_t = self.propagate()
        if self.train_scoring == "cosine":
            users_t = F.l2_normalize(users_t, axis=-1)
            items_t = F.l2_normalize(items_t, axis=-1)
        u = ops.take_rows(users_t, batch.users)           # (B, d)
        all_scores = ops.matmul(u, items_t.T)             # (B, n_items)
        if self.train_scoring == "euclidean":
            # -||u - i||^2 = 2 u.i - ||u||^2 - ||i||^2, vectorized over
            # the catalogue so no (B, m, d) tensor is materialized.
            u_sq = (u * u).sum(axis=1, keepdims=True)     # (B, 1)
            i_sq = (items_t * items_t).sum(axis=1)        # (n_items,)
            all_scores = 2.0 * all_scores - u_sq - i_sq
        rows = np.arange(len(batch))
        pos = all_scores[rows, batch.positives]
        neg = all_scores[rows[:, None], batch.negatives]
        return pos, neg

    def sampled_batch_scores(self, batch: TrainingBatch, fused: bool = True
                             ) -> tuple[Tensor, Tensor]:
        """Score one training batch touching only the sampled rows.

        Mathematically equivalent to :meth:`batch_scores` (same
        ``(pos_scores, neg_scores)`` up to floating-point ordering) but
        the work is ``O(batch * n_negatives * dim)`` instead of
        ``O(batch * num_items * dim)``: user/positive/negative rows are
        gathered with ``take_rows(..., sparse_grad=True)`` and scored
        per pair, never against the full catalogue.  Cosine scoring
        normalizes the gathered rows — normalize-then-gather and
        gather-then-normalize are the same row operation.

        When :meth:`propagate` returns the raw embedding tables (MF,
        CML, ...), the backward pass therefore yields
        :class:`~repro.tensor.sparse.RowSparseGrad` parameter gradients
        for the row-sparse optimizers.  Graph backbones whose tables
        are propagation outputs still work — their gradients densify at
        the propagation node (see ``Tensor.backward``) — they just keep
        paying the propagation cost that dominates them anyway.

        ``fused=True`` (default) routes through one
        :func:`~repro.tensor.functional.fused_sampled_scores` node
        instead of the ~15-node compositional chain over the
        ``(B, m, dim)`` negative block; ``fused=False`` keeps the
        compositional path alive as the executable oracle, per the
        fused-kernel contract in :mod:`repro.tensor`.
        """
        users_t, items_t = self.propagate()
        if fused:
            scores = F.fused_sampled_scores(
                users_t, items_t, batch.users, batch.positives,
                batch.negatives, scoring=self.train_scoring)
            return scores[:, 0], scores[:, 1:]
        batch_size = len(batch)
        u = ops.take_rows(users_t, batch.users, sparse_grad=True)       # (B, d)
        p = ops.take_rows(items_t, batch.positives, sparse_grad=True)   # (B, d)
        n = ops.take_rows(items_t, batch.negatives, sparse_grad=True)   # (B, m, d)
        if self.train_scoring == "cosine":
            u = F.l2_normalize(u, axis=-1)
            p = F.l2_normalize(p, axis=-1)
            n = F.l2_normalize(n, axis=-1)
        pos_inner = (u * p).sum(axis=1)                                 # (B,)
        # (B, m, d) @ (B, d, 1) -> (B, m, 1): one batched BLAS call.
        neg_inner = ops.matmul(n, u.reshape(batch_size, self.dim, 1)) \
            .reshape(batch_size, -1)                                    # (B, m)
        if self.train_scoring != "euclidean":
            return pos_inner, neg_inner
        u_sq = (u * u).sum(axis=1)                                      # (B,)
        p_sq = (p * p).sum(axis=1)                                      # (B,)
        n_sq = (n * n).sum(axis=2)                                      # (B, m)
        pos = 2.0 * pos_inner - u_sq - p_sq
        neg = 2.0 * neg_inner - u_sq.reshape(batch_size, 1) - n_sq
        return pos, neg

    def auxiliary_loss(self, batch: TrainingBatch) -> Tensor | None:
        """Optional model-specific loss (SSL branches); default none."""
        return None

    def custom_loss(self, batch: TrainingBatch) -> Tensor | None:
        """Fully custom objective replacing the pluggable loss (ENMF)."""
        return None

    def post_step(self) -> None:
        """Hook after each optimizer step (e.g. CML's norm projection)."""

    def on_epoch_start(self, rng) -> None:
        """Hook before each epoch (e.g. SGL resamples its graph views)."""

    # ------------------------------------------------------------------
    # Full-ranking prediction (evaluation)
    # ------------------------------------------------------------------
    def predict_scores(self, user_ids=None) -> np.ndarray:
        """Dense score matrix for evaluation, using test scoring.

        Parameters
        ----------
        user_ids:
            Optional subset of users; defaults to all users.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                users_t, items_t = self.propagate()
            users = users_t.data
            items = items_t.data
        finally:
            if was_training:
                self.train()
        if user_ids is not None:
            users = users[np.asarray(user_ids, dtype=np.int64)]
        if self.test_scoring == "cosine":
            users = users / (np.linalg.norm(users, axis=1, keepdims=True) + 1e-12)
            items = items / (np.linalg.norm(items, axis=1, keepdims=True) + 1e-12)
        if self.test_scoring == "euclidean":
            # negative squared distance ranks identically to -distance
            u2 = (users ** 2).sum(axis=1, keepdims=True)
            i2 = (items ** 2).sum(axis=1)
            return -(u2 + i2 - 2.0 * users @ items.T)
        return users @ items.T

    def embeddings(self) -> tuple[np.ndarray, np.ndarray]:
        """Final numpy embedding tables (no grad), for analysis/t-SNE."""
        with no_grad():
            users_t, items_t = self.propagate()
        return users_t.data.copy(), items_t.data.copy()
