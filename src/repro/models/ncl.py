"""NCL backbone (Lin et al., WWW 2022), simplified.

Neighborhood-enriched Contrastive Learning augments LightGCN with two
contrastive objectives:

* **structural**: a node's final embedding is aligned with its
  even-hop propagated embedding (structural neighbours of the same
  node type);
* **semantic (prototype)**: embeddings are aligned with their k-means
  prototype, refreshed periodically during training.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.kmeans import kmeans
from repro.data.dataset import InteractionDataset
from repro.data.sampling import TrainingBatch
from repro.losses.contrastive import InfoNCELoss
from repro.models.lightgcn import LightGCN
from repro.tensor import Tensor, no_grad, ops
from repro.tensor import functional as F
from repro.tensor.random import ensure_rng

__all__ = ["NCL"]


class NCL(LightGCN):
    """LightGCN + structural and prototype contrastive branches.

    Parameters
    ----------
    ssl_weight:
        Coefficient of the structural branch.
    proto_weight:
        Coefficient of the prototype branch (0 disables k-means).
    num_prototypes:
        Number of k-means prototypes per node type.
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, ssl_weight: float = 0.1,
                 proto_weight: float = 0.05, num_prototypes: int = 8,
                 ssl_tau: float = 0.2, rng=None):
        super().__init__(dataset, dim=dim, num_layers=num_layers, rng=rng)
        if ssl_weight < 0 or proto_weight < 0:
            raise ValueError("branch weights must be non-negative")
        self.ssl_weight = ssl_weight
        self.proto_weight = proto_weight
        self.num_prototypes = num_prototypes
        self._infonce = InfoNCELoss(tau=ssl_tau)
        self._proto_rng = ensure_rng(rng)
        self._user_protos: np.ndarray | None = None
        self._item_protos: np.ndarray | None = None

    # ------------------------------------------------------------------
    def on_epoch_start(self, rng) -> None:
        """Refresh k-means prototypes from the current embeddings."""
        if self.proto_weight == 0:
            return
        with no_grad():
            users_t, items_t = self.propagate()
        k_users = min(self.num_prototypes, self.num_users)
        k_items = min(self.num_prototypes, self.num_items)
        user_centroids, user_labels = kmeans(users_t.data, k_users,
                                             rng=self._proto_rng)
        item_centroids, item_labels = kmeans(items_t.data, k_items,
                                             rng=self._proto_rng)
        self._user_protos = user_centroids[user_labels]
        self._item_protos = item_centroids[item_labels]

    def _layer_embeddings(self) -> list[Tensor]:
        # Shares the propagation cache with batch_scores' propagate():
        # within one training step both walk the identical spmv chain,
        # so the auxiliary branch reuses the already-built nodes.
        return self._layer_tensors(self.adjacency)

    def auxiliary_loss(self, batch: TrainingBatch) -> Tensor | None:
        if self.ssl_weight == 0 and self.proto_weight == 0:
            return None
        layers = self._layer_embeddings()
        users = np.unique(batch.users)
        items = np.unique(batch.positives) + self.num_users

        total = None
        if self.ssl_weight:
            # structural: layer-0 vs layer-2 (even hop = same node type)
            hop = min(2, self.num_layers)
            base, even = layers[0], layers[hop]
            struct = (self._infonce(ops.take_rows(base, users),
                                    ops.take_rows(even, users))
                      + self._infonce(ops.take_rows(base, items),
                                      ops.take_rows(even, items)))
            total = self.ssl_weight * struct
        if self.proto_weight and self._user_protos is not None:
            stacked = ops.stack(layers, axis=0).mean(axis=0)
            protos = np.concatenate([self._user_protos, self._item_protos])
            proto = (self._infonce(ops.take_rows(stacked, users),
                                   Tensor(protos[users]))
                     + self._infonce(ops.take_rows(stacked, items),
                                     Tensor(protos[items])))
            proto_term = self.proto_weight * proto
            total = proto_term if total is None else total + proto_term
        return total
