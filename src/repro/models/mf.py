"""Matrix Factorization backbone (Koren et al., 2009).

The simplest backbone of the paper: the final embeddings *are* the ID
embedding tables.  Per Appendix Table V, MF trains and tests with cosine
similarity and uses sampled negatives.
"""

from __future__ import annotations

from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.tensor import Tensor
from repro.tensor.random import spawn_rngs

__all__ = ["MF"]


class MF(Recommender):
    """ID-embedding matrix factorization.

    Parameters
    ----------
    num_users, num_items, dim:
        See :class:`~repro.models.base.Recommender`.
    rng:
        Seed or generator for Xavier initialization.
    tables:
        Optional pre-built ``(user_table, item_table)`` pair wrapped
        as-is instead of drawing fresh Xavier tables — the out-of-core
        path (:mod:`repro.train.outofcore`) passes writable memmaps so
        training updates the on-disk tables in place.
    """

    def __init__(self, num_users: int, num_items: int, dim: int = 64,
                 rng=None, tables=None):
        super().__init__(num_users, num_items, dim,
                         train_scoring="cosine", test_scoring="cosine")
        if tables is not None:
            user_table, item_table = tables
            self.user_embedding = Embedding(num_users, dim, weight=user_table)
            self.item_embedding = Embedding(num_items, dim, weight=item_table)
        else:
            user_rng, item_rng = spawn_rngs(rng, 2)
            self.user_embedding = Embedding(num_users, dim, rng=user_rng)
            self.item_embedding = Embedding(num_items, dim, rng=item_rng)

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self.user_embedding.all(), self.item_embedding.all()
