"""SimpleX backbone (Mao et al., CIKM 2021).

"A simple and strong baseline": the user representation fuses the ID
embedding with the average of the user's interacted-item embeddings,

``h_u = g · e_u + (1 - g) · mean_{i ∈ S+_u} e_i``

and the model trains with the Cosine Contrastive Loss
(:class:`repro.losses.contrastive.CosineContrastiveLoss`).  The paper
cites SimpleX as evidence that the *loss choice* dominates — exactly
the thesis BSL builds on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.graph.propagation import spmm
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.tensor.random import spawn_rngs

__all__ = ["SimpleX"]


class SimpleX(Recommender):
    """MF + averaged behaviour aggregation, intended for the CCL loss.

    Parameters
    ----------
    gate:
        The fusion weight ``g`` between the ID embedding and the
        behaviour average (learned when ``learn_gate=True``).
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 gate: float = 0.5, learn_gate: bool = False, rng=None):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="cosine")
        if not 0.0 <= gate <= 1.0:
            raise ValueError("gate must lie in [0, 1]")
        user_rng, item_rng = spawn_rngs(rng, 2)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=user_rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=item_rng)
        self._gate_param = Parameter([gate]) if learn_gate else None
        self._gate_value = gate
        # Row-normalized user->item history matrix for the behaviour mean.
        mat = dataset.train_matrix()
        degree = np.asarray(mat.sum(axis=1)).ravel()
        degree[degree == 0] = 1.0
        self._history = (sp.diags(1.0 / degree) @ mat).tocsr()

    @property
    def gate(self) -> float:
        if self._gate_param is not None:
            return float(np.clip(self._gate_param.data[0], 0.0, 1.0))
        return self._gate_value

    def propagate(self) -> tuple[Tensor, Tensor]:
        items = self.item_embedding.all()
        behaviour = spmm(self._history, items)     # (num_users, dim)
        if self._gate_param is not None:
            g = self._gate_param.clip(0.0, 1.0)
            users = self.user_embedding.all() * g + behaviour * (1.0 - g)
        else:
            g = self._gate_value
            users = self.user_embedding.all() * g + behaviour * (1.0 - g)
        return users, items
