"""Recommendation backbones: MF, NGCF, LightGCN, SGL, SimGCL, LightGCL, ..."""

from repro.models.base import Recommender
from repro.models.mf import MF
from repro.models.cml import CML
from repro.models.enmf import ENMF
from repro.models.ngcf import NGCF
from repro.models.lightgcn import LightGCN
from repro.models.sgl import SGL
from repro.models.simgcl import SimGCL
from repro.models.lightgcl import LightGCL
from repro.models.lrgccf import LRGCCF
from repro.models.niagcn import NIAGCN
from repro.models.ultragcn import UltraGCN
from repro.models.simplex import SimpleX
from repro.models.ncl import NCL
from repro.models.dgcf import DGCF
from repro.models.registry import get_model, model_names, MODELS

__all__ = [
    "Recommender", "MF", "CML", "ENMF", "NGCF", "LightGCN", "SGL",
    "SimGCL", "LightGCL", "LRGCCF", "NIAGCN", "UltraGCN", "SimpleX",
    "NCL", "DGCF", "get_model", "model_names", "MODELS",
]
