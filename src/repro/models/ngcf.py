"""NGCF backbone (Wang et al., SIGIR 2019).

Each propagation layer applies two learned transforms — one on the
aggregated neighbourhood, one on the element-wise neighbourhood-ego
interaction — followed by LeakyReLU and message dropout; the final
representation concatenates all layer outputs:

``E^(l+1) = LeakyReLU( (Ã + I) E^(l) W1 + (Ã E^(l)) ⊙ E^(l) W2 )``
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.graph.adjacency import bipartite_adjacency
from repro.graph.propagation import spmm
from repro.models.base import Recommender
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.tensor import Tensor, ops
from repro.tensor import functional as F
from repro.tensor.random import spawn_rngs

__all__ = ["NGCF"]


class NGCF(Recommender):
    """Neural Graph Collaborative Filtering.

    Parameters
    ----------
    num_layers:
        Propagation depth (the paper tunes {1, 2, 3}).
    message_dropout:
        Dropout applied to each layer output during training.
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, message_dropout: float = 0.1,
                 rng=None):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="inner")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers
        rngs = spawn_rngs(rng, 2 + 2 * num_layers + 1)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=rngs[0])
        self.item_embedding = Embedding(dataset.num_items, dim, rng=rngs[1])
        self.w1_layers = [Linear(dim, dim, rng=rngs[2 + 2 * l])
                          for l in range(num_layers)]
        self.w2_layers = [Linear(dim, dim, rng=rngs[3 + 2 * l])
                          for l in range(num_layers)]
        self.dropout = Dropout(message_dropout, rng=rngs[-1])
        self._adjacency: sp.csr_matrix = bipartite_adjacency(dataset)

    def propagate(self) -> tuple[Tensor, Tensor]:
        ego = ops.concatenate(
            [self.user_embedding.all(), self.item_embedding.all()], axis=0)
        layers = [ego]
        current = ego
        for w1, w2 in zip(self.w1_layers, self.w2_layers):
            side = spmm(self._adjacency, current)
            # (Ã + I) E W1  +  (Ã E ⊙ E) W2
            transformed = w1(side + current) + w2(side * current)
            current = F.leaky_relu(transformed, negative_slope=0.2)
            current = self.dropout(current)
            # NGCF L2-normalizes each layer's output embedding.
            layers.append(F.l2_normalize(current, axis=1))
        final = ops.concatenate(layers, axis=1)
        return final[: self.num_users], final[self.num_users:]
