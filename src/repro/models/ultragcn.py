"""UltraGCN backbone (Mao et al., CIKM 2021), simplified.

UltraGCN skips explicit message passing entirely: it shows that
infinite-layer LightGCN converges to a constraint of the form
``e_u ≈ Σ_i β_{u,i} e_i`` and optimizes that limit directly with a
weighted BCE objective, plus an item-item co-occurrence constraint.

We implement the two constraint losses on top of plain ID embeddings:

* user-item constraint with the closed-form weights
  ``β_{u,i} = (1/d_u) * sqrt((d_u+1)/(d_i+1))``;
* an item-item term that pulls each positive item toward its top
  co-occurring items (the ``I = R^T R`` graph), with a fixed top-k
  neighbour set computed once at construction.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.sampling import TrainingBatch
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.tensor import Tensor, ops
from repro.tensor import functional as F
from repro.tensor.random import spawn_rngs

__all__ = ["UltraGCN"]


class UltraGCN(Recommender):
    """Constraint-based MF approximating infinite-depth LightGCN.

    Parameters
    ----------
    item_weight:
        Coefficient of the item-item constraint loss (``gamma``).
    num_item_neighbors:
        Top-k co-occurring items used by the item-item constraint.
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 item_weight: float = 0.5, num_item_neighbors: int = 8,
                 rng=None):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="cosine")
        if item_weight < 0:
            raise ValueError("item_weight must be non-negative")
        user_rng, item_rng = spawn_rngs(rng, 2)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=user_rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=item_rng)
        self.item_weight = item_weight
        self._beta = self._constraint_weights(dataset)
        self._item_neighbors, self._item_neighbor_w = \
            self._build_item_graph(dataset, num_item_neighbors)

    @staticmethod
    def _constraint_weights(dataset: InteractionDataset
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Per-user / per-item factors of β_{u,i} (their product)."""
        du = np.maximum(dataset.user_degree().astype(np.float64), 1.0)
        di = dataset.item_popularity.astype(np.float64)
        user_factor = np.sqrt(du + 1.0) / du
        item_factor = 1.0 / np.sqrt(di + 1.0)
        return user_factor, item_factor

    @staticmethod
    def _build_item_graph(dataset: InteractionDataset, k: int):
        mat = dataset.train_matrix()
        co = (mat.T @ mat).toarray().astype(np.float64)
        np.fill_diagonal(co, 0.0)
        deg = co.sum(axis=1)
        deg[deg == 0] = 1.0
        weights = co / deg[:, None]
        k = min(k, dataset.num_items - 1)
        neighbors = np.argsort(-weights, axis=1)[:, :k]
        rows = np.arange(dataset.num_items)[:, None]
        return neighbors, weights[rows, neighbors]

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self.user_embedding.all(), self.item_embedding.all()

    def auxiliary_loss(self, batch: TrainingBatch) -> Tensor:
        """Weighted positive constraint + item-item constraint.

        The base pluggable loss (typically BCE/SL over the batch) plays
        UltraGCN's main term; this hook adds the graph-derived
        constraints with their closed-form weights.
        """
        user_factor, item_factor = self._beta
        users_t, items_t = self.propagate()
        u = F.l2_normalize(ops.take_rows(users_t, batch.users), axis=1)
        i = F.l2_normalize(ops.take_rows(items_t, batch.positives), axis=1)
        beta = Tensor(user_factor[batch.users]
                      * item_factor[batch.positives])
        pos_scores = (u * i).sum(axis=-1)
        constraint = (beta * F.softplus(-pos_scores)).mean()

        if self.item_weight == 0:
            return constraint
        neigh_idx = self._item_neighbors[batch.positives]      # (B, k)
        neigh_w = Tensor(self._item_neighbor_w[batch.positives])
        neigh = F.l2_normalize(ops.take_rows(items_t, neigh_idx), axis=-1)
        sim = (u.unsqueeze(1) * neigh).sum(axis=-1)            # (B, k)
        item_term = (neigh_w * F.softplus(-sim)).mean()
        return constraint + self.item_weight * item_term
