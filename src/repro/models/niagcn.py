"""NIA-GCN backbone (Sun et al., SIGIR 2020), simplified.

Neighbor-Interaction-Aware GCN augments the usual neighbourhood sum
with *pairwise neighbour interactions* (PNI): for node ``v`` with
neighbours ``N(v)``, the interaction term aggregates element-wise
products over unordered neighbour pairs.  We use the algebraic identity

``Σ_{i<j∈N(v)} e_i ⊙ e_j = ((Σ e_i)² − Σ e_i²) / 2``

to compute it with two sparse products (exact, no sampling), dropping
the original paper's per-depth attention for compactness.  The layer
output mixes the ego, sum-aggregated and interaction-aggregated
signals through learned transforms.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.graph.adjacency import adjacency_from_pairs
from repro.graph.propagation import spmm
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.tensor import Tensor, ops
from repro.tensor import functional as F
from repro.tensor.random import spawn_rngs

__all__ = ["NIAGCN"]


class NIAGCN(Recommender):
    """GCN with exact pairwise-neighbour interaction aggregation."""

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, rng=None):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="inner")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers
        rngs = spawn_rngs(rng, 2 + num_layers)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=rngs[0])
        self.item_embedding = Embedding(dataset.num_items, dim, rng=rngs[1])
        self.mix_layers = [Linear(3 * dim, dim, rng=rngs[2 + l])
                           for l in range(num_layers)]
        # Row-normalized (mean) adjacency keeps the PNI term bounded.
        adj = adjacency_from_pairs(dataset.train_pairs, dataset.num_users,
                                   dataset.num_items)
        degree = adj.sum(axis=1).A.ravel()
        degree[degree == 0] = 1.0
        self._adjacency = sp.diags(1.0 / degree) @ adj

    def propagate(self) -> tuple[Tensor, Tensor]:
        current = ops.concatenate(
            [self.user_embedding.all(), self.item_embedding.all()], axis=0)
        layers = [current]
        for mix in self.mix_layers:
            neighbour_sum = spmm(self._adjacency, current)
            neighbour_sq = spmm(self._adjacency, current * current)
            pni = (neighbour_sum * neighbour_sum - neighbour_sq) * 0.5
            stacked = ops.concatenate([current, neighbour_sum, pni], axis=1)
            current = mix(stacked).tanh()
            layers.append(F.l2_normalize(current, axis=1))
        final = ops.concatenate(layers, axis=1)
        return final[: self.num_users], final[self.num_users:]
