"""SimGCL backbone (Yu et al., SIGIR 2022).

"Are graph augmentations necessary?" — SimGCL drops SGL's structural
augmentation and instead perturbs each propagation layer with uniform
random noise projected onto the embedding's sign, contrasting two such
noisy forward passes.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.sampling import TrainingBatch
from repro.losses.contrastive import InfoNCELoss
from repro.models.lightgcn import LightGCN
from repro.tensor import Tensor, ops
from repro.tensor.random import ensure_rng

__all__ = ["SimGCL"]


class SimGCL(LightGCN):
    """LightGCN with noise-perturbed contrastive views.

    Parameters
    ----------
    noise_eps:
        Magnitude ε of the per-layer noise (paper default 0.1).
    ssl_weight, ssl_tau:
        InfoNCE branch coefficient and temperature.
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, noise_eps: float = 0.1,
                 ssl_weight: float = 0.1, ssl_tau: float = 0.2, rng=None):
        super().__init__(dataset, dim=dim, num_layers=num_layers, rng=rng)
        if noise_eps < 0:
            raise ValueError("noise_eps must be non-negative")
        self.noise_eps = noise_eps
        self.ssl_weight = ssl_weight
        self._infonce = InfoNCELoss(tau=ssl_tau)
        self._noise_rng = ensure_rng(rng)

    def _noisy_propagate(self) -> tuple[Tensor, Tensor]:
        """One forward pass with sign-aligned uniform noise per layer."""

        def add_noise(layer: Tensor) -> Tensor:
            raw = self._noise_rng.random(layer.shape)
            direction = raw / (np.linalg.norm(raw, axis=1, keepdims=True) + 1e-12)
            noise = np.sign(layer.data) * direction * self.noise_eps
            return layer + Tensor(noise)

        return self._propagate_on(self.adjacency, noise_fn=add_noise)

    def auxiliary_loss(self, batch: TrainingBatch) -> Tensor | None:
        if self.ssl_weight == 0:
            return None
        u1, i1 = self._noisy_propagate()
        u2, i2 = self._noisy_propagate()
        users = np.unique(batch.users)
        items = np.unique(batch.positives)
        user_ssl = self._infonce(ops.take_rows(u1, users),
                                 ops.take_rows(u2, users))
        item_ssl = self._infonce(ops.take_rows(i1, items),
                                 ops.take_rows(i2, items))
        return self.ssl_weight * (user_ssl + item_ssl)
