"""Collaborative Metric Learning baseline (Hsieh et al., WWW 2017).

CML embeds users and items in a shared metric space: the score is the
negative squared Euclidean distance, trained with a margin hinge loss
(:class:`repro.losses.pairwise.MarginHingeLoss`) and a unit-ball norm
projection after every optimizer step.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.tensor import Tensor
from repro.tensor.random import spawn_rngs
from repro.tensor.tensor import bump_data_version

__all__ = ["CML"]


class CML(Recommender):
    """Metric-learning recommender (Table II baseline).

    Parameters
    ----------
    max_norm:
        Radius of the ball embeddings are projected onto after each
        optimizer step (CML's regularization).
    """

    def __init__(self, num_users: int, num_items: int, dim: int = 64,
                 max_norm: float = 1.0, rng=None):
        super().__init__(num_users, num_items, dim,
                         train_scoring="euclidean", test_scoring="euclidean")
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm
        user_rng, item_rng = spawn_rngs(rng, 2)
        self.user_embedding = Embedding(num_users, dim, rng=user_rng)
        self.item_embedding = Embedding(num_items, dim, rng=item_rng)

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self.user_embedding.all(), self.item_embedding.all()

    def post_step(self) -> None:
        """Project all embeddings back into the max-norm ball."""
        for table in (self.user_embedding.weight, self.item_embedding.weight):
            norms = np.linalg.norm(table.data, axis=1, keepdims=True)
            scale = np.minimum(1.0, self.max_norm / np.maximum(norms, 1e-12))
            table.data *= scale
        bump_data_version()
