"""Model registry: build backbones by name.

GCN-family models need the dataset (to build their propagation graph);
MF/CML need only the entity counts.  :func:`get_model` normalizes this.
"""

from __future__ import annotations

from repro.data.dataset import InteractionDataset
from repro.models.base import Recommender
from repro.models.cml import CML
from repro.models.dgcf import DGCF
from repro.models.enmf import ENMF
from repro.models.lightgcl import LightGCL
from repro.models.lightgcn import LightGCN
from repro.models.lrgccf import LRGCCF
from repro.models.mf import MF
from repro.models.ncl import NCL
from repro.models.ngcf import NGCF
from repro.models.niagcn import NIAGCN
from repro.models.sgl import SGL
from repro.models.simgcl import SimGCL
from repro.models.simplex import SimpleX
from repro.models.ultragcn import UltraGCN

__all__ = ["MODELS", "get_model", "model_names"]

MODELS: dict[str, type] = {
    "mf": MF,
    "cml": CML,
    "enmf": ENMF,
    "ngcf": NGCF,
    "lightgcn": LightGCN,
    "sgl": SGL,
    "simgcl": SimGCL,
    "lightgcl": LightGCL,
    "lr-gccf": LRGCCF,
    "nia-gcn": NIAGCN,
    "ultragcn": UltraGCN,
    "simplex": SimpleX,
    "ncl": NCL,
    "dgcf": DGCF,
}

_GRAPH_MODELS = {"ngcf", "lightgcn", "sgl", "simgcl", "lightgcl", "enmf",
                 "lr-gccf", "nia-gcn", "ultragcn", "simplex", "ncl",
                 "dgcf"}


def model_names() -> list[str]:
    return sorted(MODELS)


def get_model(name: str, dataset: InteractionDataset, dim: int = 64,
              rng=None, **kwargs) -> Recommender:
    """Instantiate a backbone by name against a dataset.

    >>> model = get_model("lightgcn", dataset, dim=32, num_layers=2)
    """
    key = name.lower()
    if key not in MODELS:
        raise KeyError(f"unknown model {name!r}; available: {model_names()}")
    cls = MODELS[key]
    if key in _GRAPH_MODELS:
        return cls(dataset, dim=dim, rng=rng, **kwargs)
    return cls(dataset.num_users, dataset.num_items, dim=dim, rng=rng,
               **kwargs)
