"""LR-GCCF backbone (Chen et al., AAAI 2020).

"Revisiting graph based collaborative filtering": removes non-linear
activations from GCN propagation and uses a linear *residual*
structure — the final representation concatenates every layer's
output, which alleviates over-smoothing at depth.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.graph.adjacency import bipartite_adjacency
from repro.graph.propagation import spmm
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.tensor import Tensor, ops
from repro.tensor.random import spawn_rngs

__all__ = ["LRGCCF"]


class LRGCCF(Recommender):
    """Linear residual graph CF: concat of linearly propagated layers."""

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, rng=None):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="inner")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers
        user_rng, item_rng = spawn_rngs(rng, 2)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=user_rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=item_rng)
        self._adjacency: sp.csr_matrix = bipartite_adjacency(dataset)

    def propagate(self) -> tuple[Tensor, Tensor]:
        ego = ops.concatenate(
            [self.user_embedding.all(), self.item_embedding.all()], axis=0)
        layers = [ego]
        current = ego
        for _ in range(self.num_layers):
            current = spmm(self._adjacency, current)
            layers.append(current)
        # Residual structure: concatenation instead of averaging keeps
        # each depth's signal intact (the LR-GCCF fix for oversmoothing).
        final = ops.concatenate(layers, axis=1)
        return final[: self.num_users], final[self.num_users:]
