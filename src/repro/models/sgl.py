"""SGL backbone (Wu et al., SIGIR 2021).

Self-supervised Graph Learning = LightGCN + an InfoNCE branch between
two edge-dropout views of the interaction graph.  Views are resampled
at the start of every epoch, matching the original training protocol.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.sampling import TrainingBatch
from repro.graph.perturb import edge_dropout_adjacency
from repro.losses.contrastive import InfoNCELoss
from repro.models.lightgcn import LightGCN
from repro.tensor import Tensor, ops
from repro.tensor.random import ensure_rng

__all__ = ["SGL"]


class SGL(LightGCN):
    """LightGCN with an edge-dropout contrastive auxiliary task.

    Parameters
    ----------
    ssl_weight:
        Coefficient λ of the InfoNCE branch.
    ssl_tau:
        InfoNCE temperature.
    drop_ratio:
        Edge-dropout probability for each view.
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, ssl_weight: float = 0.1,
                 ssl_tau: float = 0.2, drop_ratio: float = 0.1, rng=None):
        super().__init__(dataset, dim=dim, num_layers=num_layers, rng=rng)
        if ssl_weight < 0:
            raise ValueError("ssl_weight must be non-negative")
        self._dataset = dataset
        self.ssl_weight = ssl_weight
        self.drop_ratio = drop_ratio
        self._infonce = InfoNCELoss(tau=ssl_tau)
        self._view_rng = ensure_rng(rng)
        self._view_adjacency = None
        self.on_epoch_start(self._view_rng)

    def on_epoch_start(self, rng) -> None:
        """Resample the two edge-dropped graph views."""
        rng = ensure_rng(rng)
        self._view_adjacency = (
            edge_dropout_adjacency(self._dataset, self.drop_ratio, rng),
            edge_dropout_adjacency(self._dataset, self.drop_ratio, rng))
        # The old views' memoized products can never hit again (fresh
        # matrix objects); drop them eagerly rather than waiting for the
        # next data-version purge.
        self.invalidate_propagation_cache()

    def auxiliary_loss(self, batch: TrainingBatch) -> Tensor | None:
        if self.ssl_weight == 0:
            return None
        adj1, adj2 = self._view_adjacency
        u1, i1 = self._propagate_on(adj1)
        u2, i2 = self._propagate_on(adj2)
        users = np.unique(batch.users)
        items = np.unique(batch.positives)
        user_ssl = self._infonce(ops.take_rows(u1, users),
                                 ops.take_rows(u2, users))
        item_ssl = self._infonce(ops.take_rows(i1, items),
                                 ops.take_rows(i2, items))
        return self.ssl_weight * (user_ssl + item_ssl)
