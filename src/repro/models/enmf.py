"""ENMF-style whole-data baseline (Chen et al., TOIS 2020).

Efficient Neural Matrix Factorization trains *without sampling*: every
unobserved (user, item) cell contributes a down-weighted squared error.
We implement the whole-data weighted regression objective per batch of
users, which is exactly ENMF's loss restricted to the batch (our
catalogues are small enough to score all items densely).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.sampling import TrainingBatch
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.tensor import Tensor, ops
from repro.tensor import functional as F
from repro.tensor.random import spawn_rngs

__all__ = ["ENMF"]


class ENMF(Recommender):
    """Whole-data weighted MSE matrix factorization (Table II baseline).

    Parameters
    ----------
    negative_weight:
        Uniform confidence weight ``c0`` on unobserved cells (ENMF's
        key hyperparameter, typically well below 1).
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 negative_weight: float = 0.05, rng=None):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="cosine")
        if not 0 < negative_weight <= 1:
            raise ValueError("negative_weight must lie in (0, 1]")
        self.negative_weight = negative_weight
        self._dataset = dataset
        user_rng, item_rng = spawn_rngs(rng, 2)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=user_rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=item_rng)
        self._positive_mask = dataset.train_matrix().toarray()

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self.user_embedding.all(), self.item_embedding.all()

    def custom_loss(self, batch: TrainingBatch) -> Tensor:
        """Whole-data loss over the batch's (unique) users.

        ``L = Σ_u [ Σ_{i∈S+} ((f-1)^2 - c0 f^2) + c0 Σ_{all i} f^2 ]``

        which is the standard ENMF decomposition of the weighted
        regression over observed + unobserved cells.
        """
        users = np.unique(batch.users)
        users_t, items_t = self.propagate()
        u = F.l2_normalize(ops.take_rows(users_t, users), axis=1)
        i = F.l2_normalize(items_t, axis=1)
        scores = F.pairwise_scores(u, i)               # (B, num_items)
        mask = Tensor(self._positive_mask[users])      # (B, num_items)
        pos_term = (mask * ((scores - 1.0) ** 2 - self.negative_weight
                            * scores ** 2)).sum()
        all_term = self.negative_weight * (scores ** 2).sum()
        return (pos_term + all_term) / len(users)
