"""LightGCL backbone (Cai et al., ICLR 2023).

Replaces stochastic graph augmentation with a *global* low-rank view:
embeddings are propagated through an SVD reconstruction of the
interaction matrix and contrasted against the local LightGCN view.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.sampling import TrainingBatch
from repro.graph.perturb import svd_view
from repro.losses.contrastive import InfoNCELoss
from repro.models.lightgcn import LightGCN
from repro.tensor import Tensor, ops

__all__ = ["LightGCL"]


class LightGCL(LightGCN):
    """LightGCN with an SVD-view contrastive auxiliary task.

    Parameters
    ----------
    svd_rank:
        Rank of the SVD view (the paper uses small ranks, e.g. 5).
    ssl_weight, ssl_tau:
        InfoNCE branch coefficient and temperature.
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, svd_rank: int = 8,
                 ssl_weight: float = 0.1, ssl_tau: float = 0.2, rng=None):
        super().__init__(dataset, dim=dim, num_layers=num_layers, rng=rng)
        self.ssl_weight = ssl_weight
        self._infonce = InfoNCELoss(tau=ssl_tau)
        # The SVD factors are fixed model-lifetime constants.
        self._svd_u, self._svd_v = svd_view(dataset, rank=svd_rank)

    def _svd_propagate(self) -> tuple[Tensor, Tensor]:
        """Propagate embeddings through the low-rank reconstruction.

        User view: ``U_s (V_s^T E_item)``; item view: ``V_s (U_s^T E_user)``.
        """
        user_table = self.user_embedding.all()
        item_table = self.item_embedding.all()
        svd_u = Tensor(self._svd_u)
        svd_v = Tensor(self._svd_v)
        users = ops.matmul(svd_u, ops.matmul(svd_v.T, item_table))
        items = ops.matmul(svd_v, ops.matmul(svd_u.T, user_table))
        return users, items

    def auxiliary_loss(self, batch: TrainingBatch) -> Tensor | None:
        if self.ssl_weight == 0:
            return None
        u_main, i_main = self.propagate()
        u_svd, i_svd = self._svd_propagate()
        users = np.unique(batch.users)
        items = np.unique(batch.positives)
        user_ssl = self._infonce(ops.take_rows(u_main, users),
                                 ops.take_rows(u_svd, users))
        item_ssl = self._infonce(ops.take_rows(i_main, items),
                                 ops.take_rows(i_svd, items))
        return self.ssl_weight * (user_ssl + item_ssl)
