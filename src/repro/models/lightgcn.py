"""LightGCN backbone (He et al., SIGIR 2020).

Linear propagation over the normalized bipartite graph with a mean of
all layer outputs:

``E^(l+1) = Ã E^(l)``, ``E = mean(E^(0) ... E^(L))``.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.graph.adjacency import bipartite_adjacency
from repro.graph.propagation import spmm
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.tensor import Tensor, ops
from repro.tensor.random import spawn_rngs

__all__ = ["LightGCN"]


class LightGCN(Recommender):
    """Simplified GCN: no transforms, no nonlinearity, layer averaging.

    Parameters
    ----------
    dataset:
        Training interactions; the propagation graph is built from its
        train split.
    num_layers:
        Propagation depth ``L`` (the paper tunes {1, 2, 3}).
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, rng=None):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="inner")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers
        user_rng, item_rng = spawn_rngs(rng, 2)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=user_rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=item_rng)
        self._adjacency: sp.csr_matrix = bipartite_adjacency(dataset)

    # The adjacency is exposed so subclasses (SGL/SimGCL/LightGCL) can
    # propagate alternative views through the same machinery.
    @property
    def adjacency(self) -> sp.csr_matrix:
        return self._adjacency

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self._propagate_on(self._adjacency)

    def _propagate_on(self, adjacency: sp.csr_matrix,
                      noise_fn=None) -> tuple[Tensor, Tensor]:
        """Run L propagation steps on a given adjacency.

        ``noise_fn(layer_tensor) -> Tensor`` optionally perturbs each
        layer output (SimGCL's augmentation).
        """
        ego = ops.concatenate(
            [self.user_embedding.all(), self.item_embedding.all()], axis=0)
        layers = [ego]
        current = ego
        for _ in range(self.num_layers):
            current = spmm(adjacency, current)
            if noise_fn is not None:
                current = noise_fn(current)
            layers.append(current)
        stacked = ops.stack(layers, axis=0)
        final = stacked.mean(axis=0)
        return final[: self.num_users], final[self.num_users:]
