"""LightGCN backbone (He et al., SIGIR 2020).

Linear propagation over the normalized bipartite graph with a mean of
all layer outputs:

``E^(l+1) = Ã E^(l)``, ``E = mean(E^(0) ... E^(L))``.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.graph.adjacency import bipartite_adjacency
from repro.graph.propagation import PropagationCache, spmm
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.tensor import Tensor, ops
from repro.tensor.random import spawn_rngs
from repro.tensor.tensor import data_version, is_grad_enabled

__all__ = ["LightGCN"]


class LightGCN(Recommender):
    """Simplified GCN: no transforms, no nonlinearity, layer averaging.

    Parameters
    ----------
    dataset:
        Training interactions; the propagation graph is built from its
        train split.
    num_layers:
        Propagation depth ``L`` (the paper tunes {1, 2, 3}).
    cache_propagation:
        Memoize spmv products and full forward results per graph
        version (see :class:`repro.graph.propagation.PropagationCache`).
        Safe because every in-place parameter edit bumps the global
        data version; disable when mutating ``.data`` buffers outside
        the optimizer/checkpoint paths without bumping.
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_layers: int = 2, rng=None,
                 cache_propagation: bool = True):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="inner")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.num_layers = num_layers
        user_rng, item_rng = spawn_rngs(rng, 2)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=user_rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=item_rng)
        self._adjacency: sp.csr_matrix = bipartite_adjacency(dataset)
        self.cache_propagation = cache_propagation
        self._prop_cache = PropagationCache()
        self._ego_entry: tuple | None = None

    # The adjacency is exposed so subclasses (SGL/SimGCL/LightGCL) can
    # propagate alternative views through the same machinery.
    @property
    def adjacency(self) -> sp.csr_matrix:
        return self._adjacency

    @property
    def propagation_cache(self) -> PropagationCache:
        return self._prop_cache

    def invalidate_propagation_cache(self) -> None:
        """Drop all memoized propagation results (and the ego memo)."""
        self._prop_cache.clear()
        self._ego_entry = None

    def _ego(self) -> Tensor:
        """Concatenated (user ‖ item) table, memoized per data version.

        Returning the *same* tensor object across forward passes within
        one step is what lets the spmv cache key hops by identity.
        """
        token = (data_version(), is_grad_enabled())
        if not self.cache_propagation:
            return ops.concatenate(
                [self.user_embedding.all(), self.item_embedding.all()], axis=0)
        if self._ego_entry is None or self._ego_entry[0] != token:
            ego = ops.concatenate(
                [self.user_embedding.all(), self.item_embedding.all()], axis=0)
            self._ego_entry = (token, ego)
        return self._ego_entry[1]

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self._propagate_on(self._adjacency)

    def _spmm(self, adjacency: sp.csr_matrix, x: Tensor) -> Tensor:
        if self.cache_propagation:
            return self._prop_cache.spmm(adjacency, x)
        return spmm(adjacency, x)

    def _propagate_on(self, adjacency: sp.csr_matrix,
                      noise_fn=None) -> tuple[Tensor, Tensor]:
        """Run L propagation steps on a given adjacency.

        ``noise_fn(layer_tensor) -> Tensor`` optionally perturbs each
        layer output (SimGCL's augmentation).  Noise-free forwards are
        memoized whole per (adjacency, data version); noisy forwards
        still reuse any cached hop whose input is unperturbed (the
        first hop always starts from the shared ego tensor).
        """
        cacheable = noise_fn is None and self.cache_propagation
        if cacheable:
            memo = self._prop_cache.get("propagate", adjacency)
            if memo is not None:
                return memo
        final = self._propagate_layers(adjacency, noise_fn)
        result = final[: self.num_users], final[self.num_users:]
        if cacheable:
            self._prop_cache.put("propagate", adjacency, result)
        return result

    def _propagate_layers(self, adjacency: sp.csr_matrix,
                          noise_fn=None) -> Tensor:
        layers = self._layer_tensors(adjacency, noise_fn)
        stacked = ops.stack(layers, axis=0)
        return stacked.mean(axis=0)

    def _layer_tensors(self, adjacency: sp.csr_matrix,
                       noise_fn=None) -> list[Tensor]:
        """The ``[E^(0) ... E^(L)]`` chain (NCL consumes it directly)."""
        ego = self._ego()
        layers = [ego]
        current = ego
        for _ in range(self.num_layers):
            # A hop fed by a fresh noise-perturbed tensor can never hit
            # the cache again — compute it directly rather than insert
            # an entry that only pins its dead subgraph until the next
            # purge.  The first hop always starts from the shared ego
            # tensor and stays cacheable.
            if noise_fn is None or current is ego:
                current = self._spmm(adjacency, current)
            else:
                current = spmm(adjacency, current)
            if noise_fn is not None:
                current = noise_fn(current)
            layers.append(current)
        return layers
