"""DGCF backbone (Wang et al., SIGIR 2020), simplified.

Disentangled Graph Collaborative Filtering splits each embedding into
``K`` intent chunks and learns per-edge, per-intent routing weights so
different intents propagate over differently-weighted graphs.  We keep
the disentangling core but replace the iterative routing with a single
learned per-intent edge-affinity pass:

* embeddings are chunked into K intents;
* per intent, edge weights are the softmax (over intents) of the
  affinity between the chunk embeddings of the edge's endpoints,
  recomputed from the current embeddings each forward pass;
* each intent chunk propagates over its own re-weighted normalized
  adjacency; chunks are concatenated back.

This preserves DGCF's signature behaviour — intents specialize because
edges route to the intents whose chunks agree — in a compact form.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.graph.propagation import spmm
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.tensor import Tensor, no_grad, ops
from repro.tensor.random import spawn_rngs

__all__ = ["DGCF"]


class DGCF(Recommender):
    """Intent-disentangled propagation with affinity-based edge routing.

    Parameters
    ----------
    num_intents:
        Number of intent chunks ``K`` (must divide ``dim``).
    num_layers:
        Propagation depth per intent.
    """

    def __init__(self, dataset: InteractionDataset, dim: int = 64,
                 num_intents: int = 4, num_layers: int = 1, rng=None):
        super().__init__(dataset.num_users, dataset.num_items, dim,
                         train_scoring="cosine", test_scoring="inner")
        if dim % num_intents != 0:
            raise ValueError(f"dim ({dim}) must be divisible by "
                             f"num_intents ({num_intents})")
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.num_intents = num_intents
        self.num_layers = num_layers
        self.chunk = dim // num_intents
        user_rng, item_rng = spawn_rngs(rng, 2)
        self.user_embedding = Embedding(dataset.num_users, dim, rng=user_rng)
        self.item_embedding = Embedding(dataset.num_items, dim, rng=item_rng)
        pairs = dataset.train_pairs
        self._rows = pairs[:, 0]
        self._cols = pairs[:, 1] + dataset.num_users
        self._n = dataset.num_users + dataset.num_items

    def _intent_adjacencies(self, ego: np.ndarray) -> list[sp.csr_matrix]:
        """Per-intent normalized adjacency from chunk affinities.

        Routing weights are treated as constants w.r.t. the autograd
        graph (a detached routing pass), matching DGCF's practice of
        truncating gradients through the iterative routing.
        """
        k, c = self.num_intents, self.chunk
        chunks = ego.reshape(self._n, k, c)
        src = chunks[self._rows]                  # (E, K, c)
        dst = chunks[self._cols]
        affinity = np.einsum("ekc,ekc->ek", src, dst)  # (E, K)
        affinity = affinity - affinity.max(axis=1, keepdims=True)
        routing = np.exp(affinity)
        routing /= routing.sum(axis=1, keepdims=True)

        adjacencies = []
        for intent in range(k):
            w = routing[:, intent]
            data = np.concatenate([w, w])
            rows = np.concatenate([self._rows, self._cols])
            cols = np.concatenate([self._cols, self._rows])
            adj = sp.csr_matrix((data, (rows, cols)),
                                shape=(self._n, self._n))
            degree = np.asarray(adj.sum(axis=1)).ravel()
            with np.errstate(divide="ignore"):
                inv = np.power(degree, -0.5)
            inv[~np.isfinite(inv)] = 0.0
            d = sp.diags(inv)
            adjacencies.append((d @ adj @ d).tocsr())
        return adjacencies

    def propagate(self) -> tuple[Tensor, Tensor]:
        ego = ops.concatenate(
            [self.user_embedding.all(), self.item_embedding.all()], axis=0)
        adjacencies = self._intent_adjacencies(ego.data)
        intent_outputs = []
        for intent, adj in enumerate(adjacencies):
            lo, hi = intent * self.chunk, (intent + 1) * self.chunk
            chunk = ego[:, lo:hi]
            layers = [chunk]
            current = chunk
            for _ in range(self.num_layers):
                current = spmm(adj, current)
                layers.append(current)
            intent_outputs.append(ops.stack(layers, axis=0).mean(axis=0))
        final = ops.concatenate(intent_outputs, axis=1)
        return final[: self.num_users], final[self.num_users:]

    def intent_routing_entropy(self) -> float:
        """Mean routing entropy over edges (diagnostic: lower = more
        disentangled).  Uses the current embeddings, no grad."""
        with no_grad():
            users_t = self.user_embedding.all()
            items_t = self.item_embedding.all()
            ego = np.concatenate([users_t.data, items_t.data], axis=0)
        chunks = ego.reshape(self._n, self.num_intents, self.chunk)
        affinity = np.einsum("ekc,ekc->ek", chunks[self._rows],
                             chunks[self._cols])
        affinity -= affinity.max(axis=1, keepdims=True)
        routing = np.exp(affinity)
        routing /= routing.sum(axis=1, keepdims=True)
        entropy = -(routing * np.log(routing + 1e-12)).sum(axis=1)
        return float(entropy.mean())
