"""Worst-case distributions of the KL-DRO problem (Lemma 1, Fig. 4b).

For the inner maximization ``max_{P: KL(P||P0) ≤ η} E_P[f]`` the optimal
(worst-case) distribution is the exponential tilt

``P*(j) ∝ P0(j) · exp(f(j)/τ)``

where ``τ`` is the optimal Lagrange multiplier — i.e. SL's softmax
weights over negatives *are* the worst-case sampling probabilities.
These helpers compute the tilt, its KL radius, and the DRO objective
value, powering the Fig. 4b weight-vs-score study and the Lemma 1
identity tests.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp as _logsumexp

__all__ = ["worst_case_weights", "kl_divergence", "tilted_radius",
           "dro_objective", "dro_objective_exact"]


def worst_case_weights(scores: np.ndarray, tau: float,
                       base_probs: np.ndarray | None = None) -> np.ndarray:
    """Exponentially tilted distribution ``P*(j) ∝ P0(j) exp(f_j/τ)``.

    Parameters
    ----------
    scores:
        Negative-item scores ``f(u, j)`` (1-D).
    tau:
        Temperature / Lagrange multiplier.
    base_probs:
        Nominal distribution ``P0``; uniform when omitted.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    if base_probs is None:
        log_base = -np.log(len(scores)) * np.ones_like(scores)
    else:
        base_probs = np.asarray(base_probs, dtype=np.float64)
        if base_probs.shape != scores.shape:
            raise ValueError("base_probs must match scores shape")
        with np.errstate(divide="ignore"):
            log_base = np.log(base_probs)
    logits = log_base + scores / tau
    logits -= _logsumexp(logits)
    return np.exp(logits)


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``KL(p || q)`` for discrete distributions (0 log 0 := 0)."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    mask = p > 0
    if np.any(q[mask] <= 0):
        return float("inf")
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def tilted_radius(scores: np.ndarray, tau: float,
                  base_probs: np.ndarray | None = None) -> float:
    """KL distance of the worst-case tilt from the nominal distribution.

    This is the *effective robustness radius* η implied by a temperature
    τ at the current scores — the quantity Fig. 3b tracks as noise grows.
    """
    p_star = worst_case_weights(scores, tau, base_probs)
    if base_probs is None:
        base_probs = np.full_like(p_star, 1.0 / len(p_star))
    return kl_divergence(p_star, base_probs)


def dro_objective(scores: np.ndarray, tau: float,
                  base_probs: np.ndarray | None = None) -> float:
    """SL's negative part ``τ · log E_P0[exp(f/τ)]`` (Eq. 5)."""
    scores = np.asarray(scores, dtype=np.float64)
    if base_probs is None:
        return float(tau * (_logsumexp(scores / tau) - np.log(len(scores))))
    base_probs = np.asarray(base_probs, dtype=np.float64)
    return float(tau * _logsumexp(scores / tau, b=base_probs))


def dro_objective_exact(scores: np.ndarray, eta: float,
                        base_probs: np.ndarray | None = None,
                        tol: float = 1e-10) -> tuple[float, float]:
    """Solve ``max_{KL(P||P0) ≤ η} E_P[f]`` exactly by bisection on τ.

    Returns ``(objective_value, tau_star)``.  Used by the Lemma 1 tests:
    the value must equal ``τ*·log E[exp(f/τ*)] + τ*·η`` and the argmax
    must be the exponential tilt at τ*.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if eta < 0:
        raise ValueError("eta must be non-negative")
    if base_probs is None:
        base_probs = np.full(len(scores), 1.0 / len(scores))
    if eta == 0:
        return float(np.dot(base_probs, scores)), float("inf")
    # The tilt radius is monotonically decreasing in tau; bisect for
    # radius(tau) == eta.  Guard the degenerate constant-score case.
    if np.allclose(scores, scores[0]):
        return float(scores[0]), float("inf")

    max_radius = kl_divergence(
        _argmax_distribution(scores, base_probs), base_probs)
    if not np.isfinite(max_radius) or eta >= max_radius:
        # Radius large enough to put all mass on the max score.
        return float(scores.max()), 0.0

    lo, hi = 1e-8, 1e8
    for _ in range(200):
        mid = np.sqrt(lo * hi)  # log-scale bisection
        radius = kl_divergence(worst_case_weights(scores, mid, base_probs),
                               base_probs)
        if radius > eta:
            lo = mid
        else:
            hi = mid
        if hi / lo < 1 + tol:
            break
    tau_star = np.sqrt(lo * hi)
    p_star = worst_case_weights(scores, tau_star, base_probs)
    return float(np.dot(p_star, scores)), float(tau_star)


def _argmax_distribution(scores: np.ndarray,
                         base_probs: np.ndarray) -> np.ndarray:
    mask = scores == scores.max()
    p = base_probs * mask
    return p / p.sum()
