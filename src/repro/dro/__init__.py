"""DRO analysis tools: worst-case tilts, robustness radius, Lemma 2."""

from repro.dro.worstcase import (worst_case_weights, kl_divergence,
                                 tilted_radius, dro_objective,
                                 dro_objective_exact)
from repro.dro.radius import (optimal_tau, implied_eta, score_variance,
                              eta_distribution)
from repro.dro.taylor import (log_expectation_exp, taylor_approximation,
                              approximation_error, variance_penalty)
from repro.dro.variance import (VarianceAblatedSoftmaxLoss,
                                MeanVarianceSoftmaxLoss)

__all__ = [
    "worst_case_weights", "kl_divergence", "tilted_radius", "dro_objective",
    "dro_objective_exact", "optimal_tau", "implied_eta", "score_variance",
    "eta_distribution", "log_expectation_exp", "taylor_approximation",
    "approximation_error", "variance_penalty", "VarianceAblatedSoftmaxLoss",
    "MeanVarianceSoftmaxLoss",
]
