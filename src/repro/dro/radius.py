"""Robustness radius and optimal temperature (Corollary III.1, Fig. 3b).

The paper relates the temperature and the robustness radius through

``τ* ≈ sqrt( V[f(u,j)] / (2η) )``   (Eq. 16)

equivalently ``η ≈ V[f] / (2 τ²)``.  These helpers convert between the
two and estimate them from model scores, powering the Fig. 3b study
("η rises with the noise level at the grid-searched best τ").
"""

from __future__ import annotations

import numpy as np

__all__ = ["optimal_tau", "implied_eta", "score_variance",
           "eta_distribution"]


def score_variance(scores: np.ndarray, axis=None) -> np.ndarray:
    """Population variance of negative scores ``V[f(u, j)]``."""
    return np.asarray(scores, dtype=np.float64).var(axis=axis)


def optimal_tau(variance: float, eta: float) -> float:
    """Eq. (16): ``τ* = sqrt(V / (2η))``."""
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    if variance < 0:
        raise ValueError("variance must be non-negative")
    return float(np.sqrt(variance / (2.0 * eta)))


def implied_eta(variance: float, tau: float) -> float:
    """Invert Eq. (16): ``η = V / (2 τ²)``."""
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    return float(variance / (2.0 * tau ** 2))


def eta_distribution(neg_scores: np.ndarray, tau: float) -> np.ndarray:
    """Per-user implied η values from a matrix of negative scores.

    Parameters
    ----------
    neg_scores:
        Shape ``(n_users, n_negatives)`` — one row of sampled negative
        scores per user.
    tau:
        The (grid-searched) temperature in use.

    Returns
    -------
    Shape ``(n_users,)`` array of η estimates, the quantity whose
    distribution Fig. 3b plots across noise levels.
    """
    neg_scores = np.asarray(neg_scores, dtype=np.float64)
    if neg_scores.ndim != 2:
        raise ValueError(f"neg_scores must be 2-D, got {neg_scores.shape}")
    variances = neg_scores.var(axis=1)
    return variances / (2.0 * tau ** 2)
