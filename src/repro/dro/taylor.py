"""Second-order expansion of the Log-Expectation-Exp structure (Lemma 2).

Lemma 2 approximates SL's negative part for large τ:

``τ·log E[exp(f/τ)] ≈ E[f] + V[f] / (2τ)``

revealing the implicit *variance penalty* that drives SL's fairness
(Fig. 4a/5).  This module provides both sides of the identity plus the
approximation error, which the property tests drive to zero as τ grows.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp as _logsumexp

__all__ = ["log_expectation_exp", "taylor_approximation",
           "approximation_error", "variance_penalty"]


def log_expectation_exp(scores: np.ndarray, tau: float) -> float:
    """Exact ``τ · log E[exp(f/τ)]`` under the uniform distribution."""
    scores = np.asarray(scores, dtype=np.float64)
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    return float(tau * (_logsumexp(scores / tau) - np.log(scores.size)))


def variance_penalty(scores: np.ndarray, tau: float) -> float:
    """The Lemma 2 regularizer ``V[f] / (2τ)``."""
    scores = np.asarray(scores, dtype=np.float64)
    return float(scores.var() / (2.0 * tau))


def taylor_approximation(scores: np.ndarray, tau: float) -> float:
    """Second-order approximation ``E[f] + V[f]/(2τ)`` of Eq. (13)."""
    scores = np.asarray(scores, dtype=np.float64)
    return float(scores.mean() + variance_penalty(scores, tau))


def approximation_error(scores: np.ndarray, tau: float) -> float:
    """Absolute gap between the exact value and the expansion.

    Lemma 2's ``o(1/τ)`` remainder: must vanish faster than ``1/τ`` as
    ``τ → ∞`` (verified by the dro property tests).
    """
    return abs(log_expectation_exp(scores, tau)
               - taylor_approximation(scores, tau))
