"""Variance-ablated softmax loss (Fig. 5's 'w/o variance' arm).

Lemma 2 decomposes SL's negative part as ``E[f] + V[f]/(2τ) + o(1/τ)``.
The ablation removes the variance penalty, leaving a mean-only negative
part; comparing the two isolates the fairness contribution of the
variance regularizer.
"""

from __future__ import annotations

from repro.losses.base import Loss
from repro.tensor import Tensor
from repro.tensor import functional as F

__all__ = ["VarianceAblatedSoftmaxLoss", "MeanVarianceSoftmaxLoss"]


class VarianceAblatedSoftmaxLoss(Loss):
    """SL with the variance term removed (``w/o variance``).

    Uses the Lemma 2 surrogate directly: the negative part is the plain
    mean of negative scores scaled by 1/τ, i.e. the expansion of SL with
    the ``V[f]/(2τ)`` term deleted.
    """

    name = "sl-novar"

    def __init__(self, tau: float = 0.1):
        if tau <= 0:
            raise ValueError(f"temperature must be positive, got {tau}")
        self.tau = tau

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        row_loss = (-pos + neg.mean(axis=1)) / self.tau
        return row_loss.mean()


class MeanVarianceSoftmaxLoss(Loss):
    """The Lemma 2 surrogate *with* the variance term (``w/ variance``).

    ``L = (-pos + E[neg] + V[neg]/(2τ)) / τ`` — the second-order
    approximation of SL.  Training with this surrogate should recover
    SL's fairness profile, which is exactly Fig. 5's comparison.
    """

    name = "sl-meanvar"

    def __init__(self, tau: float = 0.1):
        if tau <= 0:
            raise ValueError(f"temperature must be positive, got {tau}")
        self.tau = tau

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        neg_mean = neg.mean(axis=1)
        neg_var = F.variance(neg, axis=1)
        row_loss = (-pos + neg_mean + neg_var / (2.0 * self.tau)) / self.tau
        return row_loss.mean()
