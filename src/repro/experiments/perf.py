"""Fast-path performance harness.

Times the two hot loops of the reproduction — the training step
(forward + backward + Adam) and full-ranking evaluation — per
(model, loss) cell, for both the fused/cached fast path and the
compositional/uncached reference path, and emits the results as
``BENCH_fastpath.json`` in a stable schema so the perf trajectory of
the codebase is tracked across PRs.

Programmatic entry points:

* :func:`time_train_steps` — ms/step for one (model, loss) cell.
* :func:`time_eval` — users/s for one model's full-ranking pass.
* :func:`run_perf_suite` — the whole grid; returns the JSON payload.

CLI: ``python -m repro.cli perf`` (or ``python benchmarks/perf.py``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.data.synthetic import load_dataset
from repro.eval.evaluator import Evaluator
from repro.losses.registry import get_loss
from repro.models.registry import get_model
from repro.tensor.tensor import bump_data_version
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

__all__ = ["SCHEMA", "PerfConfig", "time_train_steps", "time_eval",
           "run_perf_suite", "write_report"]

#: Bump the suffix when the payload layout changes incompatibly.
SCHEMA = "bsl-fastpath-bench/v1"


@dataclass
class PerfConfig:
    """Knobs for one harness run (defaults match the paper's scales)."""

    dataset: str = "yelp2018-small"
    models: tuple = ("mf", "lightgcn", "simgcl")
    losses: tuple = ("sl", "bsl")
    dim: int = 64
    steps: int = 15
    warmup: int = 3
    batch_size: int = 1024
    n_negatives: int = 128
    eval_repeats: int = 3
    #: also time the compositional/uncached reference path per cell
    include_reference: bool = True
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


def _loss_with_fused(loss_name: str, fused: bool):
    loss = get_loss(loss_name)
    if hasattr(loss, "fused"):
        loss.fused = fused
    return loss


def time_train_steps(model_name: str, loss_name: str, dataset,
                     *, fused: bool = True, cache_propagation: bool = True,
                     steps: int = 15, warmup: int = 3, dim: int = 64,
                     batch_size: int = 1024, n_negatives: int = 128,
                     seed: int = 0) -> dict:
    """Wall-clock one (model, loss) training cell for ``steps`` steps.

    Returns a result row of the ``train_step`` kind (see module
    docstring for the schema).
    """
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    model = get_model(model_name, dataset, dim=dim, rng=seed)
    if hasattr(model, "cache_propagation"):
        model.cache_propagation = cache_propagation
    loss = _loss_with_fused(loss_name, fused)
    config = TrainConfig(epochs=1, batch_size=batch_size,
                         n_negatives=n_negatives, eval_every=0, patience=0,
                         seed=seed)
    trainer = Trainer(model, loss, dataset, config, evaluator=None)

    def run_steps(n: int) -> None:
        done = 0
        while done < n:
            model.on_epoch_start(trainer.epoch_rng)
            for batch in trainer.sampler.epoch():
                trainer.train_step(batch)
                done += 1
                if done >= n:
                    return

    run_steps(warmup)
    start = time.perf_counter()
    run_steps(steps)
    elapsed = time.perf_counter() - start
    return {
        "kind": "train_step",
        "model": model_name,
        "loss": loss_name,
        "fused": bool(fused),
        "cache_propagation": bool(cache_propagation),
        "steps": steps,
        "batch_size": batch_size,
        "n_negatives": n_negatives,
        "total_s": elapsed,
        "ms_per_step": 1e3 * elapsed / steps,
        "steps_per_s": steps / elapsed if elapsed > 0 else float("inf"),
    }


def time_eval(model_name: str, dataset, *, chunked: bool = True,
              repeats: int = 3, dim: int = 64, ks=(20,),
              seed: int = 0) -> dict:
    """Wall-clock full-ranking evaluation throughput for one model.

    The data version is bumped before every timed pass so graph models
    re-run propagation each time, matching real training where periodic
    evaluation always follows optimizer steps — otherwise the
    propagation memo would hide the forward cost entirely.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    model = get_model(model_name, dataset, dim=dim, rng=seed)
    evaluator = Evaluator(dataset, ks=ks, chunked=chunked)
    evaluator.evaluate(model)  # warmup (builds caches, touches pages)
    start = time.perf_counter()
    for _ in range(repeats):
        bump_data_version()
        evaluator.evaluate(model)
    elapsed = time.perf_counter() - start
    users = len(evaluator._test_users)
    return {
        "kind": "eval",
        "model": model_name,
        "chunked": bool(chunked),
        "repeats": repeats,
        "users": users,
        "total_s": elapsed,
        "ms_per_pass": 1e3 * elapsed / repeats,
        "users_per_s": users * repeats / elapsed if elapsed > 0
        else float("inf"),
    }


def run_perf_suite(config: PerfConfig | None = None) -> dict:
    """Run the full grid and return the ``BENCH_fastpath.json`` payload."""
    config = config or PerfConfig()
    dataset = load_dataset(config.dataset)
    results = []
    for model_name in config.models:
        for loss_name in config.losses:
            results.append(time_train_steps(
                model_name, loss_name, dataset, fused=True,
                cache_propagation=True, steps=config.steps,
                warmup=config.warmup, dim=config.dim,
                batch_size=config.batch_size,
                n_negatives=config.n_negatives, seed=config.seed))
            if config.include_reference:
                results.append(time_train_steps(
                    model_name, loss_name, dataset, fused=False,
                    cache_propagation=False, steps=config.steps,
                    warmup=config.warmup, dim=config.dim,
                    batch_size=config.batch_size,
                    n_negatives=config.n_negatives, seed=config.seed))
        results.append(time_eval(model_name, dataset, chunked=True,
                                 repeats=config.eval_repeats, dim=config.dim,
                                 seed=config.seed))
        if config.include_reference:
            results.append(time_eval(model_name, dataset, chunked=False,
                                     repeats=config.eval_repeats,
                                     dim=config.dim, seed=config.seed))
    payload = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "config": {
            "models": list(config.models),
            "losses": list(config.losses),
            "dim": config.dim,
            "steps": config.steps,
            "warmup": config.warmup,
            "batch_size": config.batch_size,
            "n_negatives": config.n_negatives,
            "eval_repeats": config.eval_repeats,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }
    return payload


def write_report(payload: dict, path) -> None:
    """Persist a payload produced by :func:`run_perf_suite`."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def summarize(payload: dict) -> str:
    """Human-readable fast-vs-reference table for one payload."""
    lines = [f"perf suite on {payload['dataset']} "
             f"(schema {payload['schema']})"]
    rows = payload["results"]
    train = [r for r in rows if r["kind"] == "train_step"]
    for fast in [r for r in train if r["fused"]]:
        ref = next((r for r in train
                    if not r["fused"] and r["model"] == fast["model"]
                    and r["loss"] == fast["loss"]), None)
        gain = (f"  ({ref['ms_per_step'] / fast['ms_per_step']:.2f}x vs "
                f"reference)") if ref else ""
        lines.append(f"  train {fast['model']}+{fast['loss']}: "
                     f"{fast['ms_per_step']:.2f} ms/step{gain}")
    evals = [r for r in rows if r["kind"] == "eval"]
    for fast in [r for r in evals if r["chunked"]]:
        ref = next((r for r in evals
                    if not r["chunked"] and r["model"] == fast["model"]),
                   None)
        gain = (f"  ({fast['users_per_s'] / ref['users_per_s']:.2f}x vs "
                f"reference)") if ref else ""
        lines.append(f"  eval  {fast['model']}: "
                     f"{fast['users_per_s']:.0f} users/s{gain}")
    return "\n".join(lines)
