"""Fast-path and serving performance harnesses.

Times the hot loops of the reproduction and emits results in stable
JSON schemas so the perf trajectory of the codebase is tracked across
PRs:

* the **fast-path suite** times the training step (forward + backward +
  Adam) and full-ranking evaluation per (model, loss) cell, for both
  the fused/cached fast path and the compositional/uncached reference
  path → ``BENCH_fastpath.json``;
* the **train suite** sweeps catalogue size × loss × grad mode and
  times the training step for the dense full-catalogue path vs the
  row-sparse path (sampled scoring + ``SparseAdam``), plus an
  end-to-end NDCG@20 quality comparison per grad mode →
  ``BENCH_train.json``;
* the **serve suite** trains one cell, exports a serving snapshot
  (:mod:`repro.serve`) and times batched top-K recommendation
  throughput — exact vs int8-quantized index, cold vs warm result
  cache, across request batch sizes — plus the quantized index's
  top-K overlap with the exact path, plus a **sharded section**
  sweeping shard counts × batch sizes through the scatter-gather
  router with merge-overhead and per-shard-memory columns →
  ``BENCH_serve.json``;
* the **ANN suite** trains a retrieval-oriented cell, builds IVF
  indexes (:mod:`repro.ann`) across ``nlist`` values and sweeps
  ``nprobe``, recording the recall/throughput frontier against the
  exact index — recall@k via :func:`repro.eval.metrics.overlap_at_k`,
  throughput as **index-level** ``topk`` users/s over the same request
  stream for both sides (no service cache in either lane) →
  ``BENCH_ann.json``;
* the **latency suite** trains one cell, exports it and drives the
  async :class:`~repro.serve.runtime.ServingRuntime` with a paced
  open-loop load generator, sweeping offered QPS multiplicatively
  until saturation (throughput collapse or admission shedding) →
  the p50/p99-vs-offered-load frontier of ``BENCH_latency.json``;
* the **refresh suite** trains one cell, exports it, then sweeps
  catalogue churn fractions: each level builds a delta
  (:mod:`repro.serve.delta`), times in-memory delta replay,
  incremental IVF maintenance vs a from-scratch rebuild, and the
  atomic snapshot swap under live runtime traffic →
  ``BENCH_refresh.json``.

Programmatic entry points:

* :func:`time_train_steps` — ms/step for one (model, loss) cell.
* :func:`time_eval` — users/s for one model's full-ranking pass.
* :func:`run_perf_suite` — the fast-path grid; returns the JSON payload.
* :func:`run_train_suite` — the dense-vs-sparse training frontier.
* :func:`time_recommend` — users/s through a recommendation service.
* :func:`time_recommend_sharded` — same, through the sharded router,
  with scatter/score/merge decomposition.
* :func:`run_serve_suite` — the serving grid; returns the JSON payload.
* :func:`time_index_topk` — index-level users/s for any top-K index.
* :func:`run_ann_suite` — the ANN frontier; returns the JSON payload.
* :func:`run_latency_level` — one offered-QPS level through a runtime.
* :func:`run_latency_suite` — the latency frontier; returns the payload.
* :func:`run_refresh_suite` — the live-refresh churn sweep; returns the
  payload.

CLI: ``python -m repro.cli perf`` / ``python -m repro.cli perf-train`` /
``python -m repro.cli perf-serve`` / ``python -m repro.cli perf-latency``
(``--ann`` adds the ANN frontier;
``make bench-train`` / ``make bench-ann`` / ``make bench-latency``) — or
``python benchmarks/perf.py`` / ``python benchmarks/train_perf.py`` /
``python benchmarks/serve_perf.py``.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import load_dataset
from repro.eval.evaluator import Evaluator
from repro.eval.metrics import overlap_at_k
from repro.losses.registry import get_loss
from repro.models.registry import get_model
from repro.tensor.tensor import bump_data_version
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

__all__ = ["SCHEMA", "SERVE_SCHEMA", "ANN_SCHEMA", "TRAIN_SCHEMA",
           "LATENCY_SCHEMA", "REFRESH_SCHEMA", "OBS_SCHEMA",
           "CLOCK_RESOLUTION_S", "clamp_elapsed",
           "PerfConfig", "ServePerfConfig", "AnnPerfConfig",
           "TrainPerfConfig", "LatencyPerfConfig", "RefreshPerfConfig",
           "ObsPerfConfig", "inflate_catalogue",
           "time_train_steps", "time_eval", "run_perf_suite",
           "run_train_suite", "time_recommend", "time_recommend_sharded",
           "topk_overlap", "run_serve_suite", "time_index_topk",
           "run_latency_level", "run_latency_suite", "run_refresh_suite",
           "run_ann_suite", "run_obs_suite", "write_report", "summarize",
           "summarize_serve", "summarize_ann", "summarize_train",
           "summarize_latency", "summarize_refresh", "summarize_obs"]

#: Bump the suffix when the payload layout changes incompatibly.
SCHEMA = "bsl-fastpath-bench/v1"

#: Schema of the serving-throughput payload (``BENCH_serve.json``).
#: v2 added the sharded scatter-gather section (``serve_sharded`` rows).
SERVE_SCHEMA = "bsl-serve-bench/v2"

#: Schema of the ANN recall/throughput frontier (``BENCH_ann.json``).
ANN_SCHEMA = "bsl-ann-bench/v1"

#: Schema of the latency-vs-offered-load frontier (``BENCH_latency.json``).
LATENCY_SCHEMA = "bsl-latency-bench/v1"

#: Schema of the live-refresh churn sweep (``BENCH_refresh.json``).
REFRESH_SCHEMA = "bsl-refresh-bench/v1"

#: One tick of the monotonic clock — the shortest wall-clock interval
#: ``time.perf_counter()`` can resolve (floored at 1 ns for platforms
#: that report 0).
CLOCK_RESOLUTION_S = max(time.get_clock_info("perf_counter").resolution,
                         1e-9)


def clamp_elapsed(elapsed: float) -> float:
    """Clamp a timed interval to the monotonic clock's resolution.

    Two back-to-back ``perf_counter()`` reads can legally return the
    same value, and every ``x / elapsed`` throughput column would then
    emit ``float("inf")`` — which ``scripts/check_bench.py`` itself
    rejects as non-finite, so a fast machine on a tiny dataset would
    fail its own validator.  Flooring at one clock tick keeps every
    derived rate finite (and *understates* speed, never overstates it).
    """
    return max(elapsed, CLOCK_RESOLUTION_S)


@dataclass
class PerfConfig:
    """Knobs for one harness run (defaults match the paper's scales)."""

    dataset: str = "yelp2018-small"
    models: tuple = ("mf", "lightgcn", "simgcl")
    losses: tuple = ("sl", "bsl")
    dim: int = 64
    steps: int = 15
    warmup: int = 3
    batch_size: int = 1024
    n_negatives: int = 128
    eval_repeats: int = 3
    #: also time the compositional/uncached reference path per cell
    include_reference: bool = True
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


def _loss_with_fused(loss_name: str, fused: bool):
    loss = get_loss(loss_name)
    if hasattr(loss, "fused"):
        loss.fused = fused
    return loss


def time_train_steps(model_name: str, loss_name: str, dataset,
                     *, fused: bool = True, cache_propagation: bool = True,
                     steps: int = 15, warmup: int = 3, dim: int = 64,
                     batch_size: int = 1024, n_negatives: int = 128,
                     grad_mode: str = "dense", sparse_mode: str = "lazy",
                     seed: int = 0) -> dict:
    """Wall-clock one (model, loss) training cell for ``steps`` steps.

    Returns a result row of the ``train_step`` kind (see module
    docstring for the schema).  ``grad_mode="sparse"`` times the
    row-sparse fast path (sampled scoring + ``SparseAdam``) instead of
    the dense full-catalogue path.
    """
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    model = get_model(model_name, dataset, dim=dim, rng=seed)
    if hasattr(model, "cache_propagation"):
        model.cache_propagation = cache_propagation
    loss = _loss_with_fused(loss_name, fused)
    config = TrainConfig(epochs=1, batch_size=batch_size,
                         n_negatives=n_negatives, eval_every=0, patience=0,
                         grad_mode=grad_mode, sparse_mode=sparse_mode,
                         seed=seed)
    trainer = Trainer(model, loss, dataset, config, evaluator=None)

    def run_steps(n: int) -> None:
        done = 0
        while done < n:
            model.on_epoch_start(trainer.epoch_rng)
            for batch in trainer.sampler.epoch():
                trainer.train_step(batch)
                done += 1
                if done >= n:
                    return

    run_steps(warmup)
    start = time.perf_counter()
    run_steps(steps)
    elapsed = clamp_elapsed(time.perf_counter() - start)
    return {
        "kind": "train_step",
        "model": model_name,
        "loss": loss_name,
        "fused": bool(fused),
        "cache_propagation": bool(cache_propagation),
        "grad_mode": grad_mode,
        "steps": steps,
        "batch_size": batch_size,
        "n_negatives": n_negatives,
        "total_s": elapsed,
        "ms_per_step": 1e3 * elapsed / steps,
        "steps_per_s": steps / elapsed,
    }


def time_eval(model_name: str, dataset, *, chunked: bool = True,
              repeats: int = 3, dim: int = 64, ks=(20,),
              seed: int = 0) -> dict:
    """Wall-clock full-ranking evaluation throughput for one model.

    The data version is bumped before every timed pass so graph models
    re-run propagation each time, matching real training where periodic
    evaluation always follows optimizer steps — otherwise the
    propagation memo would hide the forward cost entirely.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    model = get_model(model_name, dataset, dim=dim, rng=seed)
    evaluator = Evaluator(dataset, ks=ks, chunked=chunked)
    evaluator.evaluate(model)  # warmup (builds caches, touches pages)
    start = time.perf_counter()
    for _ in range(repeats):
        bump_data_version()
        evaluator.evaluate(model)
    elapsed = clamp_elapsed(time.perf_counter() - start)
    users = len(evaluator._test_users)
    return {
        "kind": "eval",
        "model": model_name,
        "chunked": bool(chunked),
        "repeats": repeats,
        "users": users,
        "total_s": elapsed,
        "ms_per_pass": 1e3 * elapsed / repeats,
        "users_per_s": users * repeats / elapsed,
    }


def run_perf_suite(config: PerfConfig | None = None) -> dict:
    """Run the full grid and return the ``BENCH_fastpath.json`` payload."""
    config = config or PerfConfig()
    dataset = load_dataset(config.dataset)
    results = []
    for model_name in config.models:
        for loss_name in config.losses:
            results.append(time_train_steps(
                model_name, loss_name, dataset, fused=True,
                cache_propagation=True, steps=config.steps,
                warmup=config.warmup, dim=config.dim,
                batch_size=config.batch_size,
                n_negatives=config.n_negatives, seed=config.seed))
            if config.include_reference:
                results.append(time_train_steps(
                    model_name, loss_name, dataset, fused=False,
                    cache_propagation=False, steps=config.steps,
                    warmup=config.warmup, dim=config.dim,
                    batch_size=config.batch_size,
                    n_negatives=config.n_negatives, seed=config.seed))
        results.append(time_eval(model_name, dataset, chunked=True,
                                 repeats=config.eval_repeats, dim=config.dim,
                                 seed=config.seed))
        if config.include_reference:
            results.append(time_eval(model_name, dataset, chunked=False,
                                     repeats=config.eval_repeats,
                                     dim=config.dim, seed=config.seed))
    payload = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "config": {
            "models": list(config.models),
            "losses": list(config.losses),
            "dim": config.dim,
            "steps": config.steps,
            "warmup": config.warmup,
            "batch_size": config.batch_size,
            "n_negatives": config.n_negatives,
            "eval_repeats": config.eval_repeats,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }
    return payload


def write_report(payload: dict, path) -> None:
    """Persist a payload produced by either ``run_*_suite`` function."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


# ----------------------------------------------------------------------
# Training throughput frontier (BENCH_train.json)
# ----------------------------------------------------------------------
@dataclass
class TrainPerfConfig:
    """Knobs for one training-throughput frontier run.

    For every catalogue scale the base dataset's item axis is inflated
    (:func:`inflate_catalogue`) and each (loss, grad_mode) cell is
    timed, so the payload shows how dense step time grows with the
    catalogue while the row-sparse path stays flat.  A quality section
    trains the base dataset end to end per grad mode and records final
    NDCG@20, pinning that the lazy fast path does not trade accuracy.
    """

    dataset: str = "yelp2018-small"
    model: str = "mf"
    losses: tuple = ("bpr", "bsl")
    #: multiplicative catalogue sizes swept (1 = the base preset)
    catalogue_scales: tuple = (1, 8, 64)
    dim: int = 64
    steps: int = 15
    warmup: int = 3
    batch_size: int = 1024
    n_negatives: int = 128
    sparse_mode: str = "lazy"
    #: epochs of the end-to-end quality comparison (0 skips it); long
    #: enough to converge — converged dense and lazy runs agree on
    #: NDCG@20 to well under 1%, mid-training snapshots differ more
    quality_epochs: int = 16
    quality_loss: str = "bsl"
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


#: Schema of the training-throughput payload (``BENCH_train.json``).
TRAIN_SCHEMA = "bsl-train-bench/v1"


def inflate_catalogue(dataset, scale: int):
    """Return a copy of ``dataset`` with ``scale``× the item axis.

    The added items are cold (no interactions) — interaction structure,
    users and test split are untouched — so sweeping ``scale`` isolates
    exactly the catalogue-size term of the per-step training cost: the
    full-catalogue scoring matmul, the dense ``take_rows`` backward and
    the dense optimizer update all grow with ``num_items`` while the
    batch stays fixed.  Negatives are drawn from the inflated id range,
    as they would be on a genuinely larger catalogue.
    """
    from repro.data.dataset import InteractionDataset
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    if scale == 1:
        return dataset
    return InteractionDataset(
        dataset.num_users, dataset.num_items * scale,
        dataset.train_pairs, dataset.test_pairs,
        name=f"{dataset.name}-x{scale}", item_clusters=None)


def run_train_suite(config: TrainPerfConfig | None = None) -> dict:
    """Sweep catalogue size × loss × grad mode; return the payload.

    Emits one ``train_throughput`` row per (catalogue scale, loss,
    grad_mode) cell plus — unless ``quality_epochs == 0`` — one
    ``train_quality`` row per grad mode with the final NDCG@20 of an
    end-to-end run on the base dataset.
    """
    config = config or TrainPerfConfig()
    base = load_dataset(config.dataset)
    results = []
    for scale in config.catalogue_scales:
        dataset = inflate_catalogue(base, scale)
        for loss_name in config.losses:
            # Sparse is timed first: the dense cell churns O(batch x
            # catalogue) score graphs, and following it in the same
            # process measurably taxes the next cell's allocator.
            for grad_mode in ("sparse", "dense"):
                row = time_train_steps(
                    config.model, loss_name, dataset, grad_mode=grad_mode,
                    sparse_mode=config.sparse_mode, steps=config.steps,
                    warmup=config.warmup, dim=config.dim,
                    batch_size=config.batch_size,
                    n_negatives=config.n_negatives, seed=config.seed)
                row.update({
                    "kind": "train_throughput",
                    "catalogue_scale": int(scale),
                    "num_items": int(dataset.num_items),
                    "num_users": int(dataset.num_users),
                })
                results.append(row)
    if config.quality_epochs:
        results.extend(_train_quality_rows(config, base))
    return {
        "schema": TRAIN_SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "config": {
            "model": config.model,
            "losses": list(config.losses),
            "catalogue_scales": list(config.catalogue_scales),
            "dim": config.dim,
            "steps": config.steps,
            "warmup": config.warmup,
            "batch_size": config.batch_size,
            "n_negatives": config.n_negatives,
            "sparse_mode": config.sparse_mode,
            "quality_epochs": config.quality_epochs,
            "quality_loss": config.quality_loss,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }


def _train_quality_rows(config: TrainPerfConfig, dataset) -> list[dict]:
    """End-to-end NDCG@20 per grad mode on the base dataset."""
    rows = []
    for grad_mode in ("dense", "sparse"):
        model = get_model(config.model, dataset, dim=config.dim,
                          rng=config.seed)
        loss = get_loss(config.quality_loss)
        train_config = TrainConfig(
            epochs=config.quality_epochs, batch_size=config.batch_size,
            n_negatives=config.n_negatives, eval_every=0, patience=0,
            grad_mode=grad_mode, sparse_mode=config.sparse_mode,
            seed=config.seed)
        trainer = Trainer(model, loss, dataset, train_config,
                          evaluator=Evaluator(dataset, ks=(20,)))
        result = trainer.fit()
        rows.append({
            "kind": "train_quality",
            "model": config.model,
            "loss": config.quality_loss,
            "grad_mode": grad_mode,
            "sparse_mode": config.sparse_mode,
            "epochs": config.quality_epochs,
            "final_loss": float(result.final_loss),
            "ndcg_at_20": float(result.final_metrics.get("ndcg@20",
                                                         float("nan"))),
            "recall_at_20": float(result.final_metrics.get("recall@20",
                                                           float("nan"))),
        })
    return rows


def summarize_train(payload: dict) -> str:
    """Human-readable dense-vs-sparse frontier for one train payload."""
    lines = [f"train suite on {payload['dataset']} "
             f"(schema {payload['schema']})"]
    rows = [r for r in payload["results"] if r["kind"] == "train_throughput"]
    for sparse in [r for r in rows if r["grad_mode"] == "sparse"]:
        dense = next((r for r in rows
                      if r["grad_mode"] == "dense"
                      and r["loss"] == sparse["loss"]
                      and r["num_items"] == sparse["num_items"]), None)
        gain = (f"  ({dense['ms_per_step'] / sparse['ms_per_step']:.2f}x "
                f"vs dense)") if dense else ""
        lines.append(f"  train {sparse['model']}+{sparse['loss']} "
                     f"items={sparse['num_items']:<6}: "
                     f"{sparse['ms_per_step']:.2f} ms/step{gain}")
    for row in payload["results"]:
        if row["kind"] == "train_quality":
            lines.append(f"  quality {row['model']}+{row['loss']} "
                         f"{row['grad_mode']:<6}: "
                         f"ndcg@20={row['ndcg_at_20']:.4f} "
                         f"({row['epochs']} epochs)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Serving throughput (BENCH_serve.json)
# ----------------------------------------------------------------------
@dataclass
class ServePerfConfig:
    """Knobs for one serving-throughput run.

    One (dataset, model, loss) cell is trained for ``epochs``, exported
    to a temporary snapshot, then swept: for each index kind and each
    request batch size, recommendation throughput is timed cold
    (cache disabled) and once warm (every request a cache hit).
    """

    dataset: str = "yelp2018-small"
    model: str = "mf"
    loss: str = "bsl"
    epochs: int = 8
    dim: int = 64
    k: int = 10
    batch_sizes: tuple = (1, 16, 256)
    repeats: int = 3
    #: distinct request users per timing pass (cycled over the user set)
    request_users: int = 1024
    max_batch: int = 256
    #: shard counts for the scatter-gather sweep (empty tuple skips it)
    shards: tuple = (2, 4)
    partition_by: str = "both"
    strategy: str = "contiguous"
    include_quantized: bool = True
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


def time_recommend(service, users: np.ndarray, *, batch_size: int,
                   k: int = 10, repeats: int = 3,
                   label: str = "cold") -> dict:
    """Time ``service.recommend`` over ``users`` in ``batch_size`` slices.

    Runs one untimed warmup pass (which also populates the service's
    cache, so with a cache-enabled service the timed passes measure the
    warm path) and then ``repeats`` timed passes.  Returns a result row
    of the ``serve`` kind.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")

    def one_pass() -> None:
        for lo in range(0, len(users), batch_size):
            service.recommend(users[lo:lo + batch_size], k=k)

    one_pass()
    start = time.perf_counter()
    for _ in range(repeats):
        one_pass()
    elapsed = clamp_elapsed(time.perf_counter() - start)
    return {
        "kind": "serve",
        "index": service.index.kind,
        "cache": label,
        "batch_size": batch_size,
        "k": k,
        "users": int(len(users)),
        "repeats": repeats,
        "total_s": elapsed,
        "users_per_s": len(users) * repeats / elapsed,
        "ms_per_batch": (1e3 * elapsed
                         / (repeats * -(-len(users) // batch_size))),
        "cache_hit_rate": service.stats.hit_rate,
    }


def time_recommend_sharded(service, users: np.ndarray, *, batch_size: int,
                           k: int = 10, repeats: int = 3,
                           shards: int = 1,
                           partition_by: str = "both",
                           strategy: str = "contiguous") -> dict:
    """Time a :class:`~repro.serve.router.ShardedRecommendationService`.

    Same protocol as :func:`time_recommend` (one untimed warmup pass,
    then ``repeats`` timed passes) but the router's scatter/score/merge
    counters are reset after the warmup, so the returned
    ``merge_overhead_ms`` / ``merge_fraction`` columns describe exactly
    the timed window.  Returns a result row of the ``serve_sharded``
    kind, including the largest item shard's scoring-table bytes
    (``per_shard_bytes``).
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")

    def one_pass() -> None:
        for lo in range(0, len(users), batch_size):
            service.recommend(users[lo:lo + batch_size], k=k)

    one_pass()
    stats = service.router_stats
    stats.reset()
    start = time.perf_counter()
    for _ in range(repeats):
        one_pass()
    elapsed = clamp_elapsed(time.perf_counter() - start)
    n_batches = repeats * -(-len(users) // batch_size)
    return {
        "kind": "serve_sharded",
        "index": service.index.kind,
        "shards": int(shards),
        "partition_by": partition_by,
        "strategy": strategy,
        "cache": "cold",
        "batch_size": batch_size,
        "k": k,
        "users": int(len(users)),
        "repeats": repeats,
        "total_s": elapsed,
        "users_per_s": len(users) * repeats / elapsed,
        "ms_per_batch": 1e3 * elapsed / n_batches,
        "merge_overhead_ms": 1e3 * stats.merge_s / max(stats.sweeps, 1),
        "merge_fraction": stats.merge_fraction,
        "per_shard_bytes": int(max(service.index.per_shard_table_bytes)),
    }


def topk_overlap(exact_index, other_index, users: np.ndarray,
                 k: int = 10) -> float:
    """Mean fraction of the exact top-``k`` recovered by another index.

    This is the serving analogue of recall@k with the exact index as
    ground truth — the acceptance metric for the quantized and ANN
    paths.  Thin wrapper over the shared
    :func:`repro.eval.metrics.overlap_at_k`.
    """
    return overlap_at_k(exact_index.topk(users, k=k).items,
                        other_index.topk(users, k=k).items)


def run_serve_suite(config: ServePerfConfig | None = None) -> dict:
    """Train, export and sweep the serving stack; return the payload.

    Covers the unsharded grid (index kind × batch size × cache state,
    plus quantized-vs-exact overlap) and, for every shard count in
    ``config.shards``, a scatter-gather sweep over the same batch sizes
    with merge-overhead and per-shard-memory columns.
    """
    from repro.serve import (ExactTopKIndex, QuantizedTopKIndex,
                             RecommendationService,
                             ShardedRecommendationService,
                             ShardedTopKIndex, export_sharded_snapshot,
                             export_snapshot, load_snapshot)
    config = config or ServePerfConfig()
    dataset = load_dataset(config.dataset)
    model = get_model(config.model, dataset, dim=config.dim, rng=config.seed)
    loss = get_loss(config.loss)
    train_config = TrainConfig(epochs=config.epochs, eval_every=0, patience=0,
                               seed=config.seed)
    Trainer(model, loss, dataset, train_config, evaluator=None).fit()

    # Request stream: cycled independent permutations, not draws with
    # replacement — recommend() dedups repeated users inside a batch
    # even with the cache off, so a duplicate-heavy stream would
    # overstate cold per-user throughput.
    rng = np.random.default_rng(config.seed)
    cycles = -(-config.request_users // dataset.num_users)
    users = np.concatenate([rng.permutation(dataset.num_users)
                            for _ in range(cycles)])[
        :config.request_users].astype(np.int64)
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        export_snapshot(model, dataset, tmp, model_name=config.model,
                        extra={"loss": config.loss, "epochs": config.epochs})
        snapshot = load_snapshot(tmp)
        indexes = [ExactTopKIndex(snapshot)]
        if config.include_quantized:
            quantized = QuantizedTopKIndex(snapshot)
            indexes.append(quantized)
            results.append({
                "kind": "overlap",
                "index": "quantized",
                "k": config.k,
                "users": int(dataset.num_users),
                "overlap_at_k": topk_overlap(
                    indexes[0], quantized,
                    np.arange(dataset.num_users, dtype=np.int64),
                    k=config.k),
                "table_bytes": int(quantized.table_bytes),
                "exact_table_bytes": int(
                    np.asarray(snapshot.items).nbytes),
            })
        for index in indexes:
            for batch_size in config.batch_sizes:
                # max_batch must not cap the swept batch size, or rows
                # for different large batch sizes would all silently
                # measure max_batch-sized index sweeps.
                cold = RecommendationService(
                    snapshot, index=index, cache_size=0,
                    max_batch=max(config.max_batch, batch_size))
                results.append(time_recommend(
                    cold, users, batch_size=batch_size, k=config.k,
                    repeats=config.repeats, label="cold"))
            warm = RecommendationService(
                snapshot, index=index,
                max_batch=max(config.max_batch, *config.batch_sizes),
                cache_size=2 * config.request_users)
            results.append(time_recommend(
                warm, users, batch_size=max(config.batch_sizes), k=config.k,
                repeats=config.repeats, label="warm"))
        kinds = ["exact"] + (["quantized"] if config.include_quantized
                             else [])
        for n_shards in config.shards:
            sharded = export_sharded_snapshot(
                model, dataset, pathlib.Path(tmp) / f"shards-{n_shards}",
                shards=n_shards, partition_by=config.partition_by,
                strategy=config.strategy, model_name=config.model)
            for kind in kinds:
                # One router per (shards, kind): the shard tables are
                # panelized/quantized once, and its default chunk_users
                # matches the unsharded indexes so the sharded rows are
                # apples-to-apples with the `serve` rows above.
                router = ShardedTopKIndex(sharded, kind=kind)
                for batch_size in config.batch_sizes:
                    service = ShardedRecommendationService(
                        sharded, index=router, cache_size=0,
                        max_batch=max(config.max_batch, batch_size))
                    results.append(time_recommend_sharded(
                        service, users, batch_size=batch_size, k=config.k,
                        repeats=config.repeats, shards=n_shards,
                        partition_by=config.partition_by,
                        strategy=config.strategy))
        snapshot_version = snapshot.version
    return {
        "schema": SERVE_SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "snapshot_version": snapshot_version,
        "config": {
            "model": config.model,
            "loss": config.loss,
            "epochs": config.epochs,
            "dim": config.dim,
            "k": config.k,
            "batch_sizes": list(config.batch_sizes),
            "repeats": config.repeats,
            "request_users": config.request_users,
            "max_batch": config.max_batch,
            "shards": list(config.shards),
            "partition_by": config.partition_by,
            "strategy": config.strategy,
            "include_quantized": config.include_quantized,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }


# ----------------------------------------------------------------------
# ANN recall/throughput frontier (BENCH_ann.json)
# ----------------------------------------------------------------------
@dataclass
class AnnPerfConfig:
    """Knobs for one ANN frontier run.

    One (dataset, model, loss) cell is trained and exported, IVF
    indexes are built per ``nlist`` (through the real on-disk
    :func:`repro.ann.build.build_ann_index` path), and every
    (nlist, nprobe) point is measured for recall@k against the exact
    index and index-level ``topk`` throughput over a shared request
    stream.

    The default cell is ``mf`` + ``bpr``: candidate towers are trained
    with pairwise objectives in practice, and the paper's contrastive
    losses (SL/BSL) push item embeddings toward uniformity on the
    sphere, which deliberately *destroys* the cluster structure IVF
    exploits — the frontier of a BSL snapshot is measurably worse (see
    ``docs/ann.md``).  Override ``loss`` to quantify that.
    """

    dataset: str = "yelp2018-small"
    model: str = "mf"
    loss: str = "bpr"
    epochs: int = 25
    dim: int = 64
    n_negatives: int = 16
    k: int = 10
    nlists: tuple = (8, 16, 32)
    nprobes: tuple = (1, 2, 4)
    spill: int = 1
    train_iters: int = 25
    #: request batch per ``topk`` call (both lanes time the same stream)
    batch_size: int = 1024
    request_users: int = 4096
    repeats: int = 5
    include_pq: bool = True
    pq_m: int = 8
    pq_ks: int = 32
    pq_refine: int = 4
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


def time_index_topk(index, users: np.ndarray, *, batch_size: int,
                    k: int = 10, repeats: int = 5) -> dict:
    """Index-level ``topk`` throughput over ``users``.

    One untimed warmup pass (which also builds lazy structures —
    routing tables, signature panels — exactly like a service warming
    up), then ``repeats`` timed passes; the reported throughput uses
    the **fastest pass** (the ``timeit`` convention — slower passes
    measure scheduler noise, not the index).  Unlike
    :func:`time_recommend` this bypasses the service layer, so two
    index kinds can be compared without the shared per-user python
    overhead of result assembly and caching.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")

    def one_pass() -> None:
        for lo in range(0, len(users), batch_size):
            index.topk(users[lo:lo + batch_size], k=k)

    one_pass()
    passes = []
    for _ in range(repeats):
        start = time.perf_counter()
        one_pass()
        passes.append(time.perf_counter() - start)
    best = clamp_elapsed(min(passes))
    return {
        "batch_size": batch_size,
        "k": k,
        "users": int(len(users)),
        "repeats": repeats,
        "total_s": sum(passes),
        "best_pass_s": best,
        "users_per_s": len(users) / best,
        "ms_per_batch": 1e3 * best / (-(-len(users) // batch_size)),
    }


def run_ann_suite(config: AnnPerfConfig | None = None) -> dict:
    """Train, build IVF indexes and sweep the recall/throughput frontier.

    Returns the ``BENCH_ann.json`` payload: one ``ann_baseline`` row
    (the exact index timed over the same stream) and one ``ann`` row
    per (nlist, nprobe) — plus an IVF-PQ point when ``include_pq`` —
    each carrying ``recall`` (overlap@k against the exact index over
    every user) and ``users_per_s``.
    """
    from repro.ann import IVFFlatIndex, build_ann_index
    from repro.serve import ExactTopKIndex, export_snapshot, load_snapshot
    config = config or AnnPerfConfig()
    dataset = load_dataset(config.dataset)
    model = get_model(config.model, dataset, dim=config.dim, rng=config.seed)
    loss = get_loss(config.loss)
    train_config = TrainConfig(epochs=config.epochs,
                               n_negatives=config.n_negatives,
                               eval_every=0, patience=0, seed=config.seed)
    Trainer(model, loss, dataset, train_config, evaluator=None).fit()

    rng = np.random.default_rng(config.seed)
    cycles = -(-config.request_users // dataset.num_users)
    users = np.concatenate([rng.permutation(dataset.num_users)
                            for _ in range(cycles)])[
        :config.request_users].astype(np.int64)
    all_users = np.arange(dataset.num_users, dtype=np.int64)
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        export_snapshot(model, dataset, pathlib.Path(tmp) / "snapshot",
                        model_name=config.model,
                        extra={"loss": config.loss, "epochs": config.epochs})
        snapshot = load_snapshot(pathlib.Path(tmp) / "snapshot")
        exact = ExactTopKIndex(snapshot)
        exact_truth = exact.topk(all_users, k=config.k).items
        baseline = time_index_topk(exact, users, batch_size=config.batch_size,
                                   k=config.k, repeats=config.repeats)
        baseline.update({"kind": "ann_baseline", "index": "exact",
                         "table_bytes": int(exact.table_bytes)})
        results.append(baseline)
        for nlist in config.nlists:
            built = build_ann_index(
                snapshot, pathlib.Path(tmp) / f"ann-{nlist:03d}",
                kind="ivf", nlist=nlist, spill=config.spill,
                default_nprobe=min(min(config.nprobes), nlist),
                seed=config.seed, train_iters=config.train_iters)
            for nprobe in config.nprobes:
                if nprobe > nlist:
                    continue
                index = IVFFlatIndex(snapshot, built.data, nprobe=nprobe)
                results.append(_ann_row(index, exact_truth, all_users, users,
                                        baseline, config,
                                        nlist=nlist, nprobe=nprobe))
        if config.include_pq:
            nlist = config.nlists[len(config.nlists) // 2]
            nprobe = min(nlist, sorted(config.nprobes)[len(
                config.nprobes) // 2])
            pq_index = build_ann_index(
                snapshot, pathlib.Path(tmp) / "ann-pq", kind="ivfpq",
                nlist=nlist, spill=config.spill, default_nprobe=nprobe,
                seed=config.seed, train_iters=config.train_iters,
                pq_m=config.pq_m, pq_ks=config.pq_ks)
            pq_index.refine = config.pq_refine
            results.append(_ann_row(pq_index, exact_truth, all_users, users,
                                    baseline, config,
                                    nlist=nlist, nprobe=nprobe))
        snapshot_version = snapshot.version
    return {
        "schema": ANN_SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "snapshot_version": snapshot_version,
        "config": {
            "model": config.model,
            "loss": config.loss,
            "epochs": config.epochs,
            "dim": config.dim,
            "n_negatives": config.n_negatives,
            "k": config.k,
            "nlists": list(config.nlists),
            "nprobes": list(config.nprobes),
            "spill": config.spill,
            "train_iters": config.train_iters,
            "batch_size": config.batch_size,
            "request_users": config.request_users,
            "repeats": config.repeats,
            "include_pq": config.include_pq,
            "pq_m": config.pq_m,
            "pq_ks": config.pq_ks,
            "pq_refine": config.pq_refine,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }


def _ann_row(index, exact_truth: np.ndarray, all_users: np.ndarray,
             users: np.ndarray, baseline: dict, config: AnnPerfConfig,
             *, nlist: int, nprobe: int) -> dict:
    """Measure one ANN operating point: recall plus throughput."""
    from repro.serve.index import scoring_ready_users
    recall = overlap_at_k(exact_truth,
                          index.topk(all_users, k=config.k).items)
    # candidate sizes from the probe plan alone — no need to
    # materialize every user's candidate array
    vectors = scoring_ready_users(
        np.asarray(index.snapshot.users), index.snapshot.scoring)
    seen_counts = np.diff(index.snapshot.seen_indptr)
    plan = index.data.plan(vectors, seen_counts, config.k, nprobe, True,
                           index.snapshot.scoring)
    lengths = np.array([len(index.data.signature(sig)[0])
                        for sig in plan.signatures], dtype=np.int64)
    row = time_index_topk(index, users, batch_size=config.batch_size,
                          k=config.k, repeats=config.repeats)
    row.update({
        "kind": "ann",
        "index": index.kind,
        "nlist": int(nlist),
        "nprobe": int(nprobe),
        "spill": int(config.spill),
        "recall": float(recall),
        "candidates_mean": float(lengths[plan.group_of_row].mean()),
        "speedup_vs_exact": row["users_per_s"] / baseline["users_per_s"],
        "index_bytes": int(index.table_bytes),
    })
    return row


# ----------------------------------------------------------------------
# Latency-vs-offered-load frontier (BENCH_latency.json)
# ----------------------------------------------------------------------
@dataclass
class LatencyPerfConfig:
    """Knobs for one latency-frontier run.

    One (dataset, model, loss) cell is trained and exported; the load
    generator then drives a :class:`~repro.serve.runtime.ServingRuntime`
    with **paced open-loop arrivals** — requests submitted on a fixed
    schedule of ``offered_qps``, regardless of completions, which is
    what exposes queueing delay — while a **closed-loop sweep
    controller** raises the offered rate multiplicatively level by
    level and stops at saturation (achieved throughput falling behind
    the offered rate, or admission shedding).  Each level is one
    ``latency`` row: the p50/p99-vs-QPS frontier.
    """

    dataset: str = "yelp2018-small"
    model: str = "mf"
    loss: str = "bsl"
    epochs: int = 8
    dim: int = 64
    k: int = 10
    #: offered-load sweep: starting QPS × multiplicative step, at most
    #: ``max_levels`` levels
    start_qps: float = 200.0
    qps_step: float = 2.0
    max_levels: int = 8
    #: requests submitted per load level
    requests_per_level: int = 512
    #: sweep stops once achieved/offered falls below this, or any
    #: request was shed at admission
    saturation_ratio: float = 0.9
    #: runtime knobs (see :class:`~repro.serve.runtime.RuntimeConfig`)
    slo_ms: float = 50.0
    max_queue: int = 256
    initial_batch: int = 8
    max_batch: int = 256
    window: int = 64
    #: 0 = cold path: every unique request costs an index sweep
    cache_size: int = 0
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


def run_latency_level(service, users: np.ndarray, *, offered_qps: float,
                      k: int = 10, runtime_config=None,
                      timeout_s: float = 60.0) -> dict:
    """Drive one offered-load level through a fresh serving runtime.

    Submits ``len(users)`` requests at a fixed pace of ``offered_qps``
    (open loop: the schedule does not wait for completions — a backed-up
    runtime accumulates queueing delay exactly like a backed-up server),
    then drains and reports the level's ``latency`` row: achieved
    throughput, p50/p99 end-to-end latency, shed rate and the mean
    queue/service decomposition.
    """
    from repro.serve.runtime import (OverloadError, RuntimeConfig,
                                     ServingRuntime, latency_percentile)
    if offered_qps <= 0:
        raise ValueError(f"offered_qps must be positive, got {offered_qps}")
    runtime = ServingRuntime(service, runtime_config or RuntimeConfig())
    handles = []
    shed = 0
    with runtime:
        start = time.perf_counter()
        for i, user in enumerate(users.tolist()):
            # Paced arrivals: sleep until this request's scheduled slot.
            delay = start + i / offered_qps - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                handles.append(runtime.submit(int(user), k=k))
            except OverloadError:
                shed += 1
        for handle in handles:
            handle.result(timeout=timeout_s)
        elapsed = clamp_elapsed(time.perf_counter() - start)
    latencies = [h.latency_ms for h in handles]
    stats = runtime.stats
    completed = stats.completed
    return {
        "kind": "latency",
        "index": service.index.kind,
        "offered_qps": float(offered_qps),
        "achieved_qps": completed / elapsed,
        "requests": int(len(users)),
        "completed": int(completed),
        "shed": int(shed),
        "shed_rate": stats.shed_rate,
        "k": k,
        "p50_ms": latency_percentile(latencies, 50.0),
        "p99_ms": latency_percentile(latencies, 99.0),
        "mean_queue_ms": 1e3 * stats.queue_s / max(completed, 1),
        "mean_service_ms": 1e3 * stats.service_s / max(completed, 1),
        "sweep_ms": service.stats.sweep_ms_per_sweep,
        "mean_batch": stats.mean_batch,
        "final_batch_size": int(runtime.batch_size),
        "slo_ms": runtime.config.slo_ms,
    }


def run_latency_suite(config: LatencyPerfConfig | None = None) -> dict:
    """Train, export and sweep offered load to saturation; return payload.

    Each level runs through a **fresh** runtime (so the batch-size
    controller and latency window start identically) against a shared
    cold service.  The sweep stops early once a level saturates —
    achieved throughput below ``saturation_ratio`` of offered, or any
    admission shedding — and that level is marked ``saturated``.
    """
    from repro.serve import (RecommendationService, export_snapshot,
                             load_snapshot)
    from repro.serve.runtime import RuntimeConfig
    config = config or LatencyPerfConfig()
    dataset = load_dataset(config.dataset)
    model = get_model(config.model, dataset, dim=config.dim, rng=config.seed)
    loss = get_loss(config.loss)
    train_config = TrainConfig(epochs=config.epochs, eval_every=0, patience=0,
                               seed=config.seed)
    Trainer(model, loss, dataset, train_config, evaluator=None).fit()

    # Same duplicate-free request stream as the serve suite: cycled
    # permutations so a cold service really sweeps per request.
    rng = np.random.default_rng(config.seed)
    cycles = -(-config.requests_per_level // dataset.num_users)
    users = np.concatenate([rng.permutation(dataset.num_users)
                            for _ in range(cycles)])[
        :config.requests_per_level].astype(np.int64)
    runtime_config = RuntimeConfig(
        slo_ms=config.slo_ms, max_queue=config.max_queue,
        initial_batch=config.initial_batch, max_batch=config.max_batch,
        window=config.window)
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        export_snapshot(model, dataset, tmp, model_name=config.model,
                        extra={"loss": config.loss, "epochs": config.epochs})
        snapshot = load_snapshot(tmp)
        service = RecommendationService(snapshot,
                                        cache_size=config.cache_size)
        for level in range(config.max_levels):
            offered = config.start_qps * config.qps_step ** level
            row = run_latency_level(service, users, offered_qps=offered,
                                    k=config.k,
                                    runtime_config=runtime_config)
            row["level"] = level
            saturated = (row["shed"] > 0
                         or row["achieved_qps"]
                         < config.saturation_ratio * row["offered_qps"])
            row["saturated"] = bool(saturated)
            results.append(row)
            if saturated:
                break
        snapshot_version = snapshot.version
    return {
        "schema": LATENCY_SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "snapshot_version": snapshot_version,
        "config": {
            "model": config.model,
            "loss": config.loss,
            "epochs": config.epochs,
            "dim": config.dim,
            "k": config.k,
            "start_qps": config.start_qps,
            "qps_step": config.qps_step,
            "max_levels": config.max_levels,
            "requests_per_level": config.requests_per_level,
            "saturation_ratio": config.saturation_ratio,
            "slo_ms": config.slo_ms,
            "max_queue": config.max_queue,
            "initial_batch": config.initial_batch,
            "max_batch": config.max_batch,
            "window": config.window,
            "cache_size": config.cache_size,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }


def summarize_latency(payload: dict) -> str:
    """Human-readable latency frontier for one latency payload."""
    lines = [f"latency suite on {payload['dataset']} "
             f"(schema {payload['schema']}, "
             f"snapshot {payload['snapshot_version']})"]
    for row in payload["results"]:
        if row["kind"] != "latency":
            continue
        flag = "  << saturated" if row.get("saturated") else ""
        lines.append(
            f"  offered {row['offered_qps']:>9,.0f} qps: achieved "
            f"{row['achieved_qps']:>9,.0f}  p50={row['p50_ms']:.2f} ms  "
            f"p99={row['p99_ms']:.2f} ms  shed={100 * row['shed_rate']:.1f}%"
            f"  batch->{row['final_batch_size']}{flag}")
    return "\n".join(lines)


@dataclass
class RefreshPerfConfig:
    """Knobs for one live-refresh churn sweep.

    One (dataset, model, loss) cell is trained and exported, an IVF
    index is built over it, and each ``churn_fractions`` level then
    mutates that fraction of the catalogue through the delta layer and
    measures the three live-index costs: in-memory delta replay,
    incremental IVF maintenance (vs a from-scratch re-cluster of the
    same catalogue), and the atomic snapshot swap applied between
    micro-batches while a paced request stream is in flight.
    """

    dataset: str = "yelp2018-small"
    model: str = "mf"
    loss: str = "bsl"
    epochs: int = 8
    dim: int = 64
    k: int = 10
    #: IVF shape of the maintained index
    nlist: int = 16
    nprobe: int = 2
    train_iters: int = 25
    #: fraction of catalogue items upserted per churn level (an eighth
    #: of that count is additionally deleted and re-added as new ids)
    churn_fractions: tuple = (0.01, 0.05, 0.2)
    #: best-of timing repeats for the replay/update/rebuild clocks
    repeats: int = 3
    #: paced request stream driven through the runtime around the swap
    requests: int = 256
    qps: float = 2000.0
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


def _churned_state(base_state, churn_fraction: float, dim: int, rng):
    """One churn level's worth of edits applied to a copy of ``base``.

    Upserts ``churn_fraction`` of the item catalogue in place and, at an
    eighth of that rate, deletes existing ids and inserts fresh ones —
    so every delta kind (row change, delete, insert) appears in every
    measured level.  Returns ``(state, rows_changed)``.
    """
    state = base_state.copy()
    item_ids = np.asarray(sorted(state.items))
    n_upserts = max(1, int(round(churn_fraction * len(item_ids))))
    n_swaps = max(1, n_upserts // 8)
    touched = rng.choice(item_ids, size=min(n_upserts + n_swaps,
                                            len(item_ids)), replace=False)
    for item in touched[:n_upserts].tolist():
        state.upsert_item(item, rng.normal(size=dim))
    next_id = int(item_ids[-1]) + 1
    for item in touched[n_upserts:].tolist():
        state.delete_item(item)
        state.upsert_item(next_id, rng.normal(size=dim))
        next_id += 1
    rows_changed = n_upserts + 2 * len(touched[n_upserts:])
    return state, rows_changed


def _swap_under_traffic(snapshot, index, new_snapshot, new_index, *,
                        requests: int, qps: float, k: int, seed: int) -> dict:
    """Pace a request stream through a runtime and refresh mid-stream.

    Returns the swap columns: worker-side pause, requests in flight at
    the moment the swap was requested, completions and errors across
    the whole stream.  Every response must carry exactly one snapshot
    version — a torn read here is a bug, not a data point.
    """
    from repro.serve import RecommendationService, ServingRuntime

    service = RecommendationService(snapshot, index=index, cache_size=0)
    rng = np.random.default_rng(seed)
    users = rng.integers(0, snapshot.manifest.num_users, size=requests)
    errors = 0
    handles = []
    in_flight = 0
    with ServingRuntime(service) as runtime:
        start = time.perf_counter()
        for i, user in enumerate(users.tolist()):
            delay = start + i / qps - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            if i == requests // 2:
                in_flight = runtime.pending
                runtime.refresh(new_snapshot, index=new_index)
            handles.append(runtime.submit(int(user), k=k))
        results = []
        for handle in handles:
            try:
                results.append(handle.result(timeout=30.0))
            except Exception:
                errors += 1
        stats = runtime.stats
    versions = {r.snapshot_version for r in results}
    if not versions <= {snapshot.version, new_snapshot.version}:
        raise AssertionError(f"torn read: unknown versions {versions}")
    return {
        "swap_pause_ms": 1e3 * stats.refresh_s,
        "requests_during_swap": int(in_flight),
        "completed": int(stats.completed),
        "errors": int(errors),
    }


def run_refresh_suite(config: RefreshPerfConfig | None = None) -> dict:
    """Train, export, churn and measure the live-refresh costs.

    Per churn level the row records, best of ``repeats`` where a clock
    is involved:

    * ``delta_apply_ms`` — in-memory replay of the level's delta chain
      onto the base snapshot (:func:`repro.serve.delta.apply_deltas`);
    * ``ivf_update_ms`` — incremental posting-list maintenance
      (:meth:`repro.ann.ivf.IVFFlatIndex.refreshed`);
    * ``ivf_rebuild_ms`` — from-scratch coarse-quantizer training +
      assignment over the churned catalogue (what the update replaces);
    * ``swap_pause_ms`` / ``requests_during_swap`` / ``errors`` — the
      atomic swap applied between micro-batches under a paced request
      stream.
    """
    from repro.ann import build_ann_index
    from repro.ann.ivf import (IVFFlatIndex, IVFIndexData, assign_lists,
                               train_coarse_quantizer)
    from repro.serve import export_snapshot, load_snapshot
    from repro.serve.delta import LiveState, apply_deltas, export_delta
    from repro.serve.index import scoring_ready_items

    config = config or RefreshPerfConfig()
    dataset = load_dataset(config.dataset)
    model = get_model(config.model, dataset, dim=config.dim, rng=config.seed)
    loss = get_loss(config.loss)
    train_config = TrainConfig(epochs=config.epochs, eval_every=0, patience=0,
                               seed=config.seed)
    Trainer(model, loss, dataset, train_config, evaluator=None).fit()

    results = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = pathlib.Path(tmp)
        export_snapshot(model, dataset, tmp / "base",
                        model_name=config.model,
                        extra={"loss": config.loss, "epochs": config.epochs})
        snapshot = load_snapshot(tmp / "base")
        base_index = build_ann_index(
            snapshot, tmp / "ann", kind="ivf", nlist=config.nlist,
            default_nprobe=config.nprobe, seed=config.seed,
            train_iters=config.train_iters)
        base_state = LiveState.from_snapshot(snapshot)
        rng = np.random.default_rng(config.seed)
        for level, fraction in enumerate(config.churn_fractions):
            state, rows_changed = _churned_state(base_state, fraction,
                                                 config.dim, rng)
            delta = export_delta(base_state, state,
                                 tmp / f"delta-{level}")

            apply_s = min(
                _timed(lambda: apply_deltas(snapshot, [delta]))
                for _ in range(config.repeats))
            new_snapshot = apply_deltas(snapshot, [delta])

            update_s = min(
                _timed(lambda: base_index.refreshed(new_snapshot))
                for _ in range(config.repeats))
            new_index = base_index.refreshed(new_snapshot)

            items_ready = scoring_ready_items(
                np.asarray(new_snapshot.items), new_snapshot.scoring)

            def rebuild():
                centroids, _ = train_coarse_quantizer(
                    items_ready, config.nlist, seed=config.seed,
                    n_iter=config.train_iters)
                lists = assign_lists(items_ready, centroids)
                indptr = np.concatenate(
                    [np.zeros(1, dtype=np.int64),
                     np.cumsum([len(l) for l in lists])])
                return IVFIndexData(centroids, indptr,
                                    np.concatenate(lists),
                                    new_snapshot.manifest.num_items,
                                    config.nprobe)
            rebuild_s = min(_timed(rebuild) for _ in range(config.repeats))

            swap = _swap_under_traffic(
                snapshot, IVFFlatIndex(snapshot, base_index.data,
                                       nprobe=config.nprobe),
                new_snapshot, new_index,
                requests=config.requests, qps=config.qps, k=config.k,
                seed=config.seed + level)
            results.append({
                "kind": "refresh",
                "level": level,
                "churn_fraction": float(fraction),
                "rows_changed": int(rows_changed),
                "delta_apply_ms": 1e3 * apply_s,
                "ivf_update_ms": 1e3 * update_s,
                "ivf_rebuild_ms": 1e3 * rebuild_s,
                "update_speedup": rebuild_s / max(update_s,
                                                  CLOCK_RESOLUTION_S),
                "staleness": float(
                    new_index.data.staleness(items_ready)),
                "postings": int(len(new_index.data.list_items)),
                **swap,
            })
        snapshot_version = snapshot.version
    return {
        "schema": REFRESH_SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "snapshot_version": snapshot_version,
        "config": {
            "model": config.model,
            "loss": config.loss,
            "epochs": config.epochs,
            "dim": config.dim,
            "k": config.k,
            "nlist": config.nlist,
            "nprobe": config.nprobe,
            "train_iters": config.train_iters,
            "churn_fractions": list(config.churn_fractions),
            "repeats": config.repeats,
            "requests": config.requests,
            "qps": config.qps,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }


def _timed(fn) -> float:
    """Wall-clock seconds of one ``fn()`` call, clamped to clock ticks."""
    start = time.perf_counter()
    fn()
    return clamp_elapsed(time.perf_counter() - start)


def summarize_refresh(payload: dict) -> str:
    """Human-readable churn table for one refresh payload."""
    lines = [f"refresh suite on {payload['dataset']} "
             f"(schema {payload['schema']}, "
             f"snapshot {payload['snapshot_version']})"]
    for row in payload["results"]:
        if row["kind"] != "refresh":
            continue
        lines.append(
            f"  churn {100 * row['churn_fraction']:>5.1f}% "
            f"({row['rows_changed']:>5} rows): "
            f"delta {row['delta_apply_ms']:.2f} ms  "
            f"ivf update {row['ivf_update_ms']:.2f} ms "
            f"vs rebuild {row['ivf_rebuild_ms']:.2f} ms "
            f"({row['update_speedup']:.1f}x)  "
            f"swap pause {row['swap_pause_ms']:.2f} ms  "
            f"in-flight {row['requests_during_swap']}  "
            f"errors {row['errors']}")
    return "\n".join(lines)


def summarize_ann(payload: dict) -> str:
    """Human-readable frontier table for one ANN payload."""
    lines = [f"ann suite on {payload['dataset']} "
             f"(schema {payload['schema']}, "
             f"snapshot {payload['snapshot_version']})"]
    baseline = next((r for r in payload["results"]
                     if r["kind"] == "ann_baseline"), None)
    if baseline:
        lines.append(f"  exact baseline: {baseline['users_per_s']:,.0f} "
                     f"users/s @ batch {baseline['batch_size']}")
    for row in payload["results"]:
        if row["kind"] == "ann":
            lines.append(
                f"  {row['index']:<5} nlist={row['nlist']:<3} "
                f"nprobe={row['nprobe']:<3} recall@{row['k']}="
                f"{row['recall']:.4f}  {row['users_per_s']:,.0f} users/s "
                f"({row['speedup_vs_exact']:.2f}x exact, "
                f"{row['candidates_mean']:.0f} cands/user)")
    return "\n".join(lines)


def summarize_serve(payload: dict) -> str:
    """Human-readable throughput/overlap table for one serve payload."""
    lines = [f"serve suite on {payload['dataset']} "
             f"(schema {payload['schema']}, "
             f"snapshot {payload['snapshot_version']})"]
    for row in payload["results"]:
        if row["kind"] == "overlap":
            ratio = row["exact_table_bytes"] / row["table_bytes"]
            lines.append(f"  overlap@{row['k']} quantized-vs-exact: "
                         f"{row['overlap_at_k']:.4f}  "
                         f"(catalogue {ratio:.1f}x smaller)")
        elif row["kind"] == "serve":
            lines.append(f"  serve {row['index']:<9} batch={row['batch_size']:<4}"
                         f" cache={row['cache']:<4}: "
                         f"{row['users_per_s']:,.0f} users/s")
        elif row["kind"] == "serve_sharded":
            lines.append(
                f"  shard {row['index']:<17} shards={row['shards']} "
                f"batch={row['batch_size']:<4}: "
                f"{row['users_per_s']:,.0f} users/s  "
                f"(merge {100 * row['merge_fraction']:.1f}%, "
                f"{row['per_shard_bytes'] / 1024:.0f} KiB/shard)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Telemetry overhead frontier (BENCH_obs.json)
# ----------------------------------------------------------------------
@dataclass
class ObsPerfConfig:
    """Knobs for one telemetry-overhead run.

    One (dataset, model, loss) cell is trained and exported; the same
    request stream is then served three times per cache state — with
    telemetry fully off (null registry, tracing forced off), with the
    metrics registry enabled, and with metrics **and** span tracing
    enabled — and each lane's throughput is compared against the off
    baseline.  The metrics-on overhead is the number the repo pins
    (``tests/test_obs_perf.py``: ≤ 5% on the cold lane).
    """

    dataset: str = "yelp2018-small"
    model: str = "mf"
    loss: str = "bsl"
    epochs: int = 8
    dim: int = 64
    k: int = 10
    batch_size: int = 256
    #: timed passes per lane; the **best** pass is kept, so scheduler
    #: noise inflates neither the baseline nor the instrumented lanes
    repeats: int = 5
    request_users: int = 1024
    max_batch: int = 256
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


#: Telemetry-off / metrics-on / metrics+tracing serving lanes, one row
#: per (cache state, mode), with overhead relative to the off lane.
OBS_SCHEMA = "bsl-obs-bench/v1"

#: Sweep order per cache state; ``off`` must come first (it is the
#: baseline the other lanes' ``overhead_pct`` is computed against).
OBS_MODES = ("off", "metrics", "trace")


def _time_obs_lane(service, users: np.ndarray, *, batch_size: int,
                   k: int, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one full pass over ``users``."""
    def one_pass() -> None:
        for lo in range(0, len(users), batch_size):
            service.recommend(users[lo:lo + batch_size], k=k)

    one_pass()  # warmup: fills the cache on cache-enabled services
    return min(_timed(one_pass) for _ in range(repeats))


def run_obs_suite(config: ObsPerfConfig | None = None) -> dict:
    """Measure serving throughput under the three telemetry modes.

    Every lane serves the identical request stream against a service
    constructed *inside* its telemetry mode (so stats views bind their
    instruments to that lane's registry).  Off-lane telemetry is the
    real disabled path — the null registry's shared no-op instruments
    and a forced-off tracer — not an unpatched build, so the measured
    overhead is exactly what a deployment toggles.
    """
    from repro.obs.metrics import (MetricsRegistry, NULL_REGISTRY,
                                   use_registry)
    from repro.obs.trace import tracing
    from repro.serve import (RecommendationService, export_snapshot,
                             load_snapshot)
    config = config or ObsPerfConfig()
    dataset = load_dataset(config.dataset)
    model = get_model(config.model, dataset, dim=config.dim, rng=config.seed)
    loss = get_loss(config.loss)
    train_config = TrainConfig(epochs=config.epochs, eval_every=0, patience=0,
                               seed=config.seed)
    Trainer(model, loss, dataset, train_config, evaluator=None).fit()

    # Duplicate-free request stream, as in the serve suite.
    rng = np.random.default_rng(config.seed)
    cycles = -(-config.request_users // dataset.num_users)
    users = np.concatenate([rng.permutation(dataset.num_users)
                            for _ in range(cycles)])[
        :config.request_users].astype(np.int64)
    max_batch = max(config.max_batch, config.batch_size)
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        export_snapshot(model, dataset, tmp, model_name=config.model,
                        extra={"loss": config.loss, "epochs": config.epochs})
        snapshot = load_snapshot(tmp)
        for cache_label, cache_size in (("cold", 0),
                                        ("warm", 2 * config.request_users)):
            baseline = None
            for mode in OBS_MODES:
                registry = (NULL_REGISTRY if mode == "off"
                            else MetricsRegistry())
                with use_registry(registry), \
                        tracing(enabled=(mode == "trace")):
                    service = RecommendationService(
                        snapshot, cache_size=cache_size, max_batch=max_batch)
                    elapsed = _time_obs_lane(
                        service, users, batch_size=config.batch_size,
                        k=config.k, repeats=config.repeats)
                if mode == "off":
                    baseline = elapsed
                results.append({
                    "kind": "obs",
                    "mode": mode,
                    "cache": cache_label,
                    "batch_size": config.batch_size,
                    "k": config.k,
                    "users": int(len(users)),
                    "repeats": config.repeats,
                    "total_s": elapsed,
                    "users_per_s": len(users) / elapsed,
                    "ms_per_batch": (1e3 * elapsed
                                     / -(-len(users) // config.batch_size)),
                    "overhead_pct": 100.0 * (elapsed / baseline - 1.0),
                })
        snapshot_version = snapshot.version
    return {
        "schema": OBS_SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "snapshot_version": snapshot_version,
        "config": {
            "model": config.model,
            "loss": config.loss,
            "epochs": config.epochs,
            "dim": config.dim,
            "k": config.k,
            "batch_size": config.batch_size,
            "repeats": config.repeats,
            "request_users": config.request_users,
            "max_batch": config.max_batch,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }


def summarize_obs(payload: dict) -> str:
    """Human-readable overhead table for one obs payload."""
    lines = [f"obs suite on {payload['dataset']} "
             f"(schema {payload['schema']}, "
             f"snapshot {payload['snapshot_version']})"]
    for row in payload["results"]:
        if row["kind"] != "obs":
            continue
        lines.append(
            f"  {row['cache']:<4} {row['mode']:<7}: "
            f"{row['users_per_s']:>9,.0f} users/s  "
            f"{row['ms_per_batch']:.3f} ms/batch  "
            f"overhead {row['overhead_pct']:+.2f}%")
    return "\n".join(lines)


def summarize(payload: dict) -> str:
    """Human-readable fast-vs-reference table for one payload."""
    lines = [f"perf suite on {payload['dataset']} "
             f"(schema {payload['schema']})"]
    rows = payload["results"]
    train = [r for r in rows if r["kind"] == "train_step"]
    for fast in [r for r in train if r["fused"]]:
        ref = next((r for r in train
                    if not r["fused"] and r["model"] == fast["model"]
                    and r["loss"] == fast["loss"]), None)
        gain = (f"  ({ref['ms_per_step'] / fast['ms_per_step']:.2f}x vs "
                f"reference)") if ref else ""
        lines.append(f"  train {fast['model']}+{fast['loss']}: "
                     f"{fast['ms_per_step']:.2f} ms/step{gain}")
    evals = [r for r in rows if r["kind"] == "eval"]
    for fast in [r for r in evals if r["chunked"]]:
        ref = next((r for r in evals
                    if not r["chunked"] and r["model"] == fast["model"]),
                   None)
        gain = (f"  ({fast['users_per_s'] / ref['users_per_s']:.2f}x vs "
                f"reference)") if ref else ""
        lines.append(f"  eval  {fast['model']}: "
                     f"{fast['users_per_s']:.0f} users/s{gain}")
    return "\n".join(lines)
