"""Benchmark suite registry: one place that knows every bench.

Every performance suite in the repo — what it's called, which schema it
emits, which repo-root JSON it maintains, which result kinds and row
columns that JSON must carry, how its CLI flags parse and how it runs —
is declared here as a :class:`BenchSuite`.  Everything else derives
from the registry instead of repeating the list:

* the CLI's ``repro bench <suite>`` verb (and the legacy ``perf-*``
  aliases) come from :func:`add_bench_subparsers` /
  :func:`add_legacy_verbs`;
* ``scripts/check_bench.py`` validates the committed ``BENCH_*.json``
  files against :func:`expected_files` / :func:`required_row_fields`;
* ``make bench-<suite>`` targets invoke the registry verbs, and
  ``tests/test_bench_check.py`` / ``tests/test_ci.py`` assert the
  registry, the Makefile and the committed files stay in sync both
  ways.

The heavy harnesses (:mod:`repro.experiments.perf`,
:mod:`repro.experiments.scale_perf`) are imported lazily inside each
suite's ``run`` so ``repro --help`` stays fast.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable

from repro.data import dataset_names
from repro.losses import loss_names
from repro.models import model_names

__all__ = ["BenchSuite", "SUITES", "DEPRECATED_VERBS", "ALIAS_VERBS",
           "suite_names", "get_suite", "expected_files",
           "required_row_fields", "add_bench_subparsers",
           "add_legacy_verbs", "run_legacy", "run_legacy_perf_serve"]

#: Default request depth of the serving suites (mirrors ``repro recommend``).
DEFAULT_TOP_K = 10


@dataclass(frozen=True)
class BenchSuite:
    """One registered benchmark suite.

    ``row_fields`` lists every result kind the suite may emit (required
    kinds plus optional extras such as the serve suite's ``overlap``
    rows) with the columns each row must carry.
    """

    name: str
    help: str
    schema: str
    #: repo-root JSON file the suite maintains (``--out`` default)
    output: str
    #: result kinds the committed file must contain
    required_kinds: frozenset
    #: kind -> columns every row of that kind must carry
    row_fields: dict
    make_target: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]


# ----------------------------------------------------------------------
# Flag sets
# ----------------------------------------------------------------------
def _configure_fastpath(parser) -> None:
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--models", default="mf,lightgcn,simgcl",
                        help="comma-separated model registry names")
    parser.add_argument("--losses", default="sl,bsl",
                        help="comma-separated loss registry names")
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--steps", type=int, default=15,
                        help="timed optimizer steps per cell")
    parser.add_argument("--warmup", type=int, default=3)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--negatives", type=int, default=128)
    parser.add_argument("--eval-repeats", type=int, default=3)
    parser.add_argument("--no-reference", action="store_true",
                        help="skip the compositional/uncached baseline rows")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_fastpath.json")


def _configure_train(parser) -> None:
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--model", default="mf", choices=model_names())
    parser.add_argument("--losses", default="bpr,bsl",
                        help="comma-separated loss registry names")
    parser.add_argument("--scales", default="1,8,64",
                        help="comma-separated catalogue inflation factors")
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--steps", type=int, default=15,
                        help="timed optimizer steps per cell")
    parser.add_argument("--warmup", type=int, default=3)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--negatives", type=int, default=128)
    parser.add_argument("--sparse-mode", default="lazy",
                        choices=("lazy", "exact"),
                        help="sparse-optimizer mode for the sparse rows")
    parser.add_argument("--quality-epochs", type=int, default=16,
                        help="epochs of the end-to-end NDCG comparison")
    parser.add_argument("--no-quality", action="store_true",
                        help="skip the end-to-end quality rows")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_train.json")


def _configure_serve(parser) -> None:
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--model", default="mf", choices=model_names())
    parser.add_argument("--loss", default="bsl", choices=loss_names())
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    parser.add_argument("--batch-sizes", default="1,16,256",
                        help="comma-separated request batch sizes")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--request-users", type=int, default=1024,
                        help="request stream length per timing pass")
    parser.add_argument("--shards", default="2,4",
                        help="comma-separated shard counts for the "
                             "sharded sweep ('' to skip)")
    parser.add_argument("--partition-by", default="both",
                        choices=("user", "item", "both"),
                        help="sharded-sweep partition axes")
    parser.add_argument("--no-quantized", action="store_true",
                        help="skip the int8 index rows")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_serve.json")


def _configure_legacy_serve_extras(parser) -> None:
    """The composite ``perf-serve`` flags layered onto the serve grid."""
    parser.add_argument("--ann", action="store_true",
                        help="also sweep the IVF recall/throughput "
                             "frontier into --ann-out")
    parser.add_argument("--ann-only", action="store_true",
                        help="run only the ANN frontier (implies --ann)")
    parser.add_argument("--ann-out", default="BENCH_ann.json")
    parser.add_argument("--ann-nlists", default="8,16,32",
                        help="comma-separated IVF list counts")
    parser.add_argument("--ann-nprobes", default="1,2,4",
                        help="comma-separated probe counts")
    parser.add_argument("--ann-loss", default="bpr", choices=loss_names(),
                        help="loss of the ANN suite's trained cell "
                             "(pairwise losses cluster best; see "
                             "docs/ann.md)")
    parser.add_argument("--ann-epochs", type=int, default=25)


def _configure_ann(parser) -> None:
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    parser.add_argument("--nlists", default="8,16,32",
                        help="comma-separated IVF list counts")
    parser.add_argument("--nprobes", default="1,2,4",
                        help="comma-separated probe counts")
    parser.add_argument("--loss", default="bpr", choices=loss_names(),
                        help="loss of the trained cell (pairwise losses "
                             "cluster best; see docs/ann.md)")
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_ann.json")


def _configure_latency(parser) -> None:
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--model", default="mf", choices=model_names())
    parser.add_argument("--loss", default="bsl", choices=loss_names())
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    parser.add_argument("--start-qps", type=float, default=200.0,
                        help="offered load of the first sweep level")
    parser.add_argument("--qps-step", type=float, default=2.0,
                        help="multiplicative step between levels")
    parser.add_argument("--max-levels", type=int, default=8)
    parser.add_argument("--requests-per-level", type=int, default=512)
    parser.add_argument("--saturation-ratio", type=float, default=0.9,
                        help="stop once achieved/offered drops below")
    parser.add_argument("--slo-ms", type=float, default=50.0,
                        help="runtime p99 latency target")
    parser.add_argument("--max-queue", type=int, default=256,
                        help="admission-queue bound (sheds past it)")
    parser.add_argument("--initial-batch", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--window", type=int, default=64,
                        help="completions between batch adaptations")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_latency.json")


def _configure_obs(parser) -> None:
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--model", default="mf", choices=model_names())
    parser.add_argument("--loss", default="bsl", choices=loss_names())
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed passes per lane (best pass kept)")
    parser.add_argument("--request-users", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_obs.json")


def _configure_refresh(parser) -> None:
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--model", default="mf", choices=model_names())
    parser.add_argument("--loss", default="bsl", choices=loss_names())
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    parser.add_argument("--nlist", type=int, default=16,
                        help="inverted lists of the maintained index")
    parser.add_argument("--nprobe", type=int, default=2)
    parser.add_argument("--churn", default="0.01,0.05,0.2",
                        help="comma-separated catalogue churn fractions")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of timing repeats per clock")
    parser.add_argument("--requests", type=int, default=256,
                        help="paced lookups around each swap")
    parser.add_argument("--qps", type=float, default=2000.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_refresh.json")


def _configure_faults(parser) -> None:
    parser.add_argument("--dataset", default="yelp2018-small",
                        choices=dataset_names())
    parser.add_argument("--model", default="mf", choices=model_names())
    parser.add_argument("--loss", default="bsl", choices=loss_names())
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    parser.add_argument("--shards", type=int, default=4,
                        help="item shards (shard 1 is made faulty)")
    parser.add_argument("--requests", type=int, default=400,
                        help="sequential requests per (scenario, policy)")
    parser.add_argument("--slo-ms", type=float, default=15.0)
    parser.add_argument("--deadline-ms", type=float, default=12.0,
                        help="per-shard deadline budget across attempts")
    parser.add_argument("--hedge-ms", type=float, default=2.0)
    parser.add_argument("--retries", type=int, default=1)
    parser.add_argument("--latency-ms", type=float, default=25.0,
                        help="injected straggler sleep (slow_shard rows)")
    parser.add_argument("--rates", default="0.0,0.05,0.1,0.2",
                        help="comma-separated slow-shard fault rates")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_faults.json")


def _configure_scale(parser) -> None:
    parser.add_argument("--levels", default="scale-100k,scale-300k,scale-1m",
                        help="comma-separated scale preset names "
                             "(see `repro datasets`)")
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--steps", type=int, default=12,
                        help="timed sparse-grad steps per level")
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--negatives", type=int, default=8)
    parser.add_argument("--serve-batches", type=int, default=8)
    parser.add_argument("--serve-batch-size", type=int, default=256)
    parser.add_argument("--k", type=int, default=DEFAULT_TOP_K)
    parser.add_argument("--shards", type=int, default=4,
                        help="partitions of the exported snapshot")
    parser.add_argument("--work-dir", default=None,
                        help="keep shards/tables/snapshots here instead "
                             "of a removed temporary directory")
    parser.add_argument("--keep-work", action="store_true",
                        help="keep the temporary working directory")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_scale.json")


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def _run_fastpath(args) -> int:
    from repro.experiments.perf import (PerfConfig, run_perf_suite,
                                        summarize, write_report)
    config = PerfConfig(
        dataset=args.dataset,
        models=tuple(args.models.split(",")),
        losses=tuple(args.losses.split(",")),
        dim=args.dim, steps=args.steps, warmup=args.warmup,
        batch_size=args.batch_size, n_negatives=args.negatives,
        eval_repeats=args.eval_repeats,
        include_reference=not args.no_reference, seed=args.seed)
    payload = run_perf_suite(config)
    write_report(payload, args.out)
    print(summarize(payload))
    print(f"wrote {args.out}")
    return 0


def _run_train(args) -> int:
    from repro.experiments.perf import (TrainPerfConfig, run_train_suite,
                                        summarize_train, write_report)
    config = TrainPerfConfig(
        dataset=args.dataset, model=args.model,
        losses=tuple(args.losses.split(",")),
        catalogue_scales=tuple(int(s) for s in args.scales.split(",")),
        dim=args.dim, steps=args.steps, warmup=args.warmup,
        batch_size=args.batch_size, n_negatives=args.negatives,
        sparse_mode=args.sparse_mode,
        quality_epochs=0 if args.no_quality else args.quality_epochs,
        seed=args.seed)
    payload = run_train_suite(config)
    write_report(payload, args.out)
    print(summarize_train(payload))
    print(f"wrote {args.out}")
    return 0


def _serve_config(args):
    from repro.experiments.perf import ServePerfConfig
    shards = tuple(int(s) for s in args.shards.split(",")) \
        if args.shards else ()
    return ServePerfConfig(
        dataset=args.dataset, model=args.model, loss=args.loss,
        epochs=args.epochs, dim=args.dim, k=args.k,
        batch_sizes=tuple(int(b) for b in args.batch_sizes.split(",")),
        repeats=args.repeats, request_users=args.request_users,
        shards=shards, partition_by=args.partition_by,
        include_quantized=not args.no_quantized, seed=args.seed)


def _run_serve(args) -> int:
    from repro.experiments.perf import (run_serve_suite, summarize_serve,
                                        write_report)
    payload = run_serve_suite(_serve_config(args))
    write_report(payload, args.out)
    print(summarize_serve(payload))
    print(f"wrote {args.out}")
    return 0


def _run_ann(args) -> int:
    from repro.experiments.perf import (AnnPerfConfig, run_ann_suite,
                                        summarize_ann, write_report)
    config = AnnPerfConfig(
        dataset=args.dataset, k=args.k,
        nlists=tuple(int(n) for n in args.nlists.split(",")),
        nprobes=tuple(int(p) for p in args.nprobes.split(",")),
        loss=args.loss, epochs=args.epochs, seed=args.seed)
    payload = run_ann_suite(config)
    write_report(payload, args.out)
    print(summarize_ann(payload))
    print(f"wrote {args.out}")
    return 0


def run_legacy_perf_serve(args) -> int:
    """The composite legacy verb: serve grid plus optional ANN frontier."""
    from repro.experiments.perf import (AnnPerfConfig, run_ann_suite,
                                        run_serve_suite, summarize_ann,
                                        summarize_serve, write_report)
    if not args.ann_only:
        payload = run_serve_suite(_serve_config(args))
        write_report(payload, args.out)
        print(summarize_serve(payload))
        print(f"wrote {args.out}")
    if args.ann or args.ann_only:
        ann_config = AnnPerfConfig(
            dataset=args.dataset, k=args.k,
            nlists=tuple(int(n) for n in args.ann_nlists.split(",")),
            nprobes=tuple(int(p) for p in args.ann_nprobes.split(",")),
            loss=args.ann_loss, epochs=args.ann_epochs, seed=args.seed)
        ann_payload = run_ann_suite(ann_config)
        write_report(ann_payload, args.ann_out)
        print(summarize_ann(ann_payload))
        print(f"wrote {args.ann_out}")
    return 0


def _run_latency(args) -> int:
    from repro.experiments.perf import (LatencyPerfConfig, run_latency_suite,
                                        summarize_latency, write_report)
    config = LatencyPerfConfig(
        dataset=args.dataset, model=args.model, loss=args.loss,
        epochs=args.epochs, dim=args.dim, k=args.k,
        start_qps=args.start_qps, qps_step=args.qps_step,
        max_levels=args.max_levels,
        requests_per_level=args.requests_per_level,
        saturation_ratio=args.saturation_ratio, slo_ms=args.slo_ms,
        max_queue=args.max_queue, initial_batch=args.initial_batch,
        max_batch=args.max_batch, window=args.window, seed=args.seed)
    payload = run_latency_suite(config)
    write_report(payload, args.out)
    print(summarize_latency(payload))
    print(f"wrote {args.out}")
    return 0


def _run_obs(args) -> int:
    from repro.experiments.perf import (ObsPerfConfig, run_obs_suite,
                                        summarize_obs, write_report)
    config = ObsPerfConfig(
        dataset=args.dataset, model=args.model, loss=args.loss,
        epochs=args.epochs, dim=args.dim, k=args.k,
        batch_size=args.batch_size, repeats=args.repeats,
        request_users=args.request_users, seed=args.seed)
    payload = run_obs_suite(config)
    write_report(payload, args.out)
    print(summarize_obs(payload))
    print(f"wrote {args.out}")
    return 0


def _run_refresh(args) -> int:
    from repro.experiments.perf import (RefreshPerfConfig, run_refresh_suite,
                                        summarize_refresh, write_report)
    config = RefreshPerfConfig(
        dataset=args.dataset, model=args.model, loss=args.loss,
        epochs=args.epochs, dim=args.dim, k=args.k, nlist=args.nlist,
        nprobe=args.nprobe,
        churn_fractions=tuple(float(f) for f in args.churn.split(",")),
        repeats=args.repeats, requests=args.requests, qps=args.qps,
        seed=args.seed)
    payload = run_refresh_suite(config)
    write_report(payload, args.out)
    print(summarize_refresh(payload))
    print(f"wrote {args.out}")
    return 0


def _run_faults(args) -> int:
    from repro.experiments.faults_perf import (FaultsPerfConfig,
                                               run_faults_suite,
                                               summarize_faults)
    from repro.experiments.perf import write_report
    config = FaultsPerfConfig(
        dataset=args.dataset, model=args.model, loss=args.loss,
        epochs=args.epochs, dim=args.dim, k=args.k, shards=args.shards,
        requests=args.requests, slo_ms=args.slo_ms,
        deadline_ms=args.deadline_ms, hedge_ms=args.hedge_ms,
        retries=args.retries, latency_ms=args.latency_ms,
        fault_rates=tuple(float(r) for r in args.rates.split(",")),
        seed=args.seed)
    payload = run_faults_suite(config)
    write_report(payload, args.out)
    print(summarize_faults(payload))
    print(f"wrote {args.out}")
    return 0


def _run_scale(args) -> int:
    from repro.experiments.perf import write_report
    from repro.experiments.scale_perf import (ScalePerfConfig,
                                              run_scale_suite,
                                              summarize_scale)
    config = ScalePerfConfig(
        levels=tuple(args.levels.split(",")),
        dim=args.dim, steps=args.steps, warmup=args.warmup,
        batch_size=args.batch_size, n_negatives=args.negatives,
        serve_batches=args.serve_batches,
        serve_batch_size=args.serve_batch_size, k=args.k,
        shards=args.shards, seed=args.seed, work_dir=args.work_dir,
        keep_work=args.keep_work)
    payload = run_scale_suite(config)
    write_report(payload, args.out)
    print(summarize_scale(payload))
    print(f"wrote {args.out}")
    return 0


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
SUITES = {suite.name: suite for suite in (
    BenchSuite(
        name="fastpath",
        help="time train/eval throughput per (model, loss) cell",
        schema="bsl-fastpath-bench/v1",
        output="BENCH_fastpath.json",
        required_kinds=frozenset({"train_step", "eval"}),
        row_fields={
            "train_step": {"model", "loss", "fused", "steps", "ms_per_step",
                           "steps_per_s"},
            "eval": {"model", "chunked", "users", "users_per_s"},
        },
        make_target="bench-fastpath",
        configure=_configure_fastpath,
        run=_run_fastpath),
    BenchSuite(
        name="train",
        help="sweep the dense-vs-sparse training-throughput frontier",
        schema="bsl-train-bench/v1",
        output="BENCH_train.json",
        required_kinds=frozenset({"train_throughput", "train_quality"}),
        row_fields={
            "train_throughput": {"model", "loss", "grad_mode", "num_items",
                                 "catalogue_scale", "batch_size",
                                 "n_negatives", "ms_per_step",
                                 "steps_per_s"},
            "train_quality": {"model", "loss", "grad_mode", "sparse_mode",
                              "epochs", "ndcg_at_20"},
        },
        make_target="bench-train",
        configure=_configure_train,
        run=_run_train),
    BenchSuite(
        name="serve",
        help="time snapshot serving throughput, unsharded and sharded",
        schema="bsl-serve-bench/v2",
        output="BENCH_serve.json",
        required_kinds=frozenset({"serve", "serve_sharded"}),
        row_fields={
            "serve": {"index", "cache", "batch_size", "k", "users_per_s",
                      "ms_per_batch", "cache_hit_rate"},
            "serve_sharded": {"index", "shards", "partition_by", "strategy",
                              "batch_size", "k", "users_per_s",
                              "merge_overhead_ms", "merge_fraction",
                              "per_shard_bytes"},
            "overlap": {"index", "k", "overlap_at_k", "table_bytes",
                        "exact_table_bytes"},
        },
        make_target="bench-serve",
        configure=_configure_serve,
        run=_run_serve),
    BenchSuite(
        name="ann",
        help="sweep the IVF recall/throughput frontier",
        schema="bsl-ann-bench/v1",
        output="BENCH_ann.json",
        required_kinds=frozenset({"ann", "ann_baseline"}),
        row_fields={
            "ann": {"index", "nlist", "nprobe", "recall", "users_per_s",
                    "k", "batch_size", "candidates_mean",
                    "speedup_vs_exact"},
            "ann_baseline": {"index", "users_per_s", "k", "batch_size"},
        },
        make_target="bench-ann",
        configure=_configure_ann,
        run=_run_ann),
    BenchSuite(
        name="latency",
        help="sweep offered load through the async serving runtime",
        schema="bsl-latency-bench/v1",
        output="BENCH_latency.json",
        required_kinds=frozenset({"latency"}),
        row_fields={
            "latency": {"index", "offered_qps", "achieved_qps", "p50_ms",
                        "p99_ms", "shed_rate", "k", "slo_ms",
                        "mean_queue_ms", "mean_service_ms"},
        },
        make_target="bench-latency",
        configure=_configure_latency,
        run=_run_latency),
    BenchSuite(
        name="refresh",
        help="sweep catalogue churn through the live-refresh path",
        schema="bsl-refresh-bench/v1",
        output="BENCH_refresh.json",
        required_kinds=frozenset({"refresh"}),
        row_fields={
            "refresh": {"churn_fraction", "rows_changed", "delta_apply_ms",
                        "ivf_update_ms", "ivf_rebuild_ms", "swap_pause_ms",
                        "requests_during_swap", "errors"},
        },
        make_target="bench-refresh",
        configure=_configure_refresh,
        run=_run_refresh),
    BenchSuite(
        name="obs",
        help="measure serving overhead of the telemetry layer "
             "(off / metrics / metrics+tracing lanes)",
        schema="bsl-obs-bench/v1",
        output="BENCH_obs.json",
        required_kinds=frozenset({"obs"}),
        row_fields={
            "obs": {"mode", "cache", "batch_size", "k", "users_per_s",
                    "ms_per_batch", "overhead_pct"},
        },
        make_target="bench-obs",
        configure=_configure_obs,
        run=_run_obs),
    BenchSuite(
        name="faults",
        help="availability and tail latency under injected shard "
             "faults, with and without hedging + circuit breakers",
        schema="bsl-faults-bench/v1",
        output="BENCH_faults.json",
        required_kinds=frozenset({"faults"}),
        row_fields={
            "faults": {"scenario", "policy", "fault_rate", "fault_kind",
                       "requests", "availability", "degraded_rate",
                       "error_rate", "p50_ms", "p99_ms", "retries",
                       "hedges", "hedge_wins", "shard_failures",
                       "breaker_open_skips", "k", "shards", "slo_ms",
                       "deadline_ms"},
        },
        make_target="bench-faults",
        configure=_configure_faults,
        run=_run_faults),
    BenchSuite(
        name="scale",
        help="out-of-core million-scale pipeline: step time and peak "
             "RSS vs catalogue size",
        schema="bsl-scale-bench/v1",
        output="BENCH_scale.json",
        required_kinds=frozenset({"scale"}),
        row_fields={
            "scale": {"level", "num_users", "num_items", "catalogue",
                      "num_train", "dim", "batch_size", "n_negatives",
                      "steps", "ms_per_step", "users_per_s",
                      "peak_rss_mb", "est_dense_bytes", "shard_bytes"},
        },
        make_target="bench-scale",
        configure=_configure_scale,
        run=_run_scale),
)}

#: legacy verb -> suite name, still parsed but steered to ``repro bench``
DEPRECATED_VERBS = {"perf": "fastpath", "perf-train": "train",
                    "perf-serve": "serve", "perf-latency": "latency",
                    "perf-refresh": "refresh"}

#: every top-level alias verb (``perf-scale`` is a supported shorthand,
#: not deprecated)
ALIAS_VERBS = {**DEPRECATED_VERBS, "perf-scale": "scale"}


def suite_names() -> list[str]:
    """Registered suite names, in registry order."""
    return list(SUITES)


def get_suite(name: str) -> BenchSuite:
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(f"unknown bench suite {name!r} "
                       f"(registered: {suite_names()})") from None


def expected_files() -> dict:
    """``filename -> (schema, required result kinds)`` for the validator."""
    return {suite.output: (suite.schema, set(suite.required_kinds))
            for suite in SUITES.values()}


def required_row_fields() -> dict:
    """``kind -> required columns`` merged across every suite."""
    fields = {}
    for suite in SUITES.values():
        for kind, columns in suite.row_fields.items():
            fields[kind] = set(columns)
    return fields


def add_bench_subparsers(sub) -> None:
    """Attach one ``repro bench <suite>`` subcommand per registry entry."""
    for suite in SUITES.values():
        parser = sub.add_parser(
            suite.name,
            help=f"{suite.help} -> {suite.output} "
                 f"(`make {suite.make_target}`)")
        suite.configure(parser)


def add_legacy_verbs(sub) -> None:
    """Attach the ``perf-*`` top-level aliases to the root subparsers."""
    for verb, suite_name in ALIAS_VERBS.items():
        suite = SUITES[suite_name]
        if verb in DEPRECATED_VERBS:
            help_text = (f"(deprecated alias of `repro bench {suite_name}`) "
                         f"{suite.help}")
        else:
            help_text = f"alias of `repro bench {suite_name}`: {suite.help}"
        parser = sub.add_parser(verb, help=help_text)
        suite.configure(parser)
        if verb == "perf-serve":
            _configure_legacy_serve_extras(parser)


def run_legacy(verb: str, args) -> int:
    """Dispatch a legacy ``perf-*`` verb through the registry."""
    suite_name = ALIAS_VERBS[verb]
    if verb in DEPRECATED_VERBS:
        print(f"note: `repro {verb}` is deprecated; "
              f"use `repro bench {suite_name}`", file=sys.stderr)
    if verb == "perf-serve":
        return run_legacy_perf_serve(args)
    return SUITES[suite_name].run(args)
