"""Experiment harness: declarative specs -> trained model + metrics.

Each bench (one per paper table/figure) builds a list of
:class:`ExperimentSpec` values and calls :func:`run_experiment`.  The
spec captures everything that varies across the paper's sweeps: the
dataset, backbone, loss and its temperatures, the sampler and its noise
level, positive-noise injection, embedding size and the training
budget.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.noise import inject_positive_noise
from repro.data.synthetic import load_dataset
from repro.dro.variance import (MeanVarianceSoftmaxLoss,
                                VarianceAblatedSoftmaxLoss)
from repro.eval.evaluator import Evaluator
from repro.losses.registry import get_loss
from repro.models.base import Recommender
from repro.models.registry import get_model
from repro.train.config import TrainConfig
from repro.train.trainer import Trainer

__all__ = ["ExperimentSpec", "ExperimentResult", "run_experiment",
           "build_components", "collect_negative_scores"]

# Analysis losses that live outside the public registry.
_EXTRA_LOSSES = {
    "sl-novar": VarianceAblatedSoftmaxLoss,
    "sl-meanvar": MeanVarianceSoftmaxLoss,
}


@dataclass
class ExperimentSpec:
    """One experiment cell (a point in a paper table/figure)."""

    dataset: str = "yelp2018-small"
    model: str = "mf"
    loss: str = "sl"
    model_kwargs: dict = field(default_factory=dict)
    loss_kwargs: dict = field(default_factory=dict)
    dim: int = 64
    epochs: int = 25
    batch_size: int = 1024
    learning_rate: float = 5e-2
    weight_decay: float = 1e-6
    n_negatives: int = 128
    sampler: str = "uniform"
    #: false-negative intensity at sampling time (Figs. 3/8)
    rnoise: float = 0.0
    #: fraction of fake positives injected into the train split (RQ3)
    positive_noise: float = 0.0
    eval_ks: tuple = (20,)
    seed: int = 0

    def key(self) -> str:
        """Stable string identity (used for caching and logs)."""
        payload = asdict(self)
        payload["eval_ks"] = list(self.eval_ks)
        return json.dumps(payload, sort_keys=True)


@dataclass
class ExperimentResult:
    """Trained model plus its evaluation."""

    spec: ExperimentSpec
    metrics: dict[str, float]
    model: Recommender
    dataset: InteractionDataset
    train_dataset: InteractionDataset
    loss_history: list[float]

    def metric(self, name: str) -> float:
        return self.metrics[name]


def build_components(spec: ExperimentSpec
                     ) -> tuple[InteractionDataset, InteractionDataset,
                                Recommender, object]:
    """Materialize (clean_dataset, train_dataset, model, loss) for a spec.

    ``train_dataset`` differs from ``clean_dataset`` only when
    ``positive_noise > 0``; evaluation always runs against the clean
    test split (the paper's protocol).
    """
    clean = load_dataset(spec.dataset)
    train_ds = clean
    if spec.positive_noise > 0:
        train_ds = inject_positive_noise(clean, spec.positive_noise,
                                         rng=spec.seed + 1)
    model = get_model(spec.model, train_ds, dim=spec.dim, rng=spec.seed,
                      **spec.model_kwargs)
    if spec.loss in _EXTRA_LOSSES:
        loss = _EXTRA_LOSSES[spec.loss](**spec.loss_kwargs)
    else:
        loss = get_loss(spec.loss, **spec.loss_kwargs)
    return clean, train_ds, model, loss


def run_experiment(spec: ExperimentSpec, verbose: bool = False
                   ) -> ExperimentResult:
    """Train the spec's model and evaluate it on the clean test split."""
    clean, train_ds, model, loss = build_components(spec)
    config = TrainConfig(
        epochs=spec.epochs, batch_size=spec.batch_size,
        learning_rate=spec.learning_rate, weight_decay=spec.weight_decay,
        n_negatives=spec.n_negatives, sampler=spec.sampler,
        rnoise=spec.rnoise, seed=spec.seed, verbose=verbose)
    trainer = Trainer(model, loss, train_ds, config)
    train_result = trainer.fit()
    evaluator = Evaluator(clean, ks=spec.eval_ks)
    metrics = evaluator.evaluate(model).metrics
    return ExperimentResult(spec=spec, metrics=metrics, model=model,
                            dataset=clean, train_dataset=train_ds,
                            loss_history=train_result.loss_history)


def collect_negative_scores(result: ExperimentResult, n_users: int = 64,
                            n_negatives: int = 256, seed: int = 0,
                            rnoise: float | None = None) -> np.ndarray:
    """Sample a (n_users, n_negatives) matrix of negative scores.

    Shared helper for the DRO analyses (Figs. 3b / 4b): scores are the
    model's values on items drawn from the *training-time negative
    sampling distribution* ``P-_u`` — i.e. including false negatives at
    the experiment's ``rnoise`` rate, exactly the distribution whose
    variance enters Corollary III.1.

    Parameters
    ----------
    rnoise:
        False-negative intensity of the sampling distribution; defaults
        to the spec's training value.
    """
    rng = np.random.default_rng(seed)
    dataset = result.dataset
    if rnoise is None:
        rnoise = result.spec.rnoise
    users = rng.choice(dataset.num_users, size=min(n_users, dataset.num_users),
                       replace=False)
    scores = result.model.predict_scores(user_ids=users)
    mask = dataset.positive_mask()[users]
    out = np.empty((len(users), n_negatives))
    for row, user in enumerate(users):
        negatives = np.flatnonzero(~mask[row])
        positives = dataset.train_items_by_user[user]
        if rnoise > 0 and len(positives):
            n_pos, n_neg = len(positives), len(negatives)
            p_pos = rnoise * n_pos / (rnoise * n_pos + n_neg)
            from_pos = rng.random(n_negatives) < p_pos
            chosen = rng.choice(negatives, size=n_negatives,
                                replace=len(negatives) < n_negatives)
            k = int(from_pos.sum())
            if k:
                chosen[from_pos] = rng.choice(positives, size=k)
        else:
            chosen = rng.choice(negatives, size=n_negatives,
                                replace=len(negatives) < n_negatives)
        out[row] = scores[row, chosen]
    return out
