"""ASCII reporting helpers: tables and series matching the paper rows.

Benches print their reproduction next to the paper's reference numbers
so EXPERIMENTS.md can be filled by reading bench output.
"""

from __future__ import annotations

__all__ = ["format_table", "print_table", "print_series", "print_header",
           "relative_gain"]


def format_table(headers: list[str], rows: list[list], precision: int = 4
                 ) -> str:
    """Render a fixed-width ASCII table."""
    rendered = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
              for i, h in enumerate(headers)]
    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    out = [line(headers), sep]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def _fmt(cell, precision: int) -> str:
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def print_table(title: str, headers: list[str], rows: list[list],
                precision: int = 4) -> None:
    print_header(title)
    print(format_table(headers, rows, precision))
    print()


def print_series(name: str, xs, ys, precision: int = 4) -> None:
    """Print one figure series as aligned x/y pairs."""
    pairs = "  ".join(
        f"({_fmt(x, precision)}, {_fmt(y, precision)})" for x, y in zip(xs, ys))
    print(f"{name}: {pairs}")


def print_header(title: str) -> None:
    bar = "=" * max(8, len(title))
    print(f"\n{bar}\n{title}\n{bar}")


def relative_gain(new: float, base: float) -> float:
    """Percentage improvement of ``new`` over ``base``."""
    if base == 0:
        return float("inf") if new > 0 else 0.0
    return 100.0 * (new - base) / base
