"""Out-of-core scale bench: step time + peak RSS vs catalogue size.

Each level of the sweep runs the full million-scale pipeline from
``docs/scale.md`` end to end in a **fresh subprocess per phase**:

* ``gen`` — stream the power-law catalogue to interaction shards
  (:func:`repro.data.synthetic.generate_scale_shards`);
* ``prepare`` — draw the Xavier MF tables chunk-by-chunk into ``.npy``
  memmaps (:func:`repro.train.outofcore.init_mmap_mf_tables`);
* ``train`` — stream sparse-grad training steps from the shards through
  the mmap-backed model and time them;
* ``export`` — freeze the on-disk tables into a sharded serving
  snapshot without dense intermediates
  (:func:`repro.serve.export_sharded_source_snapshot`);
* ``serve`` — answer batched top-K requests from the mmap'd snapshot
  through the scatter-gather router.

``ru_maxrss`` is a *process-lifetime* high-water mark, so only phase
isolation gives an honest per-phase peak: the parent never touches a
table, and each child's RSS is exactly that phase's footprint.  The
headline ``peak_rss_mb`` column is the training phase's peak — the
number that must stay sub-linear in the catalogue for the out-of-core
claim to hold (``est_dense_bytes`` records what the in-memory dataset's
positive mask alone would cost).

CLI: ``python -m repro.cli bench scale`` (or the ``perf-scale`` alias /
``make bench-scale``) writes ``BENCH_scale.json``; the committed file is
validated by ``scripts/check_bench.py`` and pinned by
``tests/test_scale_bench.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field

__all__ = ["SCALE_SCHEMA", "ScalePerfConfig", "run_scale_suite",
           "run_scale_phase", "summarize_scale"]

#: Schema of the out-of-core scale payload (``BENCH_scale.json``).
SCALE_SCHEMA = "bsl-scale-bench/v1"

#: Phase order of one level; each runs in its own subprocess.
PHASES = ("gen", "prepare", "train", "export", "serve")


@dataclass
class ScalePerfConfig:
    """Knobs for one out-of-core scale sweep.

    ``levels`` entries are either scale preset names
    (:data:`repro.data.synthetic.SCALE_PRESETS`) or explicit
    :class:`~repro.data.synthetic.ScaleConfig` instances (how the tests
    run a tiny end-to-end sweep).
    """

    levels: tuple = ("scale-100k", "scale-300k", "scale-1m")
    dim: int = 16
    steps: int = 12
    warmup: int = 2
    batch_size: int = 1024
    n_negatives: int = 8
    serve_batches: int = 8
    serve_batch_size: int = 256
    k: int = 10
    shards: int = 4
    seed: int = 0
    #: working directory for shards/tables/snapshots (None = a fresh
    #: temporary directory, removed afterwards unless ``keep_work``)
    work_dir: str | None = None
    keep_work: bool = False
    extra_info: dict = field(default_factory=dict)


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS in MiB (0.0 where unsupported)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0.0
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes, Linux KiB
        peak_kib /= 1024
    return peak_kib / 1024


def _dir_bytes(path: pathlib.Path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def _level_paths(work_dir: pathlib.Path) -> dict:
    return {"config": work_dir / "config.json",
            "shards": work_dir / "shards",
            "tables": work_dir / "tables",
            "snapshot": work_dir / "snapshot"}


# ----------------------------------------------------------------------
# Child side: one phase per process
# ----------------------------------------------------------------------
def run_scale_phase(phase: str, work_dir: str | pathlib.Path) -> dict:
    """Run one pipeline phase against a prepared level directory.

    Reads the level's ``config.json`` (written by
    :func:`run_scale_suite`), does the phase's work and returns its
    measurements — including this process's ``peak_rss_mb``, which is
    only meaningful when the phase runs alone in a fresh process.
    """
    from repro.experiments.perf import clamp_elapsed

    paths = _level_paths(pathlib.Path(work_dir))
    spec = json.loads(paths["config"].read_text())
    run = spec["run"]
    start = time.perf_counter()

    if phase == "gen":
        from repro.data.synthetic import ScaleConfig, generate_scale_shards
        source = generate_scale_shards(ScaleConfig(**spec["scale"]),
                                       paths["shards"])
        return {"phase": phase,
                "num_users": source.num_users,
                "num_items": source.num_items,
                "num_train": source.num_train,
                "elapsed_s": clamp_elapsed(time.perf_counter() - start),
                "shard_bytes": _dir_bytes(paths["shards"]),
                "peak_rss_mb": _peak_rss_mb()}

    if phase == "prepare":
        from repro.data.source import ShardedInteractionSource
        from repro.train.outofcore import init_mmap_mf_tables
        source = ShardedInteractionSource(paths["shards"])
        init_mmap_mf_tables(paths["tables"], source.num_users,
                            source.num_items, run["dim"], rng=run["seed"])
        return {"phase": phase,
                "elapsed_s": clamp_elapsed(time.perf_counter() - start),
                "table_bytes": _dir_bytes(paths["tables"]),
                "peak_rss_mb": _peak_rss_mb()}

    if phase == "train":
        from repro.data.source import ShardedInteractionSource
        from repro.losses.registry import get_loss
        from repro.train.config import TrainConfig
        from repro.train.outofcore import flush_model, open_mmap_mf
        from repro.train.trainer import Trainer
        source = ShardedInteractionSource(paths["shards"])
        model = open_mmap_mf(paths["tables"])
        trainer = Trainer(model, get_loss("bsl"), source, TrainConfig(
            epochs=1, batch_size=run["batch_size"],
            n_negatives=run["n_negatives"], grad_mode="sparse",
            seed=run["seed"]))

        def batches():
            while True:  # tiny levels may need more than one epoch
                yield from trainer.sampler.epoch()

        stream = batches()
        for _ in range(run["warmup"]):
            trainer.train_step(next(stream))
        t0 = time.perf_counter()
        for _ in range(run["steps"]):
            trainer.train_step(next(stream))
        timed = clamp_elapsed(time.perf_counter() - t0)
        trainer.optimizer.flush()
        flush_model(model)
        pairs = run["steps"] * run["batch_size"]
        return {"phase": phase,
                "ms_per_step": 1e3 * timed / run["steps"],
                "users_per_s": pairs / timed,
                "elapsed_s": clamp_elapsed(time.perf_counter() - start),
                "peak_rss_mb": _peak_rss_mb()}

    if phase == "export":
        import numpy as np

        from repro.data.source import ShardedInteractionSource
        from repro.serve import export_sharded_source_snapshot
        from repro.train.outofcore import ITEM_TABLE, USER_TABLE
        source = ShardedInteractionSource(paths["shards"])
        users = np.load(paths["tables"] / USER_TABLE, mmap_mode="r")
        items = np.load(paths["tables"] / ITEM_TABLE, mmap_mode="r")
        export_sharded_source_snapshot(
            users, items, source, paths["snapshot"], shards=run["shards"],
            extra={"level": spec["scale"]["name"]})
        return {"phase": phase,
                "elapsed_s": clamp_elapsed(time.perf_counter() - start),
                "snapshot_bytes": _dir_bytes(paths["snapshot"]),
                "peak_rss_mb": _peak_rss_mb()}

    if phase == "serve":
        import numpy as np

        from repro.serve import (ShardedRecommendationService,
                                 load_sharded_snapshot)
        snapshot = load_sharded_snapshot(paths["snapshot"])
        service = ShardedRecommendationService(snapshot)
        rng = np.random.default_rng(run["seed"])
        batch, k = run["serve_batch_size"], run["k"]
        users = rng.integers(0, snapshot.manifest.num_users,
                             size=run["serve_batches"] * batch)
        service.recommend(users[:batch].tolist(), k=k)  # warm the index
        t0 = time.perf_counter()
        for lo in range(0, users.size, batch):
            service.recommend(users[lo:lo + batch].tolist(), k=k)
        timed = clamp_elapsed(time.perf_counter() - t0)
        return {"phase": phase,
                "users_per_s": users.size / timed,
                "elapsed_s": clamp_elapsed(time.perf_counter() - start),
                "peak_rss_mb": _peak_rss_mb()}

    raise ValueError(f"unknown scale phase {phase!r} "
                     f"(expected one of {PHASES})")


# ----------------------------------------------------------------------
# Parent side: orchestrate levels x phases
# ----------------------------------------------------------------------
def _child_env() -> dict:
    """Environment for phase subprocesses: ensure ``repro`` is importable."""
    import repro
    src_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src_root}:{existing}" if existing else src_root
    return env


def _run_phase_subprocess(phase: str, work_dir: pathlib.Path,
                          env: dict) -> dict:
    cmd = [sys.executable, "-m", "repro.experiments.scale_perf",
           "--phase", phase, "--work-dir", str(work_dir)]
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale phase {phase!r} failed ({proc.returncode}):\n"
            f"{proc.stderr.strip()[-2000:]}")
    # The phase result is the last stdout line; anything above it is
    # incidental logging from the phase's imports.
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _resolve_level(level):
    from repro.data.synthetic import SCALE_PRESETS, ScaleConfig
    if isinstance(level, ScaleConfig):
        return level
    try:
        return SCALE_PRESETS[level]
    except KeyError:
        raise KeyError(f"unknown scale level {level!r} (presets: "
                       f"{sorted(SCALE_PRESETS)})") from None


def run_scale_suite(config: ScalePerfConfig | None = None) -> dict:
    """Sweep the out-of-core pipeline over catalogue sizes; return payload.

    Emits one ``scale`` row per level with the training-phase step time
    and throughput, per-phase peak RSS, shard/snapshot footprints and
    the dense-baseline estimate.
    """
    config = config or ScalePerfConfig()
    levels = [_resolve_level(level) for level in config.levels]
    root = pathlib.Path(config.work_dir) if config.work_dir else \
        pathlib.Path(tempfile.mkdtemp(prefix="repro-scale-bench-"))
    ephemeral = config.work_dir is None
    env = _child_env()
    run_spec = {"dim": config.dim, "steps": config.steps,
                "warmup": config.warmup, "batch_size": config.batch_size,
                "n_negatives": config.n_negatives,
                "serve_batches": config.serve_batches,
                "serve_batch_size": config.serve_batch_size,
                "k": config.k, "shards": config.shards,
                "seed": config.seed}
    results = []
    try:
        for cfg in levels:
            level_dir = root / cfg.name
            level_dir.mkdir(parents=True, exist_ok=True)
            _level_paths(level_dir)["config"].write_text(json.dumps(
                {"scale": asdict(cfg), "run": run_spec}, indent=2) + "\n")
            by_phase = {}
            for phase in PHASES:
                by_phase[phase] = _run_phase_subprocess(phase, level_dir,
                                                        env)
            gen, train = by_phase["gen"], by_phase["train"]
            results.append({
                "kind": "scale",
                "level": cfg.name,
                "num_users": gen["num_users"],
                "num_items": gen["num_items"],
                "catalogue": gen["num_users"] + gen["num_items"],
                "num_train": gen["num_train"],
                "dim": config.dim,
                "batch_size": config.batch_size,
                "n_negatives": config.n_negatives,
                "steps": config.steps,
                "ms_per_step": train["ms_per_step"],
                "users_per_s": train["users_per_s"],
                "peak_rss_mb": train["peak_rss_mb"],
                "gen_s": gen["elapsed_s"],
                "gen_peak_rss_mb": gen["peak_rss_mb"],
                "prepare_peak_rss_mb": by_phase["prepare"]["peak_rss_mb"],
                "export_s": by_phase["export"]["elapsed_s"],
                "export_peak_rss_mb": by_phase["export"]["peak_rss_mb"],
                "serve_users_per_s": by_phase["serve"]["users_per_s"],
                "serve_peak_rss_mb": by_phase["serve"]["peak_rss_mb"],
                # What the in-memory dataset's boolean positive mask
                # alone would cost — the dense state the sharded source
                # replaces (1 byte per user x item cell).
                "est_dense_bytes": gen["num_users"] * gen["num_items"],
                "shard_bytes": gen["shard_bytes"],
                "snapshot_bytes": by_phase["export"]["snapshot_bytes"],
            })
            if ephemeral and not config.keep_work:
                shutil.rmtree(level_dir, ignore_errors=True)
    finally:
        if ephemeral and not config.keep_work:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "schema": SCALE_SCHEMA,
        "created_unix": time.time(),
        "dataset": ",".join(cfg.name for cfg in levels),
        "config": {"levels": [cfg.name for cfg in levels],
                   **run_spec, **config.extra_info},
        "results": results,
    }


def summarize_scale(payload: dict) -> str:
    """One line per level: throughput and the RSS-vs-catalogue story."""
    lines = ["out-of-core scale frontier (train-phase peak RSS):"]
    for row in payload["results"]:
        dense_mb = row["est_dense_bytes"] / 2**20
        lines.append(
            f"  {row['level']:>12}: {row['num_users']:>9,} users x "
            f"{row['num_items']:>9,} items ({row['num_train']:,} pairs)  "
            f"{row['ms_per_step']:8.2f} ms/step  "
            f"{row['users_per_s']:>10,.0f} users/s  "
            f"peak RSS {row['peak_rss_mb']:7.1f} MB "
            f"(dense mask alone: {dense_mb:,.0f} MB)")
    return "\n".join(lines)


def _main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.scale_perf",
        description="run one out-of-core scale phase (internal runner "
                    "spawned by run_scale_suite)")
    parser.add_argument("--phase", required=True, choices=PHASES)
    parser.add_argument("--work-dir", required=True)
    args = parser.parse_args(argv)
    result = run_scale_phase(args.phase, args.work_dir)
    print(json.dumps(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
