"""Per-figure/table experiment presets.

Each ``*_specs`` function returns the labelled grid of
:class:`~repro.experiments.harness.ExperimentSpec` cells one bench
consumes.  Budgets (epochs, #datasets in sweeps) are scaled to keep the
full bench suite runnable on a laptop; deviations from the paper's
setup are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentSpec

__all__ = [
    "ALL_DATASETS", "LOSS_GRID", "tuned_loss_kwargs",
    "fig1_specs", "table2_specs", "table3_specs", "table4_specs",
    "fig3_specs", "fig6_specs", "fig7_specs", "fig8_specs", "fig9_specs",
    "fig12_specs", "fig13_specs",
]

ALL_DATASETS = ["amazon-small", "yelp2018-small", "gowalla-small",
                "ml1m-small"]

#: losses compared in Fig. 1 / Table II, with calibrated hyperparameters
#: (the paper grid-searches per dataset; one good setting suffices for
#: shape reproduction and keeps the suite fast).
LOSS_GRID: dict[str, dict] = {
    "bpr": {},
    "bce": {"scale": 0.2},
    "mse": {},
    "sl": {"tau": 0.4},
    "bsl": {"tau1": 0.44, "tau2": 0.4},
}

#: default temperatures used when a bench needs "the tuned SL/BSL".
#: Calibrated by grid search on the noisy presets (the paper grid-
#: searches τ per dataset; 0.4 is the cross-dataset optimum here).
_TUNED_TAU = 0.4
_EPOCHS_MF = 25
_EPOCHS_GCN = 18
_EPOCHS_SSL = 12


def tuned_loss_kwargs(loss: str, positive_noise: float = 0.0) -> dict:
    """Calibrated loss kwargs; BSL widens τ1/τ2 under positive noise.

    Mirrors the paper's observation (Sec. V-D) that the best ratio grows
    with the positive-noise level: 1.1 on the (already mildly noisy)
    presets, drifting up as extra noise is injected.
    """
    if loss == "sl":
        return {"tau": _TUNED_TAU}
    if loss == "bsl":
        ratio = 1.1 + 0.125 * positive_noise  # 1.1 clean -> 1.15 at 40%
        return {"tau1": _TUNED_TAU * ratio, "tau2": _TUNED_TAU}
    return dict(LOSS_GRID.get(loss, {}))


def _base_spec(dataset: str, model: str, loss: str, loss_kwargs: dict,
               **overrides) -> ExperimentSpec:
    epochs = _EPOCHS_MF
    if model in ("ngcf", "lightgcn"):
        epochs = _EPOCHS_GCN
    if model in ("sgl", "simgcl", "lightgcl"):
        epochs = _EPOCHS_SSL
    defaults = dict(dataset=dataset, model=model, loss=loss,
                    loss_kwargs=dict(loss_kwargs), epochs=epochs,
                    batch_size=1024, learning_rate=5e-2, n_negatives=128)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


# ----------------------------------------------------------------------
# Fig. 1 — SL vs pointwise/pairwise losses on MF and LightGCN
# ----------------------------------------------------------------------
def fig1_specs() -> dict[tuple[str, str, str], ExperimentSpec]:
    """(dataset, model, loss) -> spec for Yelp2018 and Amazon."""
    specs = {}
    for dataset in ("yelp2018-small", "amazon-small"):
        for model in ("mf", "lightgcn"):
            for loss in ("bpr", "mse", "bce", "sl"):
                specs[(dataset, model, loss)] = _base_spec(
                    dataset, model, loss, LOSS_GRID[loss])
    return specs


# ----------------------------------------------------------------------
# Table II — overall comparison (3 backbones x 5 losses x 4 datasets
# plus standalone baselines)
# ----------------------------------------------------------------------
def table2_specs() -> dict[tuple[str, str], ExperimentSpec]:
    """(dataset, row_label) -> spec.

    Row labels follow the paper: "MF+BPR", ..., "LGN+BSL" for the
    loss-swap grid and bare model names for the standalone baselines.
    """
    specs = {}
    backbones = {"MF": "mf", "NGCF": "ngcf", "LGN": "lightgcn"}
    for dataset in ALL_DATASETS:
        for label, model in backbones.items():
            for loss in ("bpr", "bce", "mse", "sl", "bsl"):
                specs[(dataset, f"{label}+{loss.upper()}")] = _base_spec(
                    dataset, model, loss, LOSS_GRID[loss])
        # Standalone baselines with their native objectives.
        specs[(dataset, "CML")] = _base_spec(
            dataset, "cml", "hinge", {"margin": 0.5}, learning_rate=1e-2)
        specs[(dataset, "ENMF")] = _base_spec(dataset, "enmf", "mse", {})
        specs[(dataset, "SGL")] = _base_spec(dataset, "sgl", "bpr", {})
        specs[(dataset, "SimGCL")] = _base_spec(dataset, "simgcl", "bpr", {})
        specs[(dataset, "LightGCL")] = _base_spec(dataset, "lightgcl",
                                                  "bpr", {})
    return specs


# ----------------------------------------------------------------------
# Table III — SL/BSL on the SSL SOTA models
# ----------------------------------------------------------------------
def table3_specs() -> dict[tuple[str, str, str], ExperimentSpec]:
    """(dataset, model, variant) -> spec; variant in {base, sl, bsl}."""
    specs = {}
    variant_losses = {"base": ("bpr", {}),
                      "sl": ("sl", {"tau": _TUNED_TAU}),
                      "bsl": ("bsl", {"tau1": _TUNED_TAU * 1.1,
                                      "tau2": _TUNED_TAU})}
    for dataset in ALL_DATASETS:
        for model in ("sgl", "simgcl", "lightgcl"):
            for variant, (loss, kwargs) in variant_losses.items():
                specs[(dataset, model, variant)] = _base_spec(
                    dataset, model, loss, kwargs)
    return specs


# ----------------------------------------------------------------------
# Fig. 3 — tau sweep across negative-noise levels (Yelp2018)
# ----------------------------------------------------------------------
def fig3_specs(dataset: str = "yelp2018-small"
               ) -> dict[tuple[float, float], ExperimentSpec]:
    """(rnoise, tau) -> spec for the robustness/temperature landscape."""
    taus = [0.2, 0.3, 0.4, 0.6, 0.8]
    noise_levels = [0.0, 0.5, 1.0, 2.0, 3.0]
    return {
        (rnoise, tau): _base_spec(dataset, "mf", "sl", {"tau": tau},
                                  rnoise=rnoise, epochs=18)
        for rnoise in noise_levels for tau in taus
    }


# ----------------------------------------------------------------------
# Fig. 6 — relative NDCG vs positive-noise ratio (all datasets, SL)
# ----------------------------------------------------------------------
def fig6_specs() -> dict[tuple[str, float], ExperimentSpec]:
    ratios = [0.0, 0.1, 0.2, 0.3, 0.4]
    return {
        (dataset, ratio): _base_spec(
            dataset, "mf", "sl", {"tau": _TUNED_TAU},
            positive_noise=ratio, epochs=18)
        for dataset in ALL_DATASETS for ratio in ratios
    }


# ----------------------------------------------------------------------
# Fig. 7 — NDCG at cutoffs {5, 10, 15}
# ----------------------------------------------------------------------
def fig7_specs() -> dict[tuple[str, str], ExperimentSpec]:
    """(dataset, row_label) -> spec, evaluated at ks=(5, 10, 15)."""
    specs = {}
    rows = {
        "SimGCL": ("simgcl", "bpr", {}),
        "SGL": ("sgl", "bpr", {}),
        "MF_SL": ("mf", "sl", {"tau": _TUNED_TAU}),
        "MF_BSL": ("mf", "bsl", {"tau1": _TUNED_TAU * 1.1,
                                 "tau2": _TUNED_TAU}),
        "LGN_SL": ("lightgcn", "sl", {"tau": _TUNED_TAU}),
        "LGN_BSL": ("lightgcn", "bsl", {"tau1": _TUNED_TAU * 1.1,
                                        "tau2": _TUNED_TAU}),
    }
    for dataset in ("yelp2018-small", "ml1m-small"):
        for label, (model, loss, kwargs) in rows.items():
            specs[(dataset, label)] = _base_spec(
                dataset, model, loss, kwargs, eval_ks=(5, 10, 15))
    return specs


# ----------------------------------------------------------------------
# Fig. 8 — false-negative sampling probability sweep (5 losses)
# ----------------------------------------------------------------------
def fig8_specs() -> dict[tuple[str, str, float], list[ExperimentSpec]]:
    """(dataset, loss, rnoise) -> candidate specs (MF backbone).

    The paper grid-searches hyperparameters per cell ("A grid search is
    conducted to confirm the optimal parameter setting for each model");
    SL/BSL in particular need a larger τ at high noise (Corollary
    III.1), so every cell maps to a small candidate list and the bench
    keeps the best.
    """
    noise_levels = [1.0, 3.0, 5.0, 7.0, 10.0]
    candidate_kwargs = {
        "bpr": [{}],
        "bce": [{"scale": 0.2}, {"scale": 0.5}],
        "mse": [{}],
        "sl": [{"tau": 0.4}, {"tau": 1.0}],
        "bsl": [{"tau1": 0.44, "tau2": 0.4}, {"tau1": 1.0, "tau2": 1.0}],
    }
    specs: dict[tuple[str, str, float], list[ExperimentSpec]] = {}
    for dataset in ("ml1m-small", "yelp2018-small"):
        for loss, grid in candidate_kwargs.items():
            for rnoise in noise_levels:
                specs[(dataset, loss, rnoise)] = [
                    _base_spec(dataset, "mf", loss, kwargs, rnoise=rnoise,
                               epochs=18)
                    for kwargs in grid
                ]
    return specs


# ----------------------------------------------------------------------
# Fig. 9 — number of negatives sweep (5 losses)
# ----------------------------------------------------------------------
def fig9_specs() -> dict[tuple[str, str, int], ExperimentSpec]:
    """(dataset, loss, n_negatives) -> spec (MF backbone).

    The paper sweeps {32 .. 2048}; at our catalogue scale (<1k items)
    {8 .. 512} spans the same regimes (scarce -> saturating).
    """
    n_negs = [8, 32, 128, 512]
    specs = {}
    for dataset in ("ml1m-small", "yelp2018-small"):
        for loss, kwargs in LOSS_GRID.items():
            for n in n_negs:
                specs[(dataset, loss, n)] = _base_spec(
                    dataset, "mf", loss, kwargs, n_negatives=n, epochs=18)
    return specs


# ----------------------------------------------------------------------
# Table IV — SL vs BSL under positive noise
# ----------------------------------------------------------------------
def table4_specs() -> dict[tuple[str, float, str], ExperimentSpec]:
    """(dataset, noise_ratio, loss) -> spec (MF backbone)."""
    specs = {}
    for dataset in ALL_DATASETS:
        for ratio in (0.1, 0.2, 0.3, 0.4):
            for loss in ("sl", "bsl"):
                specs[(dataset, ratio, loss)] = _base_spec(
                    dataset, "mf", loss, tuned_loss_kwargs(loss, ratio),
                    positive_noise=ratio, epochs=18)
    return specs


# ----------------------------------------------------------------------
# Fig. 12 — embedding-dimension sweep
# ----------------------------------------------------------------------
def fig12_specs() -> dict[tuple[str, str, int], ExperimentSpec]:
    """(dataset, row_label, dim) -> spec.

    The paper sweeps {128, 256, 512}; we use {32, 64, 128} at our scale.
    """
    dims = [32, 64, 128]
    rows = {
        "MF_SL": ("mf", "sl", {"tau": _TUNED_TAU}),
        "MF_BSL": ("mf", "bsl", {"tau1": _TUNED_TAU * 1.1,
                                 "tau2": _TUNED_TAU}),
        "LGN_SL": ("lightgcn", "sl", {"tau": _TUNED_TAU}),
        "SimGCL": ("simgcl", "bpr", {}),
    }
    specs = {}
    for dataset in ("yelp2018-small", "ml1m-small"):
        for label, (model, loss, kwargs) in rows.items():
            for dim in dims:
                specs[(dataset, label, dim)] = _base_spec(
                    dataset, model, loss, kwargs, dim=dim)
    return specs


# ----------------------------------------------------------------------
# Fig. 13 — tau1/tau2 ratio sweep
# ----------------------------------------------------------------------
def fig13_specs() -> dict[tuple[str, str, float], ExperimentSpec]:
    """(dataset, model, ratio) -> spec; ratio multiplies τ1 only."""
    ratios = [0.5, 0.8, 1.0, 1.2, 1.4, 2.0]
    specs = {}
    for dataset in ("yelp2018-small", "ml1m-small"):
        for model in ("mf", "lightgcn"):
            for ratio in ratios:
                specs[(dataset, model, ratio)] = _base_spec(
                    dataset, model, "bsl",
                    {"tau1": _TUNED_TAU * ratio, "tau2": _TUNED_TAU},
                    epochs=18)
    return specs
