"""Experiment harness, per-figure presets, report printers, perf suite.

The perf suite (:mod:`repro.experiments.perf`) is intentionally not
imported eagerly — the CLI loads it only for the ``perf`` subcommand.
"""

from repro.experiments.harness import (ExperimentSpec, ExperimentResult,
                                       run_experiment, build_components,
                                       collect_negative_scores)
from repro.experiments import presets, report

__all__ = [
    "ExperimentSpec", "ExperimentResult", "run_experiment",
    "build_components", "collect_negative_scores", "presets", "report",
]
