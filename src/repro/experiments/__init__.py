"""Experiment harness, per-figure presets and report printers."""

from repro.experiments.harness import (ExperimentSpec, ExperimentResult,
                                       run_experiment, build_components,
                                       collect_negative_scores)
from repro.experiments import presets, report

__all__ = [
    "ExperimentSpec", "ExperimentResult", "run_experiment",
    "build_components", "collect_negative_scores", "presets", "report",
]
