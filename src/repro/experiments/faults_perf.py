"""Fault-tolerance bench: availability and tail latency under faults.

One (dataset, model, loss) cell is trained and exported **sharded**,
then a seeded :class:`~repro.serve.faults.FaultPlan` makes one shard
misbehave while a fixed request stream runs through the scatter-gather
service twice per fault level:

* ``policy="baseline"`` — deadline only (no retries, no hedging, no
  breaker): a slow shard call burns its whole per-shard budget and the
  request is served **degraded** (explicit partial coverage, never a
  silently-wrong top-k);
* ``policy="resilient"`` — the full policy from
  :class:`~repro.serve.resilience.ResilienceConfig`: jittered retries,
  hedged backup requests after ``hedge_ms``, and a per-shard circuit
  breaker.  A straggler primary is raced by a hedge, so only
  *both-slow* draws (probability ``rate**2``) still degrade.

Two scenarios cover the two failure families:

* ``slow_shard`` — latency faults at each of ``fault_rates`` on one
  shard (the headline sweep: availability / p99 vs fault rate);
* ``dead_shard`` — a hard-failing shard (``error`` faults at rate 1.0):
  every request is explicitly degraded either way, but the breaker
  converts per-request retry burn into instant open-circuit skips
  (``breaker_open_skips``).

**Availability** is strict: the fraction of requests answered with
*full* shard coverage within ``slo_ms``.  Degraded answers and SLO
misses both count against it — the row also reports ``degraded_rate``
separately so explicit partials are visible, not folded into errors.

CLI: ``python -m repro.cli bench faults`` (or ``make bench-faults``)
writes ``BENCH_faults.json``; the committed file is validated by
``scripts/check_bench.py`` and pinned by ``tests/test_faults.py``.
"""

from __future__ import annotations

import pathlib
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FAULTS_SCHEMA", "FaultsPerfConfig", "run_faults_suite",
           "summarize_faults"]

#: Schema of the fault-tolerance payload (``BENCH_faults.json``).
FAULTS_SCHEMA = "bsl-faults-bench/v1"

#: Serving policies each scenario is measured under.
POLICIES = ("baseline", "resilient")


@dataclass
class FaultsPerfConfig:
    """Knobs for one fault-tolerance sweep.

    The injected ``latency_ms`` must comfortably exceed ``slo_ms`` and
    ``deadline_ms`` (a straggler that still beats the SLO would make
    every policy look equally available), and ``hedge_ms`` must sit well
    under ``deadline_ms`` so the hedge has budget left to win.
    """

    dataset: str = "yelp2018-small"
    model: str = "mf"
    loss: str = "bsl"
    epochs: int = 8
    dim: int = 64
    k: int = 10
    #: item shards of the exported snapshot (shard 1 is the faulty one)
    shards: int = 4
    #: sequential requests (one user each) driven per (scenario, policy)
    requests: int = 400
    #: full-coverage answers slower than this do not count as available
    slo_ms: float = 15.0
    #: per-shard deadline budget spanning all attempts of one call
    deadline_ms: float = 12.0
    #: resilient policy: hedge launch delay / retry count
    hedge_ms: float = 2.0
    retries: int = 1
    #: injected straggler sleep for the ``slow_shard`` scenario
    latency_ms: float = 25.0
    fault_rates: tuple = (0.0, 0.05, 0.1, 0.2)
    #: resilient policy: consecutive failures that open the breaker
    breaker_threshold: int = 5
    breaker_reset_s: float = 0.25
    seed: int = 0
    extra_info: dict = field(default_factory=dict)


def _resilience(config: FaultsPerfConfig, policy: str):
    """The :class:`ResilienceConfig` one measured policy serves under."""
    from repro.serve.resilience import BreakerConfig, ResilienceConfig
    if policy == "baseline":
        return ResilienceConfig(deadline_ms=config.deadline_ms, retries=0,
                                hedge_ms=None, breaker=None,
                                seed=config.seed)
    return ResilienceConfig(
        deadline_ms=config.deadline_ms, retries=config.retries,
        hedge_ms=config.hedge_ms,
        breaker=BreakerConfig(failure_threshold=config.breaker_threshold,
                              reset_timeout_s=config.breaker_reset_s),
        seed=config.seed)


def _drive(service, users: np.ndarray, *, k: int,
           slo_ms: float) -> dict:
    """Serve ``users`` one request at a time; count the three outcomes.

    ``ok`` requires full coverage *and* the SLO — a degraded answer is
    explicit partial service, an exception is an error, and everything
    is accounted (no request may simply vanish).
    """
    latencies = []
    ok = degraded = errors = 0
    for user in users:
        start = time.perf_counter()
        try:
            rec = service.recommend([int(user)], k=k)[0]
        except Exception:
            errors += 1
            latencies.append(1e3 * (time.perf_counter() - start))
            continue
        elapsed_ms = 1e3 * (time.perf_counter() - start)
        latencies.append(elapsed_ms)
        if rec.degraded:
            degraded += 1
        elif elapsed_ms <= slo_ms:
            ok += 1
    lat = np.asarray(latencies)
    return {
        "requests": int(len(users)),
        "ok": int(ok),
        "availability": ok / len(users),
        "degraded_rate": degraded / len(users),
        "error_rate": errors / len(users),
        "mean_ms": float(lat.mean()),
        "p50_ms": float(np.percentile(lat, 50)),
        "p99_ms": float(np.percentile(lat, 99)),
    }


def _measure_cell(sharded, users, *, config: FaultsPerfConfig,
                  scenario: str, policy: str, spec) -> dict:
    """One (scenario, policy) row: fresh router, faulty shard 1, drive."""
    from repro.serve.faults import FaultPlan, FaultyShardIndex
    from repro.serve.router import (ShardedRecommendationService,
                                    ShardedTopKIndex)
    plan = FaultPlan(config.seed, {"shard:1": spec})
    router = ShardedTopKIndex(sharded, kind="exact", chunk_users=1,
                              resilience=_resilience(config, policy))
    router.shard_indexes[1] = FaultyShardIndex(
        router.shard_indexes[1], plan, "shard:1")
    service = ShardedRecommendationService(sharded, index=router,
                                           cache_size=0, max_batch=1)
    try:
        row = _drive(service, users, k=config.k, slo_ms=config.slo_ms)
    finally:
        router.close()
    stats = router.stats
    row.update({
        "kind": "faults",
        "scenario": scenario,
        "policy": policy,
        "fault_kind": spec.kind,
        "fault_rate": float(spec.rate),
        "injected_latency_ms": float(spec.latency_ms),
        "k": config.k,
        "shards": config.shards,
        "slo_ms": config.slo_ms,
        "deadline_ms": config.deadline_ms,
        "retries": int(stats.retries),
        "hedges": int(stats.hedges),
        "hedge_wins": int(stats.hedge_wins),
        "shard_failures": int(stats.shard_failures),
        "breaker_open_skips": int(stats.breaker_open_skips),
        "faults_fired": len(plan.events()),
    })
    return row


def run_faults_suite(config: FaultsPerfConfig | None = None) -> dict:
    """Train, export sharded, and sweep fault levels × policies."""
    from repro.data.synthetic import load_dataset
    from repro.losses.registry import get_loss
    from repro.models.registry import get_model
    from repro.serve import export_sharded_snapshot, load_sharded_snapshot
    from repro.serve.faults import FaultSpec
    from repro.train.config import TrainConfig
    from repro.train.trainer import Trainer

    config = config or FaultsPerfConfig()
    dataset = load_dataset(config.dataset)
    model = get_model(config.model, dataset, dim=config.dim, rng=config.seed)
    loss = get_loss(config.loss)
    train_config = TrainConfig(epochs=config.epochs, eval_every=0, patience=0,
                               seed=config.seed)
    Trainer(model, loss, dataset, train_config, evaluator=None).fit()

    # Fixed request stream: cycled permutations (distinct users, cache
    # off) so every request exercises the fan-out path.
    rng = np.random.default_rng(config.seed)
    cycles = -(-config.requests // dataset.num_users)
    users = np.concatenate([rng.permutation(dataset.num_users)
                            for _ in range(cycles)])[
        :config.requests].astype(np.int64)

    results = []
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "sharded"
        export_sharded_snapshot(model, dataset, out, shards=config.shards,
                                partition_by="item",
                                model_name=config.model)
        sharded = load_sharded_snapshot(out)
        for rate in config.fault_rates:
            spec = FaultSpec("latency", rate=float(rate),
                             latency_ms=config.latency_ms)
            for policy in POLICIES:
                results.append(_measure_cell(
                    sharded, users, config=config, scenario="slow_shard",
                    policy=policy, spec=spec))
        dead = FaultSpec("error", rate=1.0)
        for policy in POLICIES:
            results.append(_measure_cell(
                sharded, users, config=config, scenario="dead_shard",
                policy=policy, spec=dead))
        snapshot_version = sharded.version
    return {
        "schema": FAULTS_SCHEMA,
        "created_unix": time.time(),
        "dataset": config.dataset,
        "snapshot_version": snapshot_version,
        "config": {
            "model": config.model,
            "loss": config.loss,
            "epochs": config.epochs,
            "dim": config.dim,
            "k": config.k,
            "shards": config.shards,
            "requests": config.requests,
            "slo_ms": config.slo_ms,
            "deadline_ms": config.deadline_ms,
            "hedge_ms": config.hedge_ms,
            "retries": config.retries,
            "latency_ms": config.latency_ms,
            "fault_rates": list(config.fault_rates),
            "breaker_threshold": config.breaker_threshold,
            "breaker_reset_s": config.breaker_reset_s,
            "seed": config.seed,
            **config.extra_info,
        },
        "results": results,
    }


def summarize_faults(payload: dict) -> str:
    """Human-readable availability table for one faults payload."""
    lines = [f"faults suite on {payload['dataset']} "
             f"(schema {payload['schema']}, "
             f"snapshot {payload['snapshot_version']})"]
    for row in payload["results"]:
        if row["kind"] != "faults":
            continue
        lines.append(
            f"  {row['scenario']:<10} rate {row['fault_rate']:>4.2f} "
            f"{row['policy']:<9}: avail {100 * row['availability']:>6.2f}%  "
            f"degraded {100 * row['degraded_rate']:>5.2f}%  "
            f"p99 {row['p99_ms']:>6.2f} ms  "
            f"hedges {row['hedges']:>3} (won {row['hedge_wins']:>3})  "
            f"breaker skips {row['breaker_open_skips']:>3}")
    return "\n".join(lines)
