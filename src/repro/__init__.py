"""repro — reproduction of "BSL: Understanding and Improving Softmax Loss
for Recommendation" (Wu et al., ICDE 2024).

The package provides:

* :mod:`repro.tensor` / :mod:`repro.nn` — a numpy autograd substrate;
* :mod:`repro.data` — synthetic implicit-feedback datasets with
  controllable false-positive/false-negative noise;
* :mod:`repro.losses` — BPR, BCE, MSE, SL and the proposed BSL;
* :mod:`repro.models` — MF, NGCF, LightGCN, SGL, SimGCL, LightGCL, ...;
* :mod:`repro.dro` — the paper's DRO analysis tools (worst-case tilts,
  robustness radius, Lemma 2 variance expansion);
* :mod:`repro.eval` / :mod:`repro.train` — evaluation and training;
* :mod:`repro.analysis` / :mod:`repro.experiments` — t-SNE, separation
  scores and the per-figure experiment harness.

Quickstart::

    from repro.data import load_dataset
    from repro.losses import BSLLoss
    from repro.models import MF
    from repro.train import train_model

    dataset = load_dataset("yelp2018-small")
    model = MF(dataset.num_users, dataset.num_items, dim=64, rng=0)
    result = train_model(model, BSLLoss(tau1=0.12, tau2=0.1), dataset)
"""

__version__ = "1.0.0"
