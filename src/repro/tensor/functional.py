"""Composite differentiable functions built on the primitive ops.

These are the numerically careful building blocks the losses use:
``logsumexp`` (the Log-Expectation-Exp structure at the heart of SL/BSL),
stable ``sigmoid``/``softplus`` (BCE/BPR), and ``l2_normalize`` (cosine
scoring, paper Appendix Table V).

The ``fused_*`` family collapses whole loss expressions into single
graph nodes with hand-derived vector-Jacobian products; see the
fused-kernel contract in the :mod:`repro.tensor` module docstring.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import ops
from repro.tensor.sparse import RowSparseGrad
from repro.tensor.tensor import Tensor, as_tensor

__all__ = [
    "sigmoid", "softplus", "log_sigmoid", "relu", "leaky_relu",
    "logsumexp", "logmeanexp", "softmax", "l2_normalize", "variance",
    "inner_rows", "pairwise_scores", "euclidean_distance_rows",
    "fused_logmeanexp", "fused_softmax_loss", "fused_bsl_loss",
    "fused_infonce_loss", "fused_sampled_scores",
]


def sigmoid(x) -> Tensor:
    """Numerically stable logistic function with exact gradient."""
    x = as_tensor(x)
    data = _sigmoid_raw(x.data)

    def backward(g):
        return (g * data * (1.0 - data),)

    return ops._node(data, (x,), backward)


def _sigmoid_raw(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def softplus(x) -> Tensor:
    """``log(1 + exp(x))`` computed without overflow; d/dx = sigmoid(x)."""
    x = as_tensor(x)
    data = np.logaddexp(0.0, x.data)

    def backward(g):
        return (g * _sigmoid_raw(x.data),)

    return ops._node(data, (x,), backward)


def log_sigmoid(x) -> Tensor:
    """``log sigmoid(x) = -softplus(-x)``, the stable BPR kernel."""
    return -softplus(-as_tensor(x))


def relu(x) -> Tensor:
    x = as_tensor(x)
    return ops.maximum(x, Tensor(np.zeros((), dtype=x.dtype)))


def leaky_relu(x, negative_slope: float = 0.2) -> Tensor:
    """LeakyReLU as used by the NGCF propagation layers."""
    x = as_tensor(x)
    data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(g):
        slope = np.where(x.data > 0, 1.0, negative_slope)
        return (g * slope,)

    return ops._node(data, (x,), backward)


def logsumexp(x, axis=None, keepdims: bool = False) -> Tensor:
    """Stable ``log sum exp`` with the softmax gradient.

    This is the Log-Expectation-Exp structure of Eq. (5)/(18) in the paper
    (up to the ``log N`` shift handled by :func:`logmeanexp`).  Shares
    its stabilisation with every fused kernel via
    :func:`_lse_softmax_raw`, so fused and compositional paths cannot
    drift apart.
    """
    x = as_tensor(x)
    data, soft = _lse_softmax_raw(x.data, axis)
    if not keepdims and axis is not None:
        data = np.squeeze(data, axis=axis)
    elif not keepdims and axis is None:
        data = data.reshape(())

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (g * soft,)

    return ops._node(data, (x,), backward)


def logmeanexp(x, axis=None, keepdims: bool = False) -> Tensor:
    """``log E[exp(x)]`` under the empirical (uniform) distribution."""
    x = as_tensor(x)
    if axis is None:
        count = x.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([x.shape[ax] for ax in axes]))
    return logsumexp(x, axis=axis, keepdims=keepdims) - float(np.log(count))


def softmax(x, axis: int = -1) -> Tensor:
    """Stable softmax expressed through logsumexp for a correct gradient."""
    x = as_tensor(x)
    return ops.exp(x - logsumexp(x, axis=axis, keepdims=True))


def l2_normalize(x, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows onto the unit sphere (cosine scoring, Appendix Table V)."""
    x = as_tensor(x)
    norm_sq = ops.sum_(x * x, axis=axis, keepdims=True)
    return x / ops.sqrt(norm_sq + eps)


def variance(x, axis=None, keepdims: bool = False) -> Tensor:
    """Population variance ``E[x^2] - E[x]^2`` (Lemma 2's penalty term)."""
    x = as_tensor(x)
    mean = ops.mean_(x, axis=axis, keepdims=True)
    centered = x - mean
    return ops.mean_(centered * centered, axis=axis, keepdims=keepdims)


def inner_rows(a, b) -> Tensor:
    """Row-wise inner products: ``(n, d), (n, d) -> (n,)``."""
    return ops.sum_(as_tensor(a) * as_tensor(b), axis=-1)


def pairwise_scores(users, items) -> Tensor:
    """All-pairs scores ``(n, d), (m, d) -> (n, m)`` via matmul."""
    return ops.matmul(as_tensor(users), ops.transpose(as_tensor(items)))


def euclidean_distance_rows(a, b, eps: float = 1e-12) -> Tensor:
    """Row-wise Euclidean distance, used by the CML baseline."""
    diff = as_tensor(a) - as_tensor(b)
    return ops.sqrt(ops.sum_(diff * diff, axis=-1) + eps)


# ----------------------------------------------------------------------
# Fused loss kernels (single-node forward + hand-derived VJP)
#
# Each kernel below is the fast path for a compositional expression
# defined elsewhere in this module / the loss classes.  They follow the
# fused-kernel contract documented in :mod:`repro.tensor`: identical
# stabilisation (max-shift), value agreement to a few ULPs, gradient
# agreement to <= 1e-6 against finite differences, and the compositional
# oracle is kept alive behind ``fused=False`` flags in the losses.
# ----------------------------------------------------------------------
def _lse_softmax_raw(x: np.ndarray, axis):
    """Stable ``(logsumexp, softmax)`` pair matching :func:`logsumexp`.

    Shares its conventions exactly: the max-shift is clamped to 0 when a
    row is all ``-inf`` (forward ``-inf``, gradient 0).
    """
    m = np.max(x, axis=axis, keepdims=True)
    m = np.where(np.isfinite(m), m, 0.0)
    shifted = np.exp(x - m)
    s = shifted.sum(axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):
        lse = np.log(s) + m
    soft = shifted / np.where(s == 0.0, 1.0, s)
    return lse, soft


def _reduction_count(shape: tuple, axis) -> int:
    if axis is None:
        return int(np.prod(shape)) if shape else 1
    axes = axis if isinstance(axis, tuple) else (axis,)
    return int(np.prod([shape[ax] for ax in axes]))


def fused_logmeanexp(x, axis=None, keepdims: bool = False) -> Tensor:
    """``log E[exp(x)]`` as one graph node (oracle: :func:`logmeanexp`).

    The compositional path builds logsumexp + a subtraction node; this
    kernel evaluates both at once and backpropagates the softmax VJP
    directly (the ``-log N`` shift has zero gradient).
    """
    x = as_tensor(x)
    count = _reduction_count(x.shape, axis)
    lse, soft = _lse_softmax_raw(x.data, axis)
    data = lse - float(np.log(count))
    if not keepdims and axis is not None:
        data = np.squeeze(data, axis=axis)
    elif not keepdims and axis is None:
        data = data.reshape(())

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (g * soft,)

    return ops._node(data, (x,), backward)


def fused_softmax_loss(pos, neg, tau: float, include_positive: bool = False,
                       scale_by_temperature: bool = False) -> Tensor:
    """Sampled softmax loss (SL, Eq. 5) as a single fused node.

    Oracle: :meth:`repro.losses.softmax.SoftmaxLoss.compute` with
    ``fused=False``.  Computes ``mean_b[-pos_b/τ + lse_j(logits_bj)]``
    (optionally ``×τ``) in one pass; the VJP routes the softmax weights
    straight to ``pos``/``neg`` without materialising the op chain.
    """
    pos, neg = as_tensor(pos), as_tensor(neg)
    logits = neg.data / tau
    offset = 0
    if include_positive:
        logits = np.concatenate([pos.data[:, None] / tau, logits], axis=1)
        offset = 1
    lse, soft = _lse_softmax_raw(logits, axis=1)
    rows = pos.shape[0]
    row_loss = -pos.data / tau + np.squeeze(lse, axis=1)
    loss = row_loss.mean()
    scale = tau if scale_by_temperature else 1.0
    data = np.asarray(loss * scale)

    def backward(g):
        coeff = float(np.asarray(g)) * scale / (rows * tau)
        grad_pos = np.full(pos.shape, -coeff)
        if include_positive:
            grad_pos = grad_pos + coeff * soft[:, 0]
        grad_neg = coeff * soft[:, offset:]
        return grad_pos, grad_neg

    return ops._node(data, (pos, neg), backward)


def fused_bsl_loss(pos, neg, tau1: float, tau2: float,
                   pooling: str = "mean") -> Tensor:
    """Bilateral Softmax Loss (BSL, Eq. 18) as a single fused node.

    Oracle: :meth:`repro.losses.bsl.BSLLoss.compute` with
    ``fused=False``; both batch estimators are supported:

    * ``"mean"`` — ``mean_b[-pos_b/τ1 + (τ1/τ2)·lme_j(neg_bj/τ2)]``
    * ``"log_mean_exp"`` — ``-τ1·lme_b[(pos_b - τ2·lme_j(neg_bj/τ2))/τ1]``
    """
    pos, neg = as_tensor(pos), as_tensor(neg)
    rows, n_neg = neg.shape
    ratio = tau1 / tau2
    lse, soft = _lse_softmax_raw(neg.data / tau2, axis=1)
    neg_lme = np.squeeze(lse, axis=1) - float(np.log(n_neg))
    neg_part = tau2 * neg_lme
    if pooling == "mean":
        row_loss = -pos.data / tau1 + (neg_part / tau2) * ratio
        data = np.asarray(row_loss.mean())

        def backward(g):
            gs = float(np.asarray(g))
            grad_pos = np.full(pos.shape, -gs / (rows * tau1))
            grad_neg = (gs * ratio / (rows * tau2)) * soft
            return grad_pos, grad_neg

        return ops._node(data, (pos, neg), backward)
    if pooling != "log_mean_exp":
        raise ValueError(f"unknown pooling {pooling!r}")
    margin = (pos.data - neg_part) / tau1
    m_lse, m_soft = _lse_softmax_raw(margin, axis=0)
    data = np.asarray(-tau1 * (float(m_lse.reshape(())) - float(np.log(rows))))

    def backward(g):
        gs = float(np.asarray(g))
        grad_pos = -gs * m_soft
        grad_neg = gs * m_soft[:, None] * soft
        return grad_pos, grad_neg

    return ops._node(data, (pos, neg), backward)


def fused_infonce_loss(z1, z2, tau: float, eps: float = 1e-12) -> Tensor:
    """InfoNCE over two views as a single fused node.

    Oracle: :class:`repro.losses.contrastive.InfoNCELoss` with
    ``fused=False`` — L2-normalise both views, score all pairs, and
    optimise each diagonal entry against its row.  The VJP chains the
    softmax-minus-identity gradient through the matmul and the
    normalisation projection ``(I - ẑẑᵀ)/‖z‖`` in four BLAS calls.
    """
    z1, z2 = as_tensor(z1), as_tensor(z2)
    if z1.shape != z2.shape or z1.ndim != 2:
        raise ValueError(f"views must share a 2-D shape, got {z1.shape} "
                         f"vs {z2.shape}")
    rows = z1.shape[0]
    n1 = (z1.data * z1.data).sum(axis=1, keepdims=True) + eps
    n2 = (z2.data * z2.data).sum(axis=1, keepdims=True) + eps
    inv1, inv2 = 1.0 / np.sqrt(n1), 1.0 / np.sqrt(n2)
    z1n, z2n = z1.data * inv1, z2.data * inv2
    sims = (z1n @ z2n.T) / tau
    lse, soft = _lse_softmax_raw(sims, axis=1)
    diag = sims[np.arange(rows), np.arange(rows)]
    data = np.asarray((-diag + np.squeeze(lse, axis=1)).mean())

    def backward(g):
        gs = float(np.asarray(g))
        G = soft.copy()
        G[np.arange(rows), np.arange(rows)] -= 1.0
        G *= gs / (rows * tau)
        g1n = G @ z2n
        g2n = G.T @ z1n
        grad_z1 = (g1n - z1n * (g1n * z1n).sum(axis=1, keepdims=True)) * inv1
        grad_z2 = (g2n - z2n * (g2n * z2n).sum(axis=1, keepdims=True)) * inv2
        return grad_z1, grad_z2

    return ops._node(data, (z1, z2), backward)


def fused_sampled_scores(users_t, items_t, user_idx, pos_idx, neg_idx,
                         scoring: str = "cosine", sparse_grad: bool = True,
                         eps: float = 1e-12) -> Tensor:
    """Sampled-pair scoring as a single fused node: ``(B, 1 + m)`` scores.

    Column 0 is the positive score of each batch row, columns ``1:`` the
    ``m`` negative scores — computed from the **gathered rows only**
    (``O(B * m * dim)``), never against the full catalogue.  Oracle:
    the compositional ``Recommender.sampled_batch_scores(fused=False)``
    path (gather → ``l2_normalize`` → per-pair products), which builds
    ~15 ``(B, m, dim)`` graph nodes; this kernel's forward materializes
    the negative block once and the VJP is three closed-form products,
    which is what makes the sparse training step flat in the catalogue
    size.  Normalisation uses the :func:`l2_normalize` convention
    (``x / sqrt(sum(x^2) + eps)``), so fused and compositional scores
    agree to a few ULPs.

    With ``sparse_grad=True`` (default) the VJP emits coalesced
    :class:`~repro.tensor.sparse.RowSparseGrad` gradients for both
    tables; they stay sparse into leaf parameters and densify
    automatically at interior nodes (graph backbones).
    """
    import scipy.sparse as sp
    if scoring not in ("cosine", "inner", "euclidean"):
        raise ValueError(f"scoring must be cosine/inner/euclidean, "
                         f"got {scoring!r}")
    users_t, items_t = as_tensor(users_t), as_tensor(items_t)
    u_idx = np.asarray(user_idx, dtype=np.int64).reshape(-1)
    p_idx = np.asarray(pos_idx, dtype=np.int64).reshape(-1)
    n_idx = np.asarray(neg_idx, dtype=np.int64)
    if n_idx.ndim != 2 or len(u_idx) != len(p_idx) or len(u_idx) != len(n_idx):
        raise ValueError(f"index shapes disagree: users {u_idx.shape}, "
                         f"positives {p_idx.shape}, negatives {n_idx.shape}")
    batch = len(u_idx)
    # The positive is scored exactly like an extra negative column, so
    # one (B, 1 + m) item-index block drives the whole kernel; column 0
    # of every per-slot array below is the positive.
    idx = np.concatenate([p_idx[:, None], n_idx], axis=1)     # (B, 1+m)
    # Unique gathered item rows: every per-row quantity (norms, backward
    # coefficients) is computed once per *distinct* item and mapped back
    # through ``inverse`` — the kernel's footprint follows the batch, not
    # the catalogue.
    uniq, inverse = np.unique(idx.reshape(-1), return_inverse=True)
    inverse = inverse.reshape(idx.shape)
    rows = items_t.data[uniq]                                 # (n_uniq, d)
    U = users_t.data[u_idx]                                   # (B, d)
    block = items_t.data[idx]                                 # (B, 1+m, d)

    if scoring == "cosine":
        inv_u = 1.0 / np.sqrt((U * U).sum(axis=1) + eps)      # (B,)
        inv_i = (1.0 / np.sqrt((rows * rows).sum(axis=1) + eps))[inverse]
        base_u = U * inv_u[:, None]                           # û
        data = np.matmul(block, base_u[:, :, None])[:, :, 0] * inv_i
    elif scoring == "inner":
        inv_i = None
        base_u = U
        data = np.matmul(block, U[:, :, None])[:, :, 0]
    else:  # euclidean: -||u - i||^2 = 2 u.i - ||u||^2 - ||i||^2
        inv_i = None
        base_u = U
        i_sq = (rows * rows).sum(axis=1)[inverse]
        u_sq = (U * U).sum(axis=1)
        data = (2.0 * np.matmul(block, U[:, :, None])[:, :, 0]
                - u_sq[:, None] - i_sq)
    del block  # the backward never touches the (B, 1+m, d) gather

    def backward(g):
        # Per-slot item gradient rows have the closed form
        #   grad_item[b, c] = a[b, c] * base_u[b] - b[b, c] * item_row,
        # so the per-unique-item sums collapse to one sparse matmul
        # (the ``a``-weighted scatter of user rows) plus a bincount of
        # the ``b`` coefficients — no (B, m, d) tensor is ever built.
        if scoring == "cosine":
            a = g * inv_i                                     # (B, 1+m)
            b = g * data * inv_i * inv_i
        elif scoring == "inner":
            a, b = g, None
        else:
            a = 2.0 * g
            b = 2.0 * g
        slot_user = np.broadcast_to(np.arange(batch)[:, None], idx.shape)
        coeff = sp.csr_matrix(
            (a.reshape(-1), (slot_user.reshape(-1), inverse.reshape(-1))),
            shape=(batch, len(uniq)))
        # dL/d(item rows), already coalesced over unique ids.
        vals = coeff.T @ base_u                               # (n_uniq, d)
        if b is not None:
            s = np.bincount(inverse.reshape(-1), weights=b.reshape(-1),
                            minlength=len(uniq))
            vals = vals - s[:, None] * rows
        # dL/dU through the shared ``h = sum_c a[b, c] * item_row`` form.
        h = coeff @ rows                                      # (B, d)
        if scoring == "cosine":
            grad_u = (h - base_u * (h * base_u).sum(axis=1, keepdims=True)) \
                * inv_u[:, None]
        elif scoring == "inner":
            grad_u = h
        else:
            grad_u = h - (a.sum(axis=1))[:, None] * U
        if sparse_grad:
            return (RowSparseGrad.from_rows(u_idx, grad_u, users_t.shape),
                    RowSparseGrad(uniq, vals, items_t.shape))
        dense_u = np.zeros_like(users_t.data)
        np.add.at(dense_u, u_idx, grad_u)
        dense_i = np.zeros_like(items_t.data)
        dense_i[uniq] = vals
        return dense_u, dense_i

    return ops._node(data, (users_t, items_t), backward)
