"""Composite differentiable functions built on the primitive ops.

These are the numerically careful building blocks the losses use:
``logsumexp`` (the Log-Expectation-Exp structure at the heart of SL/BSL),
stable ``sigmoid``/``softplus`` (BCE/BPR), and ``l2_normalize`` (cosine
scoring, paper Appendix Table V).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor, as_tensor

__all__ = [
    "sigmoid", "softplus", "log_sigmoid", "relu", "leaky_relu",
    "logsumexp", "logmeanexp", "softmax", "l2_normalize", "variance",
    "inner_rows", "pairwise_scores", "euclidean_distance_rows",
]


def sigmoid(x) -> Tensor:
    """Numerically stable logistic function with exact gradient."""
    x = as_tensor(x)
    data = _sigmoid_raw(x.data)

    def backward(g):
        return (g * data * (1.0 - data),)

    return ops._node(data, (x,), backward)


def _sigmoid_raw(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def softplus(x) -> Tensor:
    """``log(1 + exp(x))`` computed without overflow; d/dx = sigmoid(x)."""
    x = as_tensor(x)
    data = np.logaddexp(0.0, x.data)

    def backward(g):
        return (g * _sigmoid_raw(x.data),)

    return ops._node(data, (x,), backward)


def log_sigmoid(x) -> Tensor:
    """``log sigmoid(x) = -softplus(-x)``, the stable BPR kernel."""
    return -softplus(-as_tensor(x))


def relu(x) -> Tensor:
    x = as_tensor(x)
    return ops.maximum(x, Tensor(np.zeros((), dtype=x.dtype)))


def leaky_relu(x, negative_slope: float = 0.2) -> Tensor:
    """LeakyReLU as used by the NGCF propagation layers."""
    x = as_tensor(x)
    data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(g):
        slope = np.where(x.data > 0, 1.0, negative_slope)
        return (g * slope,)

    return ops._node(data, (x,), backward)


def logsumexp(x, axis=None, keepdims: bool = False) -> Tensor:
    """Stable ``log sum exp`` with the softmax gradient.

    This is the Log-Expectation-Exp structure of Eq. (5)/(18) in the paper
    (up to the ``log N`` shift handled by :func:`logmeanexp`).
    """
    x = as_tensor(x)
    m = np.max(x.data, axis=axis, keepdims=True)
    m = np.where(np.isfinite(m), m, 0.0)
    shifted = np.exp(x.data - m)
    s = shifted.sum(axis=axis, keepdims=True)
    with np.errstate(divide="ignore"):
        data = np.log(s) + m
    if not keepdims and axis is not None:
        data = np.squeeze(data, axis=axis)
    elif not keepdims and axis is None:
        data = data.reshape(())
    # Degenerate all -inf rows: forward is -inf, gradient is zero.
    soft = shifted / np.where(s == 0.0, 1.0, s)

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (g * soft,)

    return ops._node(data, (x,), backward)


def logmeanexp(x, axis=None, keepdims: bool = False) -> Tensor:
    """``log E[exp(x)]`` under the empirical (uniform) distribution."""
    x = as_tensor(x)
    if axis is None:
        count = x.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([x.shape[ax] for ax in axes]))
    return logsumexp(x, axis=axis, keepdims=keepdims) - float(np.log(count))


def softmax(x, axis: int = -1) -> Tensor:
    """Stable softmax expressed through logsumexp for a correct gradient."""
    x = as_tensor(x)
    return ops.exp(x - logsumexp(x, axis=axis, keepdims=True))


def l2_normalize(x, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows onto the unit sphere (cosine scoring, Appendix Table V)."""
    x = as_tensor(x)
    norm_sq = ops.sum_(x * x, axis=axis, keepdims=True)
    return x / ops.sqrt(norm_sq + eps)


def variance(x, axis=None, keepdims: bool = False) -> Tensor:
    """Population variance ``E[x^2] - E[x]^2`` (Lemma 2's penalty term)."""
    x = as_tensor(x)
    mean = ops.mean_(x, axis=axis, keepdims=True)
    centered = x - mean
    return ops.mean_(centered * centered, axis=axis, keepdims=keepdims)


def inner_rows(a, b) -> Tensor:
    """Row-wise inner products: ``(n, d), (n, d) -> (n,)``."""
    return ops.sum_(as_tensor(a) * as_tensor(b), axis=-1)


def pairwise_scores(users, items) -> Tensor:
    """All-pairs scores ``(n, d), (m, d) -> (n, m)`` via matmul."""
    return ops.matmul(as_tensor(users), ops.transpose(as_tensor(items)))


def euclidean_distance_rows(a, b, eps: float = 1e-12) -> Tensor:
    """Row-wise Euclidean distance, used by the CML baseline."""
    diff = as_tensor(a) - as_tensor(b)
    return ops.sqrt(ops.sum_(diff * diff, axis=-1) + eps)
