"""Primitive differentiable operations.

Each function builds one node of the autograd graph: it computes the
forward value with numpy and registers a closure returning the
vector-Jacobian products for its parents.  Gradients respect numpy
broadcasting via :func:`repro.tensor.tensor.unbroadcast`.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.sparse import RowSparseGrad
from repro.tensor.tensor import Tensor, as_tensor, unbroadcast, is_grad_enabled

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "matmul", "exp", "log",
    "sqrt", "tanh", "abs_", "maximum", "minimum", "sum_", "mean_", "max_",
    "min_", "getitem", "take_rows", "reshape", "transpose", "clip",
    "concatenate", "stack", "where",
]


def _node(data, parents, backward):
    """Create an output tensor, recording the graph only when needed."""
    parents = [p for p in parents if isinstance(p, Tensor)]
    track = is_grad_enabled() and any(_needs_grad(p) for p in parents)
    if not track:
        return Tensor(data)
    out = Tensor(data, _parents=parents, _backward=backward)
    # Interior nodes propagate but do not accumulate into .grad themselves.
    out.requires_grad = False
    return out


def _needs_grad(t: Tensor) -> bool:
    return t.requires_grad or t._parents != ()


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data + b.data

    def backward(g):
        return unbroadcast(g, a.shape), unbroadcast(g, b.shape)

    return _node(data, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data - b.data

    def backward(g):
        return unbroadcast(g, a.shape), unbroadcast(-g, b.shape)

    return _node(data, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data * b.data

    def backward(g):
        return (unbroadcast(g * b.data, a.shape),
                unbroadcast(g * a.data, b.shape))

    return _node(data, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data / b.data

    def backward(g):
        return (unbroadcast(g / b.data, a.shape),
                unbroadcast(-g * a.data / (b.data ** 2), b.shape))

    return _node(data, (a, b), backward)


def neg(a) -> Tensor:
    a = as_tensor(a)

    def backward(g):
        return (-g,)

    return _node(-a.data, (a,), backward)


def power(a, exponent: float) -> Tensor:
    """Raise ``a`` to a constant (non-tensor) exponent."""
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("power() supports constant exponents only")
    data = a.data ** exponent

    def backward(g):
        return (g * exponent * a.data ** (exponent - 1),)

    return _node(data, (a,), backward)


# ----------------------------------------------------------------------
# Transcendental functions
# ----------------------------------------------------------------------
def exp(a) -> Tensor:
    a = as_tensor(a)
    data = np.exp(a.data)

    def backward(g):
        return (g * data,)

    return _node(data, (a,), backward)


def log(a) -> Tensor:
    a = as_tensor(a)
    data = np.log(a.data)

    def backward(g):
        return (g / a.data,)

    return _node(data, (a,), backward)


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    data = np.sqrt(a.data)

    def backward(g):
        return (g * 0.5 / data,)

    return _node(data, (a,), backward)


def tanh(a) -> Tensor:
    a = as_tensor(a)
    data = np.tanh(a.data)

    def backward(g):
        return (g * (1.0 - data ** 2),)

    return _node(data, (a,), backward)


def abs_(a) -> Tensor:
    a = as_tensor(a)
    data = np.abs(a.data)

    def backward(g):
        return (g * np.sign(a.data),)

    return _node(data, (a,), backward)


def maximum(a, b) -> Tensor:
    """Elementwise max; the gradient flows to the larger operand (ties split)."""
    a, b = as_tensor(a), as_tensor(b)
    data = np.maximum(a.data, b.data)

    def backward(g):
        a_wins = (a.data > b.data).astype(g.dtype)
        ties = (a.data == b.data).astype(g.dtype) * 0.5
        wa = a_wins + ties
        return (unbroadcast(g * wa, a.shape),
                unbroadcast(g * (1.0 - wa), b.shape))

    return _node(data, (a, b), backward)


def minimum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = np.minimum(a.data, b.data)

    def backward(g):
        a_wins = (a.data < b.data).astype(g.dtype)
        ties = (a.data == b.data).astype(g.dtype) * 0.5
        wa = a_wins + ties
        return (unbroadcast(g * wa, a.shape),
                unbroadcast(g * (1.0 - wa), b.shape))

    return _node(data, (a, b), backward)


def clip(a, low=None, high=None) -> Tensor:
    """Clamp values; gradient is zero outside ``[low, high]``."""
    a = as_tensor(a)
    data = np.clip(a.data, low, high)

    def backward(g):
        mask = np.ones_like(a.data)
        if low is not None:
            mask *= (a.data >= low)
        if high is not None:
            mask *= (a.data <= high)
        return (g * mask,)

    return _node(data, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def sum_(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.shape).copy(),)

    return _node(data, (a,), backward)


def mean_(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.shape[ax] for ax in axes]))

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.shape).copy() / count,)

    return _node(data, (a,), backward)


def _extreme(a, axis, keepdims, fn):
    a = as_tensor(a)
    data = fn(a.data, axis=axis, keepdims=keepdims)

    def backward(g):
        g = np.asarray(g)
        expanded = data
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
            expanded = np.expand_dims(data, axis)
        mask = (a.data == expanded).astype(a.data.dtype)
        # Split gradient across ties, matching numpy/torch convention loosely.
        mask /= mask.sum(axis=axis, keepdims=True)
        return (mask * g,)

    return _node(data, (a,), backward)


def max_(a, axis=None, keepdims: bool = False) -> Tensor:
    return _extreme(a, axis, keepdims, np.max)


def min_(a, axis=None, keepdims: bool = False) -> Tensor:
    return _extreme(a, axis, keepdims, np.min)


# ----------------------------------------------------------------------
# Shape / indexing
# ----------------------------------------------------------------------
def getitem(a, index) -> Tensor:
    """Differentiable indexing (slices, integer arrays, boolean masks)."""
    a = as_tensor(a)
    if isinstance(index, Tensor):
        index = index.data.astype(np.int64)
    data = a.data[index]

    def backward(g):
        out = np.zeros_like(a.data)
        np.add.at(out, index, g)
        return (out,)

    return _node(data, (a,), backward)


def take_rows(a, indices, sparse_grad: bool = False) -> Tensor:
    """Row gather with scatter-add backward; the embedding-lookup primitive.

    Faster than generic ``getitem`` because the backward uses bincount-style
    accumulation over the leading axis only.

    Parameters
    ----------
    sparse_grad:
        When True the backward produces a coalesced
        :class:`~repro.tensor.sparse.RowSparseGrad` over the leading
        axis instead of a dense ``zeros_like`` scatter — ``O(batch)``
        instead of ``O(num_rows)`` per step.  The sparse gradient
        reaches ``Parameter.grad`` intact only when ``a`` is a leaf;
        flowing into any interior node densifies it (see
        ``Tensor.backward``), so graph backbones behave exactly as with
        the default dense path.
    """
    a = as_tensor(a)
    idx = np.asarray(indices.data if isinstance(indices, Tensor) else indices,
                     dtype=np.int64)
    data = a.data[idx]

    def backward(g):
        flat_idx = idx.reshape(-1)
        if a.data.ndim > 1:
            flat_g = g.reshape(-1, a.data.shape[-1])
        else:
            flat_g = g.reshape(-1)
        if sparse_grad:
            return (RowSparseGrad.from_rows(flat_idx, flat_g, a.shape),)
        out = np.zeros_like(a.data)
        np.add.at(out, flat_idx, flat_g)
        return (out,)

    return _node(data, (a,), backward)


def reshape(a, shape) -> Tensor:
    a = as_tensor(a)
    data = a.data.reshape(shape)

    def backward(g):
        return (g.reshape(a.shape),)

    return _node(data, (a,), backward)


def transpose(a, axes=None) -> Tensor:
    a = as_tensor(a)
    data = a.data.transpose(axes)

    def backward(g):
        if axes is None:
            return (g.transpose(),)
        inverse = np.argsort(axes)
        return (g.transpose(inverse),)

    return _node(data, (a,), backward)


def concatenate(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for i in range(len(tensors)):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(sl)])
        return tuple(grads)

    return _node(data, tensors, backward)


def stack(tensors, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return _node(data, tensors, backward)


def where(condition, a, b) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b`` (condition is constant)."""
    cond = np.asarray(condition.data if isinstance(condition, Tensor) else condition,
                      dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    data = np.where(cond, a.data, b.data)

    def backward(g):
        return (unbroadcast(g * cond, a.shape),
                unbroadcast(g * ~cond, b.shape))

    return _node(data, (a, b), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data @ b.data

    def backward(g):
        if a.ndim == 1 and b.ndim == 1:       # inner product
            return g * b.data, g * a.data
        if a.ndim == 1:                        # (k,) @ (k, n)
            return g @ b.data.T, np.outer(a.data, g)
        if b.ndim == 1:                        # (m, k) @ (k,)
            return np.outer(g, b.data), a.data.T @ g
        ga = g @ np.swapaxes(b.data, -1, -2)
        gb = np.swapaxes(a.data, -1, -2) @ g
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return _node(data, (a, b), backward)
