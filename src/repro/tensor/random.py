"""Seeded random-number utilities.

Every stochastic component of the library (initializers, samplers, data
generators, dropout) takes either a seed or a ``numpy.random.Generator``
so full runs are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one source.

    Used when an experiment needs decoupled streams (e.g. the negative
    sampler must not perturb the initializer stream when a sweep changes
    the number of negatives).
    """
    root = ensure_rng(seed_or_rng)
    seeds = root.integers(0, 2 ** 63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
