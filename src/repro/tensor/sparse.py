"""Row-sparse gradients over the leading axis.

The embedding-lookup primitive :func:`repro.tensor.ops.take_rows` only
touches ``O(batch)`` rows of its table, yet its default backward
materializes a dense ``zeros_like`` of the *whole* table — at
recommendation scale that makes every training step pay
``O(num_users + num_items) * dim`` regardless of the batch size.  With
``take_rows(..., sparse_grad=True)`` the backward instead produces a
:class:`RowSparseGrad`: a coalesced ``(indices, values)`` pair over the
leading axis, mirroring ``torch.sparse_coo`` gradients from
``nn.Embedding(sparse=True)``.

The contract:

* ``indices`` is a 1-D ``int64`` array of **unique, ascending** row
  ids; ``values`` carries one gradient row per index (trailing shape =
  the table's trailing shape).  Duplicate rows in one batch are summed
  ("coalesced") at construction.
* The autograd engine accumulates sparse + sparse gradients without
  densifying; sparse + dense accumulation returns a dense array, and
  :meth:`densify` is the explicit escape hatch used whenever a sparse
  gradient must flow *through* an interior graph node (graph backbones
  propagate through their tables, so their gradients densify anyway —
  see ``Tensor.backward``).
* Only row-sparse optimizers (``SparseAdam`` / ``SparseSGD``) accept a
  :class:`RowSparseGrad` in ``Parameter.grad``; the dense optimizers
  raise a clear error instead of silently densifying.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RowSparseGrad"]


class RowSparseGrad:
    """Coalesced row-sparse gradient: ``dense[indices] == values``.

    Parameters
    ----------
    indices, values:
        Unique ascending row ids and their gradient rows.  Use
        :meth:`from_rows` to build from a raw (possibly duplicated,
        unsorted) gather pattern.
    shape:
        Shape of the dense gradient this object represents (the
        parameter's shape).
    """

    __slots__ = ("indices", "values", "shape")

    #: Keep numpy from absorbing us into object arrays so that
    #: ``ndarray + RowSparseGrad`` dispatches to :meth:`__radd__`.
    __array_ufunc__ = None

    def __init__(self, indices: np.ndarray, values: np.ndarray, shape: tuple):
        self.indices = np.asarray(indices, dtype=np.int64)
        self.values = np.asarray(values)
        self.shape = tuple(shape)
        if self.indices.ndim != 1:
            raise ValueError(f"indices must be 1-D, got {self.indices.shape}")
        if len(self.values) != len(self.indices):
            raise ValueError(
                f"{len(self.indices)} indices but {len(self.values)} value rows")
        if self.values.shape[1:] != self.shape[1:]:
            raise ValueError(f"value rows {self.values.shape[1:]} do not match "
                             f"table trailing shape {self.shape[1:]}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, indices, values, shape: tuple) -> "RowSparseGrad":
        """Coalesce a raw scatter pattern into a canonical sparse grad.

        ``indices`` may contain duplicates in any order (one entry per
        gathered row of the batch); duplicate rows are **summed**, never
        overwritten — the same accumulation a dense scatter-add
        performs.
        """
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        values = np.asarray(values).reshape(len(indices), *shape[1:])
        if len(indices) == 0:
            return cls(indices, values, shape)
        order = np.argsort(indices, kind="stable")
        sorted_idx = indices[order]
        boundaries = np.empty(len(sorted_idx), dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=boundaries[1:])
        starts = np.nonzero(boundaries)[0]
        unique = sorted_idx[starts]
        summed = np.add.reduceat(values[order], starts, axis=0)
        return cls(unique, summed, shape)

    # ------------------------------------------------------------------
    # Conversion / introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of nonzero rows."""
        return len(self.indices)

    def densify(self) -> np.ndarray:
        """Materialize the equivalent dense gradient array."""
        out = np.zeros(self.shape, dtype=self.values.dtype
                       if self.values.size else np.float64)
        out[self.indices] = self.values
        return out

    def copy(self) -> "RowSparseGrad":
        return RowSparseGrad(self.indices.copy(), self.values.copy(),
                             self.shape)

    def __repr__(self) -> str:
        return (f"RowSparseGrad(nnz={self.nnz}, shape={self.shape}, "
                f"dtype={self.values.dtype})")

    # ------------------------------------------------------------------
    # Accumulation (what the autograd engine and Parameter.grad use)
    # ------------------------------------------------------------------
    def _merge(self, other: "RowSparseGrad") -> "RowSparseGrad":
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return RowSparseGrad.from_rows(
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.values, other.values]), self.shape)

    def _add_to_dense(self, dense: np.ndarray) -> np.ndarray:
        dense = np.asarray(dense)
        if dense.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {dense.shape}")
        out = dense.copy()
        out[self.indices] += self.values  # indices are unique: plain add
        return out

    def __add__(self, other):
        if isinstance(other, RowSparseGrad):
            return self._merge(other)
        if isinstance(other, np.ndarray):
            return self._add_to_dense(other)
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, np.ndarray):
            return self._add_to_dense(other)
        return NotImplemented
