"""Autograd substrate: numpy-backed tensors with reverse-mode gradients."""

from repro.tensor.tensor import Tensor, as_tensor, no_grad, is_grad_enabled
from repro.tensor.sparse import RowSparseGrad
from repro.tensor import ops, functional
from repro.tensor.random import ensure_rng, spawn_rngs

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled", "RowSparseGrad",
    "ops", "functional", "ensure_rng", "spawn_rngs",
]
